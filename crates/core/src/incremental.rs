//! Incremental (streaming) worker evaluation on the indexed substrate.
//!
//! The paper's conclusion: "our methods work on the entire dataset in
//! a one-time fashion, but they can be easily modified to be
//! incremental, to keep efficiently updating worker error rates as
//! more tasks get done." This module is that modification — riding the
//! same [`crowd_data::OverlapIndex`] substrate the batch path uses,
//! not a private shadow copy of the data.
//!
//! [`IncrementalEvaluator`] (binary, Algorithm A2) and
//! [`KaryIncrementalEvaluator`] (k-ary, the m-worker A3 extension)
//! each hold one long-lived [`StreamingIndex`]: the overlap index plus
//! maintained, **peer-scoped** per-worker anchored bitset views — each
//! view holds a mask row only for the ≤ 2l peers the last evaluation's
//! pairing selected (`O(m·l·n̄/64)` resident across the fleet, not
//! `O(m²·n̄/64)`), starts empty until its worker is first evaluated,
//! and lazily re-anchors when the pairing shifts (see
//! [`crowd_data::streaming`]). Ingesting a response costs
//!
//! * an `O(log r + r)` sorted insert into the index's worker and task
//!   adjacency rows (amortized over their geometric growth — see the
//!   amortization invariant in [`crowd_data::index`]),
//! * an `O(r_t)` pair-table update (only the pairs the response
//!   completes are touched),
//! * `O(r_t)` scope probes / bit flips across the *anchored* views
//!   (un-anchored views cost nothing),
//!
//! so that evaluating any worker at any moment costs **only triple
//! formation and covariance assembly**: pairing reads the O(1) pair
//! table and the Lemma 4 / `n₅` cross-triple counts are popcounts on
//! the maintained views. Nothing is rescanned and no index is rebuilt.
//!
//! # Equivalence guarantee
//!
//! Every statistic the estimators consume — pair counts, triple
//! counts, anchored popcounts, k-ary counts tensors — is
//! observation-equivalent between the streamed substrate and a fresh
//! batch build on the accumulated data, for *every* ingest order.
//! Evaluations are therefore **bit-identical** to the batch
//! [`MWorkerEstimator`] / [`crate::KaryMWorkerEstimator`] at every
//! stream prefix; `tests/streaming_equivalence.rs` and the
//! differential property tests in `crates/data/tests/proptests.rs`
//! enforce this.

use crate::cached::{CacheStats, KaryReportCache, ReportCache};
use crate::kary::KaryMWorkerEstimator;
use crate::{
    EstimatorConfig, KaryWorkerAssessment, KaryWorkerReport, MWorkerEstimator, Result,
    WorkerAssessment, WorkerReport,
};
use crowd_data::{OverlapIndex, Response, ResponseMatrix, StreamingIndex, WorkerId};

/// Streaming evaluator maintaining the indexed substrate response by
/// response (binary tasks, Algorithm A2).
///
/// # Example
///
/// ```
/// use crowd_core::{EstimatorConfig, IncrementalEvaluator};
/// use crowd_sim::BinaryScenario;
///
/// let instance =
///     BinaryScenario::paper_default(5, 80, 0.9).generate(&mut crowd_sim::rng(8));
/// let mut monitor = IncrementalEvaluator::new(5, 80, 2, EstimatorConfig::default());
/// for response in instance.responses().iter() {
///     monitor.ingest(response)?;
/// }
/// // Identical to the batch estimator on the same data.
/// let report = monitor.evaluate_all(0.9).unwrap();
/// assert_eq!(report.assessments.len(), 5);
/// # Ok::<(), crowd_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator {
    stream: StreamingIndex,
    estimator: MWorkerEstimator,
    /// Epoch-versioned per-anchor rows backing
    /// [`IncrementalEvaluator::evaluate_all_cached`]; unused (zero
    /// cost) by the uncached entry points.
    cache: ReportCache,
}

impl IncrementalEvaluator {
    /// Creates an empty evaluator for `n_workers × n_tasks` responses
    /// of the given arity.
    pub fn new(n_workers: usize, n_tasks: usize, arity: u16, config: EstimatorConfig) -> Self {
        Self {
            stream: StreamingIndex::new(n_workers, n_tasks, arity),
            estimator: MWorkerEstimator::new(config),
            cache: ReportCache::new(),
        }
    }

    /// Seeds the evaluator from an existing response matrix (one batch
    /// index build), after which further responses stream in.
    pub fn from_matrix(data: &ResponseMatrix, config: EstimatorConfig) -> Self {
        Self {
            stream: StreamingIndex::from_matrix(data),
            estimator: MWorkerEstimator::new(config),
            cache: ReportCache::new(),
        }
    }

    /// Ingests one response, updating the index's adjacency rows, the
    /// pair table and the maintained anchored views. Rejects
    /// duplicates, out-of-range ids and out-of-arity labels via
    /// [`crowd_data::DataError`].
    pub fn ingest(&mut self, response: Response) -> crowd_data::Result<()> {
        self.stream.record_response(response)
    }

    /// The maintained overlap index (pair table included).
    pub fn index(&self) -> &OverlapIndex {
        self.stream.index()
    }

    /// Total responses ingested.
    pub fn n_responses(&self) -> usize {
        self.stream.n_responses()
    }

    /// Bytes resident across the maintained anchored mask matrices —
    /// bounded by the pairing degree per view, not the worker count
    /// (see [`crowd_data::StreamingIndex::view_mask_bytes`]).
    pub fn view_mask_bytes(&self) -> usize {
        self.stream.view_mask_bytes()
    }

    /// Lazy view re-anchors performed so far (see
    /// [`crowd_data::StreamingIndex::reanchor_count`]); a stable
    /// pairing stops incurring these.
    pub fn reanchor_count(&self) -> usize {
        self.stream.reanchor_count()
    }

    /// Evaluates one worker on the data seen so far; bit-identical to
    /// the batch estimator on the accumulated data.
    pub fn evaluate_worker(&self, worker: WorkerId, confidence: f64) -> Result<WorkerAssessment> {
        self.estimator
            .evaluate_worker_on(&self.stream, worker, confidence)
    }

    /// Evaluates every worker on the data seen so far.
    pub fn evaluate_all(&self, confidence: f64) -> Result<WorkerReport> {
        let workers: Vec<WorkerId> = self.stream.index().workers().collect();
        self.estimator
            .evaluate_workers_on(&self.stream, &workers, confidence)
    }

    /// [`IncrementalEvaluator::evaluate_all`] through the
    /// epoch-versioned report cache: only workers whose assessment
    /// inputs changed since their cached rows are re-evaluated, the
    /// rest are cloned — bit-identical output, `O(|dirty|)`
    /// evaluations per call (see [`crate::cached`]).
    pub fn evaluate_all_cached(&mut self, confidence: f64) -> Result<WorkerReport> {
        let workers: Vec<WorkerId> = self.stream.index().workers().collect();
        self.cache
            .refresh(&self.estimator, &self.stream, &workers, confidence)
    }

    /// Hit/miss counters of the report cache behind
    /// [`IncrementalEvaluator::evaluate_all_cached`].
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Streaming evaluator for k-ary tasks: the m-worker Algorithm A3
/// extension over the same maintained [`StreamingIndex`] substrate.
///
/// Counts tensors are harvested by union merges of the maintained
/// adjacency rows and the `n₅` cross-triple counts are popcounts on
/// the maintained anchored views, so — exactly like the binary
/// evaluator — re-assessment after an ingest pays for triple pipelines
/// and covariance assembly only. Outputs are bit-identical to
/// [`KaryMWorkerEstimator::evaluate_all`] on the accumulated data.
///
/// # Example
///
/// ```
/// use crowd_core::{EstimatorConfig, KaryIncrementalEvaluator};
/// use crowd_sim::KaryScenario;
///
/// let instance = KaryScenario::paper_default(3, 200, 0.9)
///     .with_workers(5)
///     .generate(&mut crowd_sim::rng(7));
/// let mut monitor = KaryIncrementalEvaluator::new(5, 200, 3, EstimatorConfig::default());
/// for response in instance.responses().iter() {
///     monitor.ingest(response)?;
/// }
/// let report = monitor.evaluate_all(0.9).unwrap();
/// assert_eq!(report.assessments.len() + report.failures.len(), 5);
/// # Ok::<(), crowd_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KaryIncrementalEvaluator {
    stream: StreamingIndex,
    estimator: KaryMWorkerEstimator,
    /// See [`IncrementalEvaluator`]'s cache field.
    cache: KaryReportCache,
}

impl KaryIncrementalEvaluator {
    /// Creates an empty evaluator for `n_workers × n_tasks` responses
    /// of the given arity.
    pub fn new(n_workers: usize, n_tasks: usize, arity: u16, config: EstimatorConfig) -> Self {
        Self {
            stream: StreamingIndex::new(n_workers, n_tasks, arity),
            estimator: KaryMWorkerEstimator::new(config),
            cache: KaryReportCache::new(),
        }
    }

    /// Seeds the evaluator from an existing response matrix.
    pub fn from_matrix(data: &ResponseMatrix, config: EstimatorConfig) -> Self {
        Self {
            stream: StreamingIndex::from_matrix(data),
            estimator: KaryMWorkerEstimator::new(config),
            cache: KaryReportCache::new(),
        }
    }

    /// Ingests one response; validation and costs as in
    /// [`IncrementalEvaluator::ingest`].
    pub fn ingest(&mut self, response: Response) -> crowd_data::Result<()> {
        self.stream.record_response(response)
    }

    /// The maintained overlap index.
    pub fn index(&self) -> &OverlapIndex {
        self.stream.index()
    }

    /// Total responses ingested.
    pub fn n_responses(&self) -> usize {
        self.stream.n_responses()
    }

    /// Bytes resident across the maintained anchored mask matrices;
    /// see [`IncrementalEvaluator::view_mask_bytes`].
    pub fn view_mask_bytes(&self) -> usize {
        self.stream.view_mask_bytes()
    }

    /// Evaluates one worker's k×k response-probability matrix on the
    /// data seen so far; bit-identical to the batch
    /// [`KaryMWorkerEstimator`] on the accumulated data.
    pub fn evaluate_worker(
        &self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<KaryWorkerAssessment> {
        self.estimator
            .evaluate_worker_streaming(&self.stream, worker, confidence)
    }

    /// Evaluates every worker on the data seen so far.
    pub fn evaluate_all(&self, confidence: f64) -> Result<KaryWorkerReport> {
        let workers: Vec<WorkerId> = self.stream.index().workers().collect();
        self.estimator
            .evaluate_workers_streaming(&self.stream, &workers, confidence)
    }

    /// [`KaryIncrementalEvaluator::evaluate_all`] through the
    /// epoch-versioned report cache; see
    /// [`IncrementalEvaluator::evaluate_all_cached`].
    pub fn evaluate_all_cached(&mut self, confidence: f64) -> Result<KaryWorkerReport> {
        let workers: Vec<WorkerId> = self.stream.index().workers().collect();
        self.cache
            .refresh(&self.estimator, &self.stream, &workers, confidence)
    }

    /// Hit/miss counters of the report cache behind
    /// [`KaryIncrementalEvaluator::evaluate_all_cached`].
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::{Label, TaskId};
    use crowd_sim::{BinaryScenario, rng};

    fn streamed(inst: &crowd_sim::BinaryInstance) -> IncrementalEvaluator {
        let data = inst.responses();
        let mut ev = IncrementalEvaluator::new(
            data.n_workers(),
            data.n_tasks(),
            data.arity(),
            EstimatorConfig::default(),
        );
        for r in data.iter() {
            ev.ingest(r).unwrap();
        }
        ev
    }

    #[test]
    fn matches_batch_estimator_exactly() {
        let inst = BinaryScenario::paper_default(7, 120, 0.8).generate(&mut rng(401));
        let ev = streamed(&inst);
        assert_eq!(
            ev.index(),
            &crowd_data::OverlapIndex::from_matrix(inst.responses())
        );

        let batch = MWorkerEstimator::new(EstimatorConfig::default())
            .evaluate_all(inst.responses(), 0.9)
            .unwrap();
        let streaming = ev.evaluate_all(0.9).unwrap();
        assert_eq!(batch.assessments.len(), streaming.assessments.len());
        for (b, s) in batch.assessments.iter().zip(&streaming.assessments) {
            assert_eq!(b.worker, s.worker);
            assert_eq!(
                b.interval, s.interval,
                "streamed substrate diverged for {:?}",
                b.worker
            );
            assert_eq!(b.triples_used, s.triples_used);
        }
    }

    #[test]
    fn cached_evaluate_all_matches_uncached_across_a_stream() {
        let inst = BinaryScenario::paper_default(6, 80, 0.8).generate(&mut rng(431));
        let data = inst.responses();
        let mut ev = IncrementalEvaluator::new(6, 80, 2, EstimatorConfig::default());
        for (i, r) in data.iter().enumerate() {
            ev.ingest(r).unwrap();
            if i % 41 == 0 || i + 1 == data.n_responses() {
                let cached = ev.evaluate_all_cached(0.9).unwrap();
                let full = ev.evaluate_all(0.9).unwrap();
                assert_eq!(cached.assessments, full.assessments, "at response {i}");
                assert_eq!(cached.failures, full.failures);
            }
        }
        // Quiet re-drain: everything served from cache.
        let misses = ev.cache_stats().misses;
        ev.evaluate_all_cached(0.9).unwrap();
        assert_eq!(ev.cache_stats().misses, misses);
        assert_eq!(ev.cache_stats().last_dirty, 0);
    }

    #[test]
    fn seeding_from_matrix_equals_streaming() {
        let inst = BinaryScenario::paper_default(5, 60, 0.9).generate(&mut rng(403));
        let seeded =
            IncrementalEvaluator::from_matrix(inst.responses(), EstimatorConfig::default());
        let streamed = streamed(&inst);
        assert_eq!(seeded.index(), streamed.index());
        assert_eq!(seeded.n_responses(), streamed.n_responses());
        let a = seeded.evaluate_all(0.9).unwrap();
        let b = streamed.evaluate_all(0.9).unwrap();
        assert_eq!(a.assessments.len(), b.assessments.len());
        for (x, y) in a.assessments.iter().zip(&b.assessments) {
            assert_eq!(x.interval, y.interval);
        }
    }

    #[test]
    fn intervals_tighten_as_evidence_accumulates() {
        // Stream task by task; the target worker's interval must
        // shrink (weakly) as more tasks arrive.
        let inst = BinaryScenario::paper_default(5, 400, 1.0).generate(&mut rng(407));
        let data = inst.responses();
        let mut sizes = Vec::new();
        let mut ev = IncrementalEvaluator::new(5, 400, 2, EstimatorConfig::default());
        for t in data.tasks() {
            for &(w, label) in data.task_responses(t) {
                ev.ingest(Response {
                    worker: WorkerId(w),
                    task: t,
                    label,
                })
                .unwrap();
            }
            if (t.0 + 1) % 100 == 0
                && let Ok(a) = ev.evaluate_worker(WorkerId(0), 0.9)
            {
                sizes.push(a.interval.size());
            }
        }
        assert!(sizes.len() >= 3, "checkpoints missing: {sizes:?}");
        assert!(
            sizes.last().unwrap() < sizes.first().unwrap(),
            "intervals should tighten with evidence: {sizes:?}"
        );
    }

    #[test]
    fn duplicate_ingest_leaves_state_intact() {
        let inst = BinaryScenario::paper_default(4, 30, 1.0).generate(&mut rng(409));
        let mut ev = streamed(&inst);
        let index_before = ev.index().clone();
        let some = inst.responses().iter().next().unwrap();
        assert!(ev.ingest(some).is_err());
        assert_eq!(ev.index(), &index_before);
        assert_eq!(ev.n_responses(), inst.responses().n_responses());
    }

    #[test]
    fn too_few_workers_rejected() {
        let ev = IncrementalEvaluator::new(2, 5, 2, EstimatorConfig::default());
        assert!(matches!(
            ev.evaluate_all(0.9),
            Err(crate::EstimateError::NotEnoughWorkers { got: 2, need: 3 })
        ));
        let kev = KaryIncrementalEvaluator::new(2, 5, 3, EstimatorConfig::default());
        assert!(matches!(
            kev.evaluate_all(0.9),
            Err(crate::EstimateError::NotEnoughWorkers { got: 2, need: 3 })
        ));
    }

    #[test]
    fn single_responder_tasks_fail_gracefully_not_fatally() {
        // Every task has exactly one responder: no pair ever overlaps,
        // so every worker fails with NoUsableTriples — an error report,
        // not a panic.
        let mut ev = IncrementalEvaluator::new(4, 8, 2, EstimatorConfig::default());
        for t in 0..8u32 {
            ev.ingest(Response {
                worker: WorkerId(t % 4),
                task: TaskId(t),
                label: Label((t % 2) as u16),
            })
            .unwrap();
        }
        let report = ev.evaluate_all(0.9).unwrap();
        assert!(report.assessments.is_empty());
        assert_eq!(report.failures.len(), 4);
        for (_, e) in &report.failures {
            assert!(matches!(e, crate::EstimateError::NoUsableTriples { .. }));
        }
    }

    #[test]
    fn ingest_error_taxonomy() {
        use crowd_data::DataError;
        let mut ev = IncrementalEvaluator::new(3, 4, 2, EstimatorConfig::default());
        let ok = Response {
            worker: WorkerId(1),
            task: TaskId(2),
            label: Label(1),
        };
        ev.ingest(ok).unwrap();
        assert!(matches!(
            ev.ingest(ok),
            Err(DataError::DuplicateResponse { .. })
        ));
        assert!(matches!(
            ev.ingest(Response {
                worker: WorkerId(3),
                task: TaskId(0),
                label: Label(0)
            }),
            Err(DataError::UnknownId { kind: "worker", .. })
        ));
        assert!(matches!(
            ev.ingest(Response {
                worker: WorkerId(0),
                task: TaskId(4),
                label: Label(0)
            }),
            Err(DataError::UnknownId { kind: "task", .. })
        ));
        // A degenerate label beyond the declared arity is rejected, not
        // silently folded into an existing class.
        assert!(matches!(
            ev.ingest(Response {
                worker: WorkerId(0),
                task: TaskId(0),
                label: Label(2)
            }),
            Err(DataError::LabelOutOfRange { label: 2, arity: 2 })
        ));
        assert_eq!(ev.n_responses(), 1);
    }

    #[test]
    fn kary_streaming_matches_batch() {
        use crowd_sim::KaryScenario;
        let inst = KaryScenario::paper_default(2, 150, 0.9)
            .with_workers(5)
            .generate(&mut rng(419));
        let mut ev = KaryIncrementalEvaluator::new(5, 150, 2, EstimatorConfig::default());
        for r in inst.responses().iter() {
            ev.ingest(r).unwrap();
        }
        let batch = KaryMWorkerEstimator::new(EstimatorConfig::default())
            .evaluate_all(inst.responses(), 0.9)
            .unwrap();
        let streaming = ev.evaluate_all(0.9).unwrap();
        assert_eq!(batch.assessments.len(), streaming.assessments.len());
        for (b, s) in batch.assessments.iter().zip(&streaming.assessments) {
            assert_eq!(b.worker, s.worker);
            assert_eq!(b.triples_used, s.triples_used);
            for (x, y) in b.intervals.iter().zip(&s.intervals) {
                assert_eq!(x.center.to_bits(), y.center.to_bits());
                assert_eq!(x.half_width.to_bits(), y.half_width.to_bits());
            }
        }
    }
}
