//! Regression pins for the figure harness.
//!
//! PR 2 reroutes several figures through one shared [`crowd_data::OverlapIndex`]
//! per generated instance instead of rebuilding matrix-path state on
//! every `evaluate_all` call. The substrates are bit-identical by
//! construction, so the refactor must not move a single output point;
//! these tests pin the exact values produced by the pre-refactor
//! matrix-path harness (captured at the listed options) and fail on
//! any drift.

// The pinned constants reproduce harvested f64 outputs digit for digit.
#![allow(clippy::excessive_precision)]

use crowd_bench::figures::{ablations, fig2c};
use crowd_bench::{FigureResult, RunOptions};

/// Dumps every series point with full precision (harvest helper and
/// mismatch diagnostics).
fn dump(fig: &FigureResult) -> String {
    let mut s = String::new();
    for series in &fig.series {
        for (x, y) in &series.points {
            s.push_str(&format!("{}|{x:.6}|{y:.15e}\n", series.label));
        }
    }
    s
}

fn assert_pinned(fig: &FigureResult, expected: &[(&str, f64, f64)]) {
    let mut got = Vec::new();
    for series in &fig.series {
        for (x, y) in &series.points {
            got.push((series.label.as_str(), *x, *y));
        }
    }
    assert_eq!(
        got.len(),
        expected.len(),
        "{}: point count changed\n{}",
        fig.id,
        dump(fig)
    );
    for ((gl, gx, gy), (el, ex, ey)) in got.iter().zip(expected) {
        assert_eq!(gl, el, "{}: series order changed\n{}", fig.id, dump(fig));
        assert!(
            (gx - ex).abs() < 1e-12,
            "{}: x drifted in {gl}: {gx} vs {ex}\n{}",
            fig.id,
            dump(fig)
        );
        let close = if ey.is_nan() {
            gy.is_nan()
        } else {
            (gy - ey).abs() <= 1e-12 * ey.abs().max(1.0)
        };
        assert!(
            close,
            "{}: output drifted in {gl} at x = {gx}: {gy:.15e} vs pinned {ey:.15e}\n{}",
            fig.id,
            dump(fig)
        );
    }
}

#[test]
fn fig2c_outputs_are_pinned() {
    let fig = fig2c::run(&RunOptions::quick().with_reps(6));
    assert_pinned(
        &fig,
        &[
            ("With Optimization", 0.05, 7.960406199748584e-3),
            ("With Optimization", 0.10, 1.595226859654244e-2),
            ("With Optimization", 0.15, 2.400792294497973e-2),
            ("With Optimization", 0.20, 3.216152889113352e-2),
            ("With Optimization", 0.25, 4.045015310279484e-2),
            ("With Optimization", 0.30, 4.891508590121662e-2),
            ("With Optimization", 0.35, 5.760352341992267e-2),
            ("With Optimization", 0.40, 6.657081147260872e-2),
            ("With Optimization", 0.45, 7.588355787663302e-2),
            ("With Optimization", 0.50, 8.562411537059093e-2),
            ("With Optimization", 0.55, 9.589729621682620e-2),
            ("With Optimization", 0.60, 1.068408727943407e-1),
            ("With Optimization", 0.65, 1.186428426224872e-1),
            ("With Optimization", 0.70, 1.315715948094838e-1),
            ("With Optimization", 0.75, 1.460328315340131e-1),
            ("With Optimization", 0.80, 1.626884901803949e-1),
            ("With Optimization", 0.85, 1.827434867785582e-1),
            ("With Optimization", 0.90, 2.088084165561958e-1),
            ("With Optimization", 0.95, 2.488105746390864e-1),
            ("No Optimization", 0.05, 2.087019940832666e-2),
            ("No Optimization", 0.10, 4.182286911885764e-2),
            ("No Optimization", 0.15, 6.294278541430372e-2),
            ("No Optimization", 0.20, 8.431950636587049e-2),
            ("No Optimization", 0.25, 1.060502115305792e-1),
            ("No Optimization", 0.30, 1.282431538312782e-1),
            ("No Optimization", 0.35, 1.510220697574415e-1),
            ("No Optimization", 0.40, 1.745320622270939e-1),
            ("No Optimization", 0.45, 1.989477603226638e-1),
            ("No Optimization", 0.50, 2.244850723826429e-1),
            ("No Optimization", 0.55, 2.514187900144773e-1),
            ("No Optimization", 0.60, 2.801101180299037e-1),
            ("No Optimization", 0.65, 3.110519390304766e-1),
            ("No Optimization", 0.70, 3.449479023108406e-1),
            ("No Optimization", 0.75, 3.828616577849613e-1),
            ("No Optimization", 0.80, 4.265286401605573e-1),
            ("No Optimization", 0.85, 4.791078387132897e-1),
            ("No Optimization", 0.90, 5.474435829420838e-1),
            ("No Optimization", 0.95, 6.523192632785599e-1),
        ],
    );
}

#[test]
fn abl_pairing_outputs_are_pinned() {
    let fig = ablations::pairing_strategy(&RunOptions::quick().with_reps(4));
    assert_pinned(
        &fig,
        &[
            ("greedy by overlap", 0.5, 9.950556960251575e-2),
            ("greedy by overlap", 0.6, 1.241620057412271e-1),
            ("greedy by overlap", 0.7, 1.529020933923225e-1),
            ("greedy by overlap", 0.8, 1.890636862419914e-1),
            ("greedy by overlap", 0.9, 2.426606142124308e-1),
            ("id-order pairing", 0.5, 2.054273053456451e-1),
            ("id-order pairing", 0.6, 2.563300362745316e-1),
            ("id-order pairing", 0.7, 3.156633860070768e-1),
            ("id-order pairing", 0.8, 3.903182882983555e-1),
            ("id-order pairing", 0.9, 5.009680994773031e-1),
        ],
    );
}

#[test]
fn abl_degeneracy_outputs_are_pinned() {
    let fig = ablations::degeneracy_policy(&RunOptions::quick().with_reps(4));
    assert_pinned(
        &fig,
        &[
            ("coverage, drop (paper)", 0.0, 9.166666666666666e-1),
            ("coverage, drop (paper)", 0.1, 9.705882352941176e-1),
            ("coverage, drop (paper)", 0.2, 9.142857142857143e-1),
            ("coverage, drop (paper)", 0.3, 9.375000000000000e-1),
            ("coverage, clamp", 0.0, 9.166666666666666e-1),
            ("coverage, clamp", 0.1, 9.722222222222222e-1),
            ("coverage, clamp", 0.2, 9.166666666666666e-1),
            ("coverage, clamp", 0.3, 9.444444444444444e-1),
            ("evaluated fraction, drop (paper)", 0.0, 1.0),
            (
                "evaluated fraction, drop (paper)",
                0.1,
                9.444444444444444e-1,
            ),
            (
                "evaluated fraction, drop (paper)",
                0.2,
                9.722222222222222e-1,
            ),
            (
                "evaluated fraction, drop (paper)",
                0.3,
                8.888888888888888e-1,
            ),
            ("evaluated fraction, clamp", 0.0, 1.0),
            ("evaluated fraction, clamp", 0.1, 1.0),
            ("evaluated fraction, clamp", 0.2, 1.0),
            ("evaluated fraction, clamp", 0.3, 1.0),
        ],
    );
}

#[test]
fn ext_kary_acc_outputs_are_pinned() {
    let fig = ablations::kary_m_accuracy(&RunOptions::quick().with_reps(2));
    let ideal: Vec<(&str, f64, f64)> = (1..=9)
        .map(|i| ("Ideal interval-accuracy", i as f64 / 10.0, i as f64 / 10.0))
        .collect();
    let mut expected = ideal;
    expected.extend([
        ("arity 2, m = 5, n = 400", 0.1, 1.750000000000000e-1),
        ("arity 2, m = 5, n = 400", 0.2, 2.500000000000000e-1),
        ("arity 2, m = 5, n = 400", 0.3, 3.250000000000000e-1),
        ("arity 2, m = 5, n = 400", 0.4, 4.750000000000000e-1),
        ("arity 2, m = 5, n = 400", 0.5, 5.250000000000000e-1),
        ("arity 2, m = 5, n = 400", 0.6, 6.250000000000000e-1),
        ("arity 2, m = 5, n = 400", 0.7, 7.250000000000000e-1),
        ("arity 2, m = 5, n = 400", 0.8, 9.000000000000000e-1),
        ("arity 2, m = 5, n = 400", 0.9, 1.0),
        ("arity 3, m = 5, n = 400", 0.1, 1.111111111111111e-1),
        ("arity 3, m = 5, n = 400", 0.2, 2.000000000000000e-1),
        ("arity 3, m = 5, n = 400", 0.3, 3.333333333333333e-1),
        ("arity 3, m = 5, n = 400", 0.4, 4.111111111111111e-1),
        ("arity 3, m = 5, n = 400", 0.5, 5.444444444444444e-1),
        ("arity 3, m = 5, n = 400", 0.6, 5.888888888888889e-1),
        ("arity 3, m = 5, n = 400", 0.7, 6.888888888888889e-1),
        ("arity 3, m = 5, n = 400", 0.8, 7.555555555555555e-1),
        ("arity 3, m = 5, n = 400", 0.9, 8.000000000000000e-1),
    ]);
    assert_pinned(&fig, &expected);
}
