//! Harness run options.

/// Options shared by all figure runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Monte-Carlo repetitions (the paper uses 500).
    pub reps: usize,
    /// Base seed; repetition `i` uses `seed + i`.
    pub seed: u64,
    /// Worker threads for the repetition loop.
    pub threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            reps: 500,
            seed: 20150413,
            threads: default_threads(),
        }
    }
}

impl RunOptions {
    /// A drastically scaled-down configuration for smoke tests and
    /// Criterion timing runs.
    pub fn quick() -> Self {
        Self {
            reps: 8,
            ..Self::default()
        }
    }

    /// Overrides the repetition count.
    pub fn with_reps(self, reps: usize) -> Self {
        Self { reps, ..self }
    }

    /// Overrides the seed.
    pub fn with_seed(self, seed: u64) -> Self {
        Self { seed, ..self }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_scale() {
        let o = RunOptions::default();
        assert_eq!(o.reps, 500);
        assert!(o.threads >= 1);
    }

    #[test]
    fn builders() {
        let o = RunOptions::quick().with_reps(3).with_seed(9);
        assert_eq!(o.reps, 3);
        assert_eq!(o.seed, 9);
    }
}
