//! Streaming-maintenance benchmark: incremental [`StreamingIndex`]
//! upkeep versus rebuilding the full [`OverlapIndex`] at every ingest
//! event, across ingest schedules (stream order × batch granularity).
//!
//! Emits `BENCH_PR2.json` (override the path with the first CLI
//! argument):
//!
//! ```text
//! cargo run --release -p crowd_bench --bin scaling_pr2
//! ```
//!
//! Each schedule streams the same response set twice:
//!
//! * **rebuild arm** — the pre-PR-2 recipe: keep a `ResponseMatrix`,
//!   insert each arriving batch, then rebuild the `OverlapIndex` from
//!   scratch so evaluation always has an indexed substrate;
//! * **incremental arm** — the shipped [`IncrementalEvaluator`]
//!   ingesting response by response: amortized row appends, pair-table
//!   updates and anchored bitset maintenance, no rebuilds ever. The
//!   product streaming path itself is what gets timed and verified,
//!   not a reimplementation.
//!
//! At mid-stream and final checkpoints both arms run a full
//! `evaluate_all` and the streamed substrate's report is verified
//! **bit-identical** to the batch estimator on the accumulated matrix
//! — the speedups below are only meaningful because the outputs agree
//! exactly.

use crowd_core::{EstimatorConfig, IncrementalEvaluator, MWorkerEstimator, WorkerReport};
use crowd_data::{OverlapIndex, Response, ResponseMatrix};
use crowd_sim::{BinaryScenario, rng};
use std::time::Instant;

/// How the stream is ordered before ingestion.
#[derive(Clone, Copy)]
enum StreamOrder {
    /// Tasks complete one after another (the natural platform order).
    TaskMajor,
    /// Responses arrive fully interleaved (deterministic shuffle).
    Shuffled,
}

impl StreamOrder {
    fn label(self) -> &'static str {
        match self {
            Self::TaskMajor => "task-major",
            Self::Shuffled => "shuffled",
        }
    }
}

/// One benchmark schedule: a scenario shape plus an ingest pattern.
struct Schedule {
    m: usize,
    n: usize,
    density: f64,
    order: StreamOrder,
    /// Responses per ingest event (the rebuild arm rebuilds once per
    /// event).
    chunk: usize,
}

/// Timing and equivalence results for one schedule.
struct Row {
    m: usize,
    n: usize,
    density: f64,
    order: &'static str,
    chunk: usize,
    events: usize,
    responses: usize,
    rebuild_maintain_ms: f64,
    incremental_maintain_ms: f64,
    eval_batch_ms: f64,
    eval_streaming_ms: f64,
    outputs_identical: bool,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let confidence = 0.9;
    let est = MWorkerEstimator::new(EstimatorConfig::default());

    let schedules = [
        Schedule {
            m: 50,
            n: 1000,
            density: 0.5,
            order: StreamOrder::TaskMajor,
            chunk: 250,
        },
        Schedule {
            m: 50,
            n: 1000,
            density: 0.5,
            order: StreamOrder::Shuffled,
            chunk: 1000,
        },
        Schedule {
            m: 200,
            n: 5000,
            density: 0.5,
            order: StreamOrder::TaskMajor,
            chunk: 1000,
        },
        Schedule {
            m: 200,
            n: 5000,
            density: 0.5,
            order: StreamOrder::Shuffled,
            chunk: 2000,
        },
    ];

    let mut rows = Vec::new();
    for s in &schedules {
        let inst = BinaryScenario::paper_default(s.m, s.n, s.density).generate(&mut rng(20260730));
        let responses = stream_of(inst.responses(), s.order);
        let nnz = responses.len();
        let events = nnz.div_ceil(s.chunk);
        eprintln!(
            "schedule m={} n={} density={} order={} chunk={} ({events} events) ...",
            s.m,
            s.n,
            s.density,
            s.order.label(),
            s.chunk
        );

        // Checkpoints (event indices, 1-based) where both arms
        // evaluate and the outputs are compared.
        let checkpoints = [events.div_ceil(2), events];

        // Rebuild arm: matrix insert + full index rebuild per event.
        let mut rebuild_maintain = 0.0;
        let mut rebuild_reports: Vec<WorkerReport> = Vec::new();
        let mut eval_batch_ms = 0.0;
        {
            let mut accumulated = ResponseMatrix::empty(s.m, s.n, 2);
            for (e, chunk) in responses.chunks(s.chunk).enumerate() {
                let start = Instant::now();
                for r in chunk {
                    accumulated.insert(*r).expect("stream is duplicate-free");
                }
                let index = OverlapIndex::from_matrix(&accumulated);
                rebuild_maintain += start.elapsed().as_secs_f64() * 1e3;
                if checkpoints.contains(&(e + 1)) {
                    let start = Instant::now();
                    let report = est
                        .evaluate_all_indexed(&index, confidence)
                        .expect("m >= 3");
                    eval_batch_ms += start.elapsed().as_secs_f64() * 1e3;
                    rebuild_reports.push(report);
                }
            }
        }

        // Incremental arm: the shipped streaming evaluator itself.
        let mut incremental_maintain = 0.0;
        let mut streaming_reports: Vec<WorkerReport> = Vec::new();
        let mut eval_streaming_ms = 0.0;
        {
            let mut monitor = IncrementalEvaluator::new(s.m, s.n, 2, EstimatorConfig::default());
            for (e, chunk) in responses.chunks(s.chunk).enumerate() {
                let start = Instant::now();
                for r in chunk {
                    monitor.ingest(*r).expect("stream is duplicate-free");
                }
                incremental_maintain += start.elapsed().as_secs_f64() * 1e3;
                if checkpoints.contains(&(e + 1)) {
                    let start = Instant::now();
                    let report = monitor.evaluate_all(confidence).expect("m >= 3");
                    eval_streaming_ms += start.elapsed().as_secs_f64() * 1e3;
                    streaming_reports.push(report);
                }
            }
        }

        let outputs_identical = rebuild_reports.len() == streaming_reports.len()
            && rebuild_reports
                .iter()
                .zip(&streaming_reports)
                .all(|(a, b)| reports_identical(a, b));
        assert!(
            outputs_identical,
            "streamed substrate diverged from batch on m={} n={} order={} chunk={}",
            s.m,
            s.n,
            s.order.label(),
            s.chunk
        );

        eprintln!(
            "  rebuild {rebuild_maintain:.1} ms | incremental {incremental_maintain:.1} ms \
             ({:.1}x) | eval batch {eval_batch_ms:.1} ms | eval streaming {eval_streaming_ms:.1} ms",
            rebuild_maintain / incremental_maintain
        );
        rows.push(Row {
            m: s.m,
            n: s.n,
            density: s.density,
            order: s.order.label(),
            chunk: s.chunk,
            events,
            responses: nnz,
            rebuild_maintain_ms: rebuild_maintain,
            incremental_maintain_ms: incremental_maintain,
            eval_batch_ms,
            eval_streaming_ms,
            outputs_identical,
        });
    }

    // Acceptance floor: on the 200×5000-scale stream, incremental
    // maintenance must beat per-ingest full rebuild by ≥ 10×.
    let flagship_speedup = rows
        .iter()
        .filter(|r| r.m == 200)
        .map(|r| r.rebuild_maintain_ms / r.incremental_maintain_ms)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        flagship_speedup >= 10.0,
        "flagship incremental-maintenance speedup {flagship_speedup:.2}x fell below the 10x floor"
    );

    let json = render_json(&rows);
    std::fs::write(&out_path, json).expect("write benchmark output");
    eprintln!("wrote {out_path} (flagship incremental speedup {flagship_speedup:.1}x)");
}

/// The scenario's responses in the requested stream order.
fn stream_of(data: &ResponseMatrix, order: StreamOrder) -> Vec<Response> {
    match order {
        StreamOrder::TaskMajor => {
            let mut out = Vec::with_capacity(data.n_responses());
            for task in data.tasks() {
                for &(w, label) in data.task_responses(task) {
                    out.push(Response {
                        worker: crowd_data::WorkerId(w),
                        task,
                        label,
                    });
                }
            }
            out
        }
        StreamOrder::Shuffled => {
            let mut out: Vec<Response> = data.iter().collect();
            let mut seed = 0x5eed_cafe_f00du64;
            for i in (1..out.len()).rev() {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = ((seed >> 33) as usize) % (i + 1);
                out.swap(i, j);
            }
            out
        }
    }
}

/// Bit-exact equality of two assessment reports.
fn reports_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.weights_fell_back == y.weights_fell_back
                && x.interval.center.to_bits() == y.interval.center.to_bits()
                && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
        })
        && a.failures.iter().zip(&b.failures).all(|(x, y)| x.0 == y.0)
}

/// Hand-rolled JSON (the workspace builds without serde).
fn render_json(rows: &[Row]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = format!(
        "{{\n  \"benchmark\": \"streaming maintenance: incremental StreamingIndex vs per-ingest full rebuild\",\n  \"confidence\": 0.9,\n  \"timing\": \"total wall clock over the stream, milliseconds\",\n  \"host_available_parallelism\": {cores},\n  \"schedules\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"workers\": {},\n",
                "      \"tasks\": {},\n",
                "      \"density\": {},\n",
                "      \"stream_order\": \"{}\",\n",
                "      \"chunk\": {},\n",
                "      \"ingest_events\": {},\n",
                "      \"responses\": {},\n",
                "      \"rebuild_maintain_ms\": {:.2},\n",
                "      \"incremental_maintain_ms\": {:.2},\n",
                "      \"maintenance_speedup\": {:.2},\n",
                "      \"eval_batch_ms\": {:.2},\n",
                "      \"eval_streaming_ms\": {:.2},\n",
                "      \"outputs_identical\": {}\n",
                "    }}{}\n",
            ),
            r.m,
            r.n,
            r.density,
            r.order,
            r.chunk,
            r.events,
            r.responses,
            r.rebuild_maintain_ms,
            r.incremental_maintain_ms,
            r.rebuild_maintain_ms / r.incremental_maintain_ms,
            r.eval_batch_ms,
            r.eval_streaming_ms,
            r.outputs_identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
