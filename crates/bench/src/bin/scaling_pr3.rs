//! Peer-scoped anchored-view benchmark: view memory and evaluate-all
//! throughput of the peer-scoped [`crowd_data::OverlapSource::anchored_for`]
//! path versus the population-wide views the pre-PR-3 pipeline built,
//! plus streaming ingest + evaluation residency on the lazily anchored
//! [`crowd_data::StreamingIndex`].
//!
//! Emits `BENCH_PR3.json` (override the path with the first CLI
//! argument; pass `--smoke` for a seconds-scale CI rot check):
//!
//! ```text
//! cargo run --release -p crowd_bench --bin scaling_pr3
//! ```
//!
//! Per fleet size `m ∈ {200, 2000, 10000}` the harness runs the same
//! `evaluate_all` twice over one shared [`OverlapIndex`]:
//!
//! * **peer-scoped arm** — the shipped
//!   [`MWorkerEstimator::evaluate_all_indexed`]: every evaluation
//!   builds its anchored view over the ≤ 2l peers the pairing
//!   selected, into a reused scratch allocation;
//! * **population arm** — the pre-PR-3 recipe, reconstructed through a
//!   thin adapter whose `anchored_for` ignores the peer scope: every
//!   evaluation allocates and fills an `m × words` mask matrix.
//!
//! The two reports are verified **bit-identical** (the memory numbers
//! are only meaningful because the outputs agree exactly), and view
//! memory is *measured* — `mask_bytes()` on real views, averaged over
//! the fleet — not derived from a formula. The streaming schedule
//! then ingests the full response stream into an
//! [`IncrementalEvaluator`] and evaluates once at the end, verifying
//! bit-identity against the batch path and measuring the resident
//! mask bytes of the maintained (peer-scoped, lazily anchored) views
//! against what population-scoped maintenance would hold.
//!
//! The `m = 200` row runs the paper-default (uncapped) configuration,
//! pinning backward compatibility with the PR 1/PR 2 outputs; the
//! larger rows use [`EstimatorConfig::fleet`] (16 triples) — the knob
//! that bounds every view at `O(l)` rows and makes fleet-scale memory
//! track the pairing degree instead of the worker count.

use crowd_core::{EstimatorConfig, IncrementalEvaluator, MWorkerEstimator, WorkerReport};
use crowd_data::{BitsetAnchored, OverlapIndex, OverlapSource, PairStats, TripleStats, WorkerId};
use crowd_sim::{BinaryScenario, rng};
use std::time::Instant;

/// The pre-PR-3 view discipline: an [`OverlapIndex`] whose anchored
/// views always cover the whole population. `anchored_for` is left at
/// the trait default (ignore the peer scope, forward to `anchored`),
/// so every evaluation pays the `m × words` build the peer-scoped
/// refactor removed — the comparison arm, not a reimplementation of
/// the estimator.
struct PopulationViews<'a>(&'a OverlapIndex);

impl OverlapSource for PopulationViews<'_> {
    type Anchored<'b>
        = BitsetAnchored<'b>
    where
        Self: 'b;

    fn n_workers(&self) -> usize {
        OverlapSource::n_workers(self.0)
    }

    fn arity(&self) -> u16 {
        OverlapSource::arity(self.0)
    }

    fn pair(&self, a: WorkerId, b: WorkerId) -> PairStats {
        self.0.pair(a, b)
    }

    fn triple(&self, a: WorkerId, b: WorkerId, c: WorkerId) -> TripleStats {
        self.0.triple(a, b, c)
    }

    fn anchored(&self, anchor: WorkerId) -> BitsetAnchored<'_> {
        self.0.anchored(anchor)
    }
}

/// One benchmark schedule: a fleet shape plus the triple cap.
struct Schedule {
    m: usize,
    n: usize,
    density: f64,
    /// `None` = paper default (pair every peer).
    max_triples: Option<usize>,
}

/// Measurements for one schedule.
struct Row {
    m: usize,
    n: usize,
    density: f64,
    max_triples: Option<usize>,
    responses: usize,
    eval_peer_scoped_ms: f64,
    eval_population_ms: f64,
    outputs_identical: bool,
    bytes_per_view_peer_scoped: f64,
    bytes_per_view_population: f64,
    view_memory_reduction: f64,
    ingest_ms: f64,
    eval_streaming_ms: f64,
    streaming_outputs_identical: bool,
    streaming_resident_mask_bytes: usize,
    streaming_population_mask_bytes: f64,
    streaming_memory_reduction: f64,
    streaming_reanchors: usize,
}

fn main() {
    let mut out_path = "BENCH_PR3.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let confidence = 0.9;

    let schedules: Vec<Schedule> = if smoke {
        vec![Schedule {
            m: 60,
            n: 300,
            density: 0.4,
            max_triples: Some(4),
        }]
    } else {
        vec![
            // Paper-default configuration: backward compatibility with
            // the PR 1/PR 2 outputs (peers ≈ m − 1, so little memory
            // headroom — the cap below is what unlocks it).
            Schedule {
                m: 200,
                n: 2000,
                density: 0.3,
                max_triples: None,
            },
            Schedule {
                m: 200,
                n: 2000,
                density: 0.3,
                max_triples: Some(16),
            },
            Schedule {
                m: 2000,
                n: 2000,
                density: 0.1,
                max_triples: Some(16),
            },
            Schedule {
                m: 10000,
                n: 1000,
                density: 0.05,
                max_triples: Some(16),
            },
        ]
    };

    let mut rows = Vec::new();
    for s in &schedules {
        rows.push(run_schedule(s, confidence));
    }

    for r in &rows {
        assert!(
            r.outputs_identical,
            "peer-scoped evaluate_all diverged from the population-view path at m={}",
            r.m
        );
        assert!(
            r.streaming_outputs_identical,
            "streamed evaluation diverged from batch at m={}",
            r.m
        );
    }
    // Acceptance floor: at the flagship fleet size the peer-scoped
    // views must undercut population-wide views by ≥ 10×, in both the
    // per-evaluation (batch) and resident (streaming) senses.
    if !smoke {
        let flagship = rows
            .iter()
            .max_by_key(|r| r.m)
            .expect("at least one schedule");
        assert!(
            flagship.view_memory_reduction >= 10.0,
            "flagship per-view memory reduction {:.1}x fell below the 10x floor",
            flagship.view_memory_reduction
        );
        assert!(
            flagship.streaming_memory_reduction >= 10.0,
            "flagship streaming residency reduction {:.1}x fell below the 10x floor",
            flagship.streaming_memory_reduction
        );
    }

    let json = render_json(&rows);
    std::fs::write(&out_path, json).expect("write benchmark output");
    let best = rows
        .iter()
        .map(|r| r.view_memory_reduction)
        .fold(f64::NEG_INFINITY, f64::max);
    eprintln!("wrote {out_path} (best per-view memory reduction {best:.0}x)");
}

fn run_schedule(s: &Schedule, confidence: f64) -> Row {
    let config = match s.max_triples {
        Some(cap) => EstimatorConfig::fleet(cap),
        None => EstimatorConfig::default(),
    };
    let est = MWorkerEstimator::new(config.clone());
    let cap_label = s
        .max_triples
        .map_or("uncapped".to_string(), |c| format!("cap {c}"));
    eprintln!(
        "schedule m={} n={} density={} ({cap_label}) ...",
        s.m, s.n, s.density
    );
    let inst = BinaryScenario::paper_default(s.m, s.n, s.density).generate(&mut rng(20260730));
    let data = inst.responses();
    let index = OverlapIndex::from_matrix(data);

    // Peer-scoped arm: the shipped hot path.
    let start = Instant::now();
    let scoped_report = est
        .evaluate_all_indexed(&index, confidence)
        .expect("m >= 3");
    let eval_peer_scoped_ms = start.elapsed().as_secs_f64() * 1e3;

    // Population arm: the same estimator over the full-view adapter.
    let start = Instant::now();
    let population_report = evaluate_all_population(&est, &index, confidence);
    let eval_population_ms = start.elapsed().as_secs_f64() * 1e3;

    let outputs_identical = reports_identical(&scoped_report, &population_report);

    // Measured bytes per view, averaged over a deterministic sample of
    // anchors (building all m population views just to weigh them
    // would double the population arm for no extra information).
    let sample: Vec<WorkerId> = (0..s.m as u32)
        .step_by((s.m / 64).max(1))
        .map(WorkerId)
        .collect();
    let mut scoped_bytes = 0usize;
    let mut population_bytes = 0usize;
    for &w in &sample {
        let pairs = crowd_core::pairing::form_pairs_limited(
            &index,
            w,
            config.pairing,
            config.min_pair_overlap,
            config.max_triples,
        );
        let peers = crowd_core::pairing::pairing_peers(&pairs);
        scoped_bytes += index.anchored_for(w, &peers).mask_bytes();
        population_bytes += index.anchored(w).mask_bytes();
    }
    let bytes_per_view_peer_scoped = scoped_bytes as f64 / sample.len() as f64;
    let bytes_per_view_population = population_bytes as f64 / sample.len() as f64;

    // Streaming schedule: ingest everything, evaluate once, measure
    // what actually stays resident in the maintained views.
    let mut monitor = IncrementalEvaluator::new(s.m, s.n, 2, config.clone());
    let start = Instant::now();
    for r in data.iter() {
        monitor.ingest(r).expect("stream is duplicate-free");
    }
    let ingest_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let streaming_report = monitor.evaluate_all(confidence).expect("m >= 3");
    let eval_streaming_ms = start.elapsed().as_secs_f64() * 1e3;
    let streaming_outputs_identical = reports_identical(&scoped_report, &streaming_report);
    let streaming_resident_mask_bytes = monitor.view_mask_bytes();
    let streaming_population_mask_bytes = bytes_per_view_population * s.m as f64;

    let row = Row {
        m: s.m,
        n: s.n,
        density: s.density,
        max_triples: s.max_triples,
        responses: data.n_responses(),
        eval_peer_scoped_ms,
        eval_population_ms,
        outputs_identical,
        bytes_per_view_peer_scoped,
        bytes_per_view_population,
        view_memory_reduction: bytes_per_view_population / bytes_per_view_peer_scoped,
        ingest_ms,
        eval_streaming_ms,
        streaming_outputs_identical,
        streaming_resident_mask_bytes,
        streaming_population_mask_bytes,
        streaming_memory_reduction: streaming_population_mask_bytes
            / streaming_resident_mask_bytes.max(1) as f64,
        streaming_reanchors: monitor.reanchor_count(),
    };
    eprintln!(
        "  eval scoped {eval_peer_scoped_ms:.1} ms | population {eval_population_ms:.1} ms | \
         view {bytes_per_view_peer_scoped:.0} B vs {bytes_per_view_population:.0} B \
         ({:.1}x) | streaming resident {streaming_resident_mask_bytes} B ({:.1}x)",
        row.view_memory_reduction, row.streaming_memory_reduction
    );
    row
}

/// The population arm: every worker evaluated through the full-view
/// adapter, failure taxonomy collected exactly like
/// `evaluate_all_indexed`.
fn evaluate_all_population(
    est: &MWorkerEstimator,
    index: &OverlapIndex,
    confidence: f64,
) -> WorkerReport {
    let pop = PopulationViews(index);
    let mut report = WorkerReport::default();
    for worker in index.workers() {
        match est.evaluate_worker_on(&pop, worker, confidence) {
            Ok(a) => report.assessments.push(a),
            Err(e) => report.failures.push((worker, e)),
        }
    }
    report
}

/// Bit-exact equality of two assessment reports.
fn reports_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.weights_fell_back == y.weights_fell_back
                && x.interval.center.to_bits() == y.interval.center.to_bits()
                && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
        })
        && a.failures.iter().zip(&b.failures).all(|(x, y)| x.0 == y.0)
}

/// Hand-rolled JSON (the workspace builds without serde).
fn render_json(rows: &[Row]) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = format!(
        "{{\n  \"benchmark\": \"peer-scoped anchored views: per-view memory and evaluate-all/streaming throughput vs population-wide views\",\n  \"confidence\": 0.9,\n  \"timing\": \"wall clock, milliseconds; view memory measured via mask_bytes()\",\n  \"host_available_parallelism\": {cores},\n  \"schedules\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"workers\": {},\n",
                "      \"tasks\": {},\n",
                "      \"density\": {},\n",
                "      \"max_triples\": {},\n",
                "      \"responses\": {},\n",
                "      \"eval_peer_scoped_ms\": {:.2},\n",
                "      \"eval_population_ms\": {:.2},\n",
                "      \"outputs_identical\": {},\n",
                "      \"bytes_per_view_peer_scoped\": {:.1},\n",
                "      \"bytes_per_view_population\": {:.1},\n",
                "      \"view_memory_reduction\": {:.2},\n",
                "      \"streaming_ingest_ms\": {:.2},\n",
                "      \"eval_streaming_ms\": {:.2},\n",
                "      \"streaming_outputs_identical\": {},\n",
                "      \"streaming_resident_mask_bytes\": {},\n",
                "      \"streaming_population_mask_bytes\": {:.0},\n",
                "      \"streaming_memory_reduction\": {:.2},\n",
                "      \"streaming_reanchors\": {}\n",
                "    }}{}\n",
            ),
            r.m,
            r.n,
            r.density,
            r.max_triples.map_or("null".to_string(), |c| c.to_string()),
            r.responses,
            r.eval_peer_scoped_ms,
            r.eval_population_ms,
            r.outputs_identical,
            r.bytes_per_view_peer_scoped,
            r.bytes_per_view_population,
            r.view_memory_reduction,
            r.ingest_ms,
            r.eval_streaming_ms,
            r.streaming_outputs_identical,
            r.streaming_resident_mask_bytes,
            r.streaming_population_mask_bytes,
            r.streaming_memory_reduction,
            r.streaming_reanchors,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
