//! Materializes the real-dataset stand-ins as CSV files.
//!
//! ```text
//! cargo run --release -p crowd-bench --bin datasets -- [--out DIR] [--seed S]
//! ```
//!
//! Writes `<name>_responses.csv` and `<name>_gold.csv` for each of the
//! six stand-ins (IC, ENT, TEM, MOOC, WSD, WS) in the `worker,task,
//! label` / `task,label` formats of `crowd_data::csv`, plus a summary
//! of each dataset's shape. Downstream users can load these with
//! [`crowd_data::csv::read_responses`] and reproduce the Figure 3–5
//! protocols without the generator.

use crowd_datasets::Dataset;
use std::path::PathBuf;

fn parse_args() -> Result<(PathBuf, u64), String> {
    let mut out = PathBuf::from("data");
    let mut seed = 20150413u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad --seed {v}"))?;
            }
            "--help" | "-h" => {
                println!("usage: datasets [--out DIR] [--seed S]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok((out, seed))
}

fn main() {
    let (out, seed) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("error creating {}: {e}", out.display());
        std::process::exit(1);
    }
    type Generator = fn(u64) -> Dataset;
    let generators: [(&str, Generator); 6] = [
        ("ic", crowd_datasets::ic::generate),
        ("ent", crowd_datasets::ent::generate),
        ("tem", crowd_datasets::tem::generate),
        ("mooc", crowd_datasets::mooc::generate),
        ("wsd", crowd_datasets::wsd::generate),
        ("ws", crowd_datasets::ws::generate),
    ];
    println!(
        "{:<6} {:>8} {:>7} {:>7} {:>9} {:>8}",
        "name", "workers", "tasks", "arity", "responses", "density"
    );
    for (name, generate) in generators {
        let d = generate(seed);
        let m = &d.responses;
        println!(
            "{:<6} {:>8} {:>7} {:>7} {:>9} {:>8.3}",
            name,
            m.n_workers(),
            m.n_tasks(),
            m.arity(),
            m.n_responses(),
            m.density()
        );
        type CsvWriter<'a> = &'a dyn Fn(&mut Vec<u8>) -> std::io::Result<()>;
        let write = |path: PathBuf, body: CsvWriter| {
            let mut buf = Vec::new();
            if let Err(e) = body(&mut buf).and_then(|()| std::fs::write(&path, &buf)) {
                eprintln!("error writing {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        write(out.join(format!("{name}_responses.csv")), &|buf| {
            crowd_data::csv::write_responses(m, buf)
        });
        write(out.join(format!("{name}_gold.csv")), &|buf| {
            crowd_data::csv::write_gold(&d.gold, buf)
        });
    }
    println!("\nwrote 12 CSV files to {}", out.display());
}
