//! `evaluate_all` scaling benchmark: the naive per-worker merge-scan
//! path versus the one-pass [`crowd_data::OverlapIndex`] substrate, at
//! 1, 4 and 8 threads, over several m × n × density scenarios.
//!
//! Emits `BENCH_PR1.json` (override the path with the first CLI
//! argument) so future PRs have a recorded perf trajectory to beat:
//!
//! ```text
//! cargo run --release -p crowd_bench --bin scaling_pr1
//! ```
//!
//! Every timed variant is also checked for *bit-identical* output
//! against the naive reference — the speedup claims below are only
//! meaningful because the substrates agree exactly.

use crowd_core::{EstimatorConfig, MWorkerEstimator, WorkerReport};
use crowd_sim::{BinaryScenario, rng};
use std::time::Instant;

/// One benchmark scenario shape.
struct Scenario {
    m: usize,
    n: usize,
    density: f64,
    /// Timed repetitions (the minimum is reported).
    reps: usize,
}

/// Timing and equivalence results for one scenario.
struct Row {
    m: usize,
    n: usize,
    density: f64,
    naive_ms: f64,
    indexed_ms: f64,
    indexed_4t_ms: f64,
    indexed_8t_ms: f64,
    outputs_identical: bool,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR1.json".to_string());
    let confidence = 0.9;
    let est = MWorkerEstimator::new(EstimatorConfig::default());

    let scenarios = [
        Scenario {
            m: 25,
            n: 500,
            density: 0.8,
            reps: 5,
        },
        Scenario {
            m: 50,
            n: 1000,
            density: 0.7,
            reps: 3,
        },
        Scenario {
            m: 100,
            n: 2000,
            density: 0.5,
            reps: 3,
        },
        Scenario {
            m: 200,
            n: 5000,
            density: 0.5,
            reps: 1,
        },
    ];

    let mut rows = Vec::new();
    for s in &scenarios {
        eprintln!("scenario m={} n={} density={} ...", s.m, s.n, s.density);
        let inst = BinaryScenario::paper_default(s.m, s.n, s.density).generate(&mut rng(20260730));
        let data = inst.responses();

        let (naive_ms, naive) = time_best(s.reps, || {
            est.evaluate_all_naive(data, confidence).expect("m >= 3")
        });
        let (indexed_ms, indexed) = time_best(s.reps, || {
            est.evaluate_all(data, confidence).expect("m >= 3")
        });
        let (indexed_4t_ms, par4) = time_best(s.reps, || {
            est.evaluate_all_parallel(data, confidence, 4)
                .expect("m >= 3")
        });
        let (indexed_8t_ms, par8) = time_best(s.reps, || {
            est.evaluate_all_parallel(data, confidence, 8)
                .expect("m >= 3")
        });

        let outputs_identical = reports_identical(&naive, &indexed)
            && reports_identical(&indexed, &par4)
            && reports_identical(&indexed, &par8);
        assert!(
            outputs_identical,
            "substrates diverged on m={} n={} density={}",
            s.m, s.n, s.density
        );

        eprintln!(
            "  naive {naive_ms:.1} ms | indexed {indexed_ms:.1} ms ({:.1}x) | 4t {indexed_4t_ms:.1} ms | 8t {indexed_8t_ms:.1} ms ({:.1}x)",
            naive_ms / indexed_ms,
            naive_ms / indexed_8t_ms
        );
        rows.push(Row {
            m: s.m,
            n: s.n,
            density: s.density,
            naive_ms,
            indexed_ms,
            indexed_4t_ms,
            indexed_8t_ms,
            outputs_identical,
        });
    }

    let flagship = rows.last().expect("scenarios are non-empty");
    let flagship_speedup = flagship.naive_ms / flagship.indexed_ms;
    assert!(
        flagship_speedup >= 5.0,
        "flagship scenario speedup {flagship_speedup:.2}x fell below the 5x floor"
    );

    let json = render_json(&rows);
    std::fs::write(&out_path, json).expect("write benchmark output");
    eprintln!("wrote {out_path} (flagship indexed speedup {flagship_speedup:.1}x)");
}

/// Runs `f` `reps` times, returning the best wall-clock milliseconds
/// and the last result.
fn time_best<T>(reps: usize, f: impl Fn() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one repetition"))
}

/// Bit-exact equality of two assessment reports.
fn reports_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.weights_fell_back == y.weights_fell_back
                && x.interval.center.to_bits() == y.interval.center.to_bits()
                && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
        })
        && a.failures.iter().zip(&b.failures).all(|(x, y)| x.0 == y.0)
}

/// Hand-rolled JSON (the workspace builds without serde).
fn render_json(rows: &[Row]) -> String {
    // Threaded columns only mean something relative to the host's core
    // budget — on a 1-core container 8t ≈ 1t by construction.
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = format!(
        "{{\n  \"benchmark\": \"evaluate_all scaling: naive merge scans vs OverlapIndex\",\n  \"confidence\": 0.9,\n  \"timing\": \"best-of-reps wall clock, milliseconds\",\n  \"host_available_parallelism\": {cores},\n  \"scenarios\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"workers\": {},\n",
                "      \"tasks\": {},\n",
                "      \"density\": {},\n",
                "      \"naive_ms\": {:.2},\n",
                "      \"indexed_1t_ms\": {:.2},\n",
                "      \"indexed_4t_ms\": {:.2},\n",
                "      \"indexed_8t_ms\": {:.2},\n",
                "      \"speedup_indexed_1t\": {:.2},\n",
                "      \"speedup_indexed_8t\": {:.2},\n",
                "      \"outputs_identical\": {}\n",
                "    }}{}\n",
            ),
            r.m,
            r.n,
            r.density,
            r.naive_ms,
            r.indexed_ms,
            r.indexed_4t_ms,
            r.indexed_8t_ms,
            r.naive_ms / r.indexed_ms,
            r.naive_ms / r.indexed_8t_ms,
            r.outputs_identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
