//! Dirty-set incremental assessment benchmark: the report-cache
//! service against its cache-disabled twin under skewed arrivals.
//!
//! Emits `BENCH_PR8.json` (override the path with the first CLI
//! argument; pass `--smoke` for a seconds-scale CI rot check):
//!
//! ```text
//! cargo run --release -p crowd_bench --bin scaling_pr8
//! ```
//!
//! The workload is a community-structured fleet whose per-worker
//! activity follows [`crowd_sim::skewed_activity_densities`] over the
//! *global* worker index: a few head communities answer almost
//! everything, the long tail hovers near the floor. That is the
//! regime the dirty-set machinery targets — a late burst lands on a
//! handful of hot workers and dirties one community's co-occurrence
//! neighbourhood, not the fleet.
//!
//! Three phases:
//!
//! 1. **Seed** — most of the trace streams into both services
//!    (identical order); a drain + snapshot warms the report cache
//!    and is compared **byte-for-byte** (via the wire encoding of the
//!    reports, so every interval bit pattern counts) between the two
//!    services before any number is written.
//! 2. **Burst loop** — held-out responses from the hot communities
//!    arrive in sparse bursts. After each burst both services drain,
//!    then each serves a fleet snapshot under the wall clock. Every
//!    drain point gates on byte identity; the cache-counter deltas
//!    report exactly how many anchors the dirty set forced the
//!    incremental service to re-evaluate.
//! 3. **Verdict** — in full runs the median steady-state speedup of
//!    the incremental snapshot over full re-evaluation must be ≥ 5×
//!    at `m = 10⁴`; the cache counters are also fetched over a
//!    loopback `crowd_wire` connection and must agree with the
//!    in-process stats (the Stats reply carries them end to end).

use crowd_core::{EstimatorConfig, WorkerReport};
use crowd_data::{Label, Response, ResponseMatrix, ResponseMatrixBuilder, TaskId, WorkerId};
use crowd_service::{AssessmentService, ServiceConfig};
use crowd_shard::ShardPlan;
use crowd_sim::skewed_activity_densities;
use crowd_wire::proto::encode_reply;
use crowd_wire::{Reply, WireClient, WireConfig, WireServer};
use std::time::Instant;

/// Community-structured fleet with global-Zipf worker activity.
struct Workload {
    communities: usize,
    workers_per: usize,
    tasks_per: usize,
    /// Zipf exponent of [`skewed_activity_densities`].
    exponent: f64,
    /// Activity floor of the quiet majority.
    floor: f64,
    /// Communities the held-out bursts land in (the Zipf head).
    hot_communities: usize,
    n_bursts: usize,
    burst_size: usize,
}

impl Workload {
    fn n_workers(&self) -> usize {
        self.communities * self.workers_per
    }

    fn n_tasks(&self) -> usize {
        self.communities * self.tasks_per
    }

    /// Deterministic skewed-activity crowd; same `(shape, seed)` →
    /// same matrix. Worker `w` answers only its community's tasks,
    /// with attempt probability `activity[w]` — the global Zipf
    /// density, so contiguous head communities are dense and the tail
    /// is quiet.
    fn generate(&self, seed: u64) -> ResponseMatrix {
        let m = self.n_workers();
        let n = self.n_tasks();
        let activity = skewed_activity_densities(m, self.exponent, self.floor);
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let unit = |x: u32| x as f64 / u32::MAX as f64 * 2.0;
        let truths: Vec<u16> = (0..n).map(|_| (next() % 2) as u16).collect();
        let error_rates: Vec<f64> = (0..m).map(|_| 0.05 + 0.15 * unit(next())).collect();
        let mut b = ResponseMatrixBuilder::new(m, n, 2);
        for w in 0..m {
            let community = w / self.workers_per;
            for t in community * self.tasks_per..(community + 1) * self.tasks_per {
                if unit(next()) / 2.0 >= activity[w] {
                    continue;
                }
                let flip = unit(next()) / 2.0 < error_rates[w];
                let label = Label(truths[t] ^ u16::from(flip));
                b.push(WorkerId(w as u32), TaskId(t as u32), label)
                    .expect("generated ids are valid");
            }
        }
        b.build().expect("generated cells are unique")
    }

    /// Splits the trace into the seed stream and per-burst held-out
    /// groups: burst `b` is `burst_size` responses from hot community
    /// `b % hot_communities`, so each burst dirties one community's
    /// neighbourhood.
    fn split(&self, data: &ResponseMatrix) -> (Vec<Response>, Vec<Vec<Response>>) {
        let per_comm = self.n_bursts.div_ceil(self.hot_communities) * self.burst_size;
        let mut pools: Vec<Vec<Response>> = vec![Vec::new(); self.hot_communities];
        let mut seed = Vec::new();
        for r in data.iter() {
            let community = r.worker.index() / self.workers_per;
            if community < self.hot_communities && pools[community].len() < per_comm {
                pools[community].push(r);
            } else {
                seed.push(r);
            }
        }
        for (c, pool) in pools.iter().enumerate() {
            assert!(
                pool.len() >= self.n_bursts.div_ceil(self.hot_communities) * self.burst_size,
                "hot community {c} too sparse for the burst schedule ({} held out)",
                pool.len()
            );
        }
        let bursts = (0..self.n_bursts)
            .map(|b| {
                let community = b % self.hot_communities;
                let round = b / self.hot_communities;
                pools[community][round * self.burst_size..(round + 1) * self.burst_size].to_vec()
            })
            .collect();
        (seed, bursts)
    }
}

/// One burst → drain → timed-snapshot measurement.
struct BurstRow {
    burst: usize,
    community: usize,
    /// Anchors the dirty set forced the cache to re-evaluate
    /// (cache-miss delta across the incremental snapshot).
    dirty: u64,
    hits: u64,
    incremental_ms: f64,
    full_ms: f64,
    speedup: f64,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Byte-for-byte equality via the wire encoding — the strongest
/// equality the protocol can state (NaN payloads and signed zeros
/// included): the gate every drain point must pass.
fn reports_byte_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    encode_reply(&Reply::Report(a.clone())) == encode_reply(&Reply::Report(b.clone()))
}

fn main() {
    let mut out_path = "BENCH_PR8.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let confidence = 0.9;

    let (workload, n_shards) = if smoke {
        (
            Workload {
                communities: 4,
                workers_per: 12,
                tasks_per: 30,
                exponent: 1.0,
                floor: 0.3,
                hot_communities: 2,
                n_bursts: 4,
                burst_size: 12,
            },
            2usize,
        )
    } else {
        (
            Workload {
                communities: 200,
                workers_per: 50,
                tasks_per: 50,
                exponent: 1.0,
                floor: 0.15,
                hot_communities: 4,
                n_bursts: 20,
                burst_size: 64,
            },
            8usize,
        )
    };
    let config = EstimatorConfig::fleet(16);

    eprintln!(
        "generating skewed-activity workload: {} workers, {} tasks ...",
        workload.n_workers(),
        workload.n_tasks()
    );
    let data = workload.generate(20260808);
    let (seed, bursts) = workload.split(&data);
    eprintln!(
        "trace: {} responses ({} seed + {} bursts x {})",
        data.n_responses(),
        seed.len(),
        bursts.len(),
        workload.burst_size
    );

    let spawn = |incremental: bool| {
        AssessmentService::spawn(
            ShardPlan::build_clustered(&data, n_shards),
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default()
                .with_estimator(config.clone())
                .with_incremental(incremental),
        )
    };
    let mut cached = spawn(true);
    let mut full = spawn(false);

    // Phase 1 — seed both services identically, warm the cache, gate.
    let start = Instant::now();
    for chunk in seed.chunks(512) {
        cached.ingest_batch(chunk).expect("seed ingest");
        full.ingest_batch(chunk).expect("seed ingest");
    }
    cached.drain().expect("drain");
    full.drain().expect("drain");
    eprintln!("seeded both services in {:.0} ms", ms(start));
    let start = Instant::now();
    let warm = cached.snapshot(confidence).expect("warm snapshot");
    let warm_cached_ms = ms(start);
    let start = Instant::now();
    let warm_full = full.snapshot(confidence).expect("warm snapshot");
    let warm_full_ms = ms(start);
    assert!(
        reports_byte_identical(&warm, &warm_full),
        "cached and uncached services diverged on the seed snapshot"
    );
    let mut identity_checkpoints = 1usize;
    eprintln!(
        "warm snapshot: incremental {warm_cached_ms:.1} ms (cold cache), full {warm_full_ms:.1} ms"
    );

    // Phase 2 — sparse bursts into the hot communities; every drain
    // point gates on byte identity before its timing is recorded.
    let mut rows: Vec<BurstRow> = Vec::new();
    let mut stats_before = cached.stats().expect("stats");
    for (b, burst) in bursts.iter().enumerate() {
        cached.ingest_batch(burst).expect("burst ingest");
        full.ingest_batch(burst).expect("burst ingest");
        cached.drain().expect("drain");
        full.drain().expect("drain");
        let start = Instant::now();
        let inc = cached.snapshot(confidence).expect("incremental snapshot");
        let incremental_ms = ms(start);
        let start = Instant::now();
        let reference = full.snapshot(confidence).expect("full snapshot");
        let full_ms = ms(start);
        assert!(
            reports_byte_identical(&inc, &reference),
            "burst {b}: incremental snapshot diverged from full re-evaluation"
        );
        identity_checkpoints += 1;
        let stats_after = cached.stats().expect("stats");
        let row = BurstRow {
            burst: b,
            community: b % workload.hot_communities,
            dirty: stats_after.total_cache_misses() - stats_before.total_cache_misses(),
            hits: stats_after.total_cache_hits() - stats_before.total_cache_hits(),
            incremental_ms,
            full_ms,
            speedup: full_ms / incremental_ms,
        };
        eprintln!(
            "burst {b} (community {}): dirty {} of {} anchors; incremental {:.2} ms vs full {:.1} ms ({:.1}x)",
            row.community,
            row.dirty,
            data.n_workers(),
            row.incremental_ms,
            row.full_ms,
            row.speedup
        );
        stats_before = stats_after;
        rows.push(row);
    }

    // Phase 3 — verdict. The counters also round-trip over the wire:
    // the Stats reply must carry exactly the in-process numbers.
    let final_stats = cached.stats().expect("stats");
    let server = WireServer::bind("127.0.0.1:0", cached.handle(), WireConfig::default())
        .expect("bind loopback");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let over_wire = client.stats().expect("wire stats");
    assert_eq!(
        (
            over_wire.total_cache_hits(),
            over_wire.total_cache_misses(),
            over_wire.total_cache_full_refreshes(),
        ),
        (
            final_stats.total_cache_hits(),
            final_stats.total_cache_misses(),
            final_stats.total_cache_full_refreshes(),
        ),
        "wire Stats reply dropped the cache counters"
    );
    drop(client);
    drop(server);

    let mut speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    let median_speedup = crowd_obs::sample_percentile(&mut speedups, 0.5);
    let mean_dirty = rows.iter().map(|r| r.dirty).sum::<u64>() as f64 / rows.len() as f64;
    let hit_rate = final_stats.total_cache_hits() as f64
        / (final_stats.total_cache_hits() + final_stats.total_cache_misses()) as f64;
    eprintln!(
        "median steady-state speedup {median_speedup:.1}x; mean dirty set {mean_dirty:.1} of {} anchors; hit rate {:.4}",
        data.n_workers(),
        hit_rate
    );
    if !smoke {
        assert!(
            median_speedup >= 5.0,
            "median incremental-snapshot speedup {median_speedup:.2}x fell below the 5x floor \
             at m = {} — the dirty-set machinery is not earning its keep",
            data.n_workers()
        );
    }

    // Power-of-two histogram of per-burst dirty-set sizes.
    let mut dirty_hist = [0u64; 12];
    for r in &rows {
        let bucket = (63 - (r.dirty.max(1)).leading_zeros()) as usize;
        dirty_hist[bucket.min(11)] += 1;
    }

    let json = render_json(
        &workload,
        &data,
        n_shards,
        seed.len(),
        identity_checkpoints,
        warm_cached_ms,
        warm_full_ms,
        &rows,
        median_speedup,
        mean_dirty,
        hit_rate,
        final_stats.total_cache_full_refreshes(),
        &dirty_hist,
        smoke,
    );
    std::fs::write(&out_path, json).expect("write benchmark output");
    eprintln!("wrote {out_path}");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    w: &Workload,
    data: &ResponseMatrix,
    n_shards: usize,
    seed_responses: usize,
    identity_checkpoints: usize,
    warm_cached_ms: f64,
    warm_full_ms: f64,
    rows: &[BurstRow],
    median_speedup: f64,
    mean_dirty: f64,
    hit_rate: f64,
    full_refreshes: u64,
    dirty_hist: &[u64; 12],
    smoke: bool,
) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"dirty-set incremental assessment: report-cache snapshots vs full re-evaluation under skewed arrivals\",\n",
            "  \"confidence\": 0.9,\n",
            "  \"smoke\": {},\n",
            "  \"timing\": \"wall clock; snapshot latency in milliseconds, measured after each burst's drain barrier\",\n",
            "  \"host_available_parallelism\": {},\n",
            "  \"workload\": {{\n",
            "    \"workers\": {},\n",
            "    \"tasks\": {},\n",
            "    \"communities\": {},\n",
            "    \"activity\": \"skewed_activity_densities(exponent = {}, floor = {}) over the global worker index\",\n",
            "    \"responses\": {},\n",
            "    \"seed_responses\": {},\n",
            "    \"bursts\": {},\n",
            "    \"burst_size\": {},\n",
            "    \"hot_communities\": {},\n",
            "    \"shards\": {}\n",
            "  }},\n",
            "  \"bit_identity\": {{\n",
            "    \"verified\": true,\n",
            "    \"checkpoints\": {},\n",
            "    \"comparison\": \"byte equality of wire-encoded reports at every drain point, gated before timings are recorded\"\n",
            "  }},\n",
            "  \"warm_snapshot\": {{\n",
            "    \"incremental_cold_cache_ms\": {:.2},\n",
            "    \"full_ms\": {:.2}\n",
            "  }},\n",
            "  \"bursts\": [\n",
        ),
        smoke,
        cores,
        w.n_workers(),
        w.n_tasks(),
        w.communities,
        w.exponent,
        w.floor,
        data.n_responses(),
        seed_responses,
        w.n_bursts,
        w.burst_size,
        w.hot_communities,
        n_shards,
        identity_checkpoints,
        warm_cached_ms,
        warm_full_ms,
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"burst\": {},\n",
                "      \"community\": {},\n",
                "      \"dirty_anchors\": {},\n",
                "      \"cache_hits\": {},\n",
                "      \"incremental_snapshot_ms\": {:.3},\n",
                "      \"full_snapshot_ms\": {:.3},\n",
                "      \"speedup\": {:.2}\n",
                "    }}{}\n",
            ),
            r.burst,
            r.community,
            r.dirty,
            r.hits,
            r.incremental_ms,
            r.full_ms,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str(&format!(
        concat!(
            "  ],\n",
            "  \"summary\": {{\n",
            "    \"median_speedup\": {:.2},\n",
            "    \"speedup_floor\": 5.0,\n",
            "    \"speedup_floor_enforced\": {},\n",
            "    \"mean_dirty_anchors\": {:.1},\n",
            "    \"anchors\": {},\n",
            "    \"cache_hit_rate\": {:.4},\n",
            "    \"cache_full_refreshes\": {},\n",
            "    \"dirty_histogram_pow2\": [{}],\n",
            "    \"wire_stats_roundtrip\": \"cache counters fetched over loopback TCP matched in-process stats\"\n",
            "  }}\n",
            "}}\n",
        ),
        median_speedup,
        !smoke,
        mean_dirty,
        data.n_workers(),
        hit_rate,
        full_refreshes,
        dirty_hist
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    ));
    s
}
