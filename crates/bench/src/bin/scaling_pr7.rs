//! Wire-protocol overhead benchmark: the thread-per-shard assessment
//! runtime served over `crowd_wire`'s loopback TCP transport,
//! measured against the in-process handle it wraps.
//!
//! Emits `BENCH_PR7.json` (override the path with the first CLI
//! argument; pass `--smoke` for a seconds-scale CI rot check):
//!
//! ```text
//! cargo run --release -p crowd_bench --bin scaling_pr7
//! ```
//!
//! The workload is the community-structured fleet of `scaling_pr6`
//! streamed in [`crowd_sim::ArrivalSchedule`] order. Three phases:
//!
//! 1. **Bit-identity gate** — per shard count: the trace is streamed
//!    *over the wire*, and at the mid-stream and final drain points
//!    the over-the-wire snapshot is compared **byte-for-byte** (via
//!    its wire encoding, so every interval bit pattern counts)
//!    against the in-process snapshot of the same service AND against
//!    a serial [`crowd_core::IncrementalEvaluator`]. Any divergence
//!    aborts before a single number is written.
//! 2. **Closed-loop throughput** — per (shard count, batch ∈ {1, 256}),
//!    three transports: `in_process` (the handle, same code path as
//!    `scaling_pr6` — the in-run baseline alongside the archived
//!    `BENCH_PR6.json` numbers), `wire_serial` (one request/reply
//!    round trip per batch), and `wire_pipelined` (window-bounded
//!    pipelining via [`crowd_wire::WireClient::ingest_batches`]). An
//!    `assess_worker` is mixed in every `assess_every` responses on
//!    all three. In full runs the **pipelining floor** is asserted:
//!    at batch 1, pipelined wire ingest must beat serial wire ingest
//!    — amortizing round trips is the reason the pipelined path
//!    exists.
//! 3. **Open-loop latency** — the same Poisson schedule replayed
//!    against the wall clock through [`crowd_sim::ArrivalCursor`],
//!    offered at half the best wire throughput, once in-process and
//!    once over the wire; every `assess_every`-th arrival issues a
//!    blocking `assess_worker` and its round trip is recorded
//!    (p50/p99/max). The wire rows price exactly what the transport
//!    adds: framing, two socket hops, and the connection thread.

use crowd_core::{EstimatorConfig, IncrementalEvaluator, WorkerReport};
use crowd_data::{Label, Response, ResponseMatrix, ResponseMatrixBuilder, TaskId, WorkerId};
use crowd_service::{AssessmentService, ServiceConfig, ServiceHandle};
use crowd_shard::ShardPlan;
use crowd_sim::ArrivalSchedule;
use crowd_wire::proto::encode_reply;
use crowd_wire::{Reply, WireClient, WireConfig, WireServer};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Community-structured workload (same shape and seed as
/// `scaling_pr6`, so the archived PR6 numbers stay comparable).
struct Workload {
    communities: usize,
    workers_per: usize,
    tasks_per: usize,
    density: f64,
}

impl Workload {
    fn n_workers(&self) -> usize {
        self.communities * self.workers_per
    }

    fn n_tasks(&self) -> usize {
        self.communities * self.tasks_per
    }

    /// Deterministic community-structured binary crowd; same
    /// `(shape, seed)` → same matrix.
    fn generate(&self, seed: u64) -> ResponseMatrix {
        let m = self.n_workers();
        let n = self.n_tasks();
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let unit = |x: u32| x as f64 / u32::MAX as f64 * 2.0;
        let truths: Vec<u16> = (0..n).map(|_| (next() % 2) as u16).collect();
        let error_rates: Vec<f64> = (0..m).map(|_| 0.05 + 0.15 * unit(next())).collect();
        let mut b = ResponseMatrixBuilder::new(m, n, 2);
        for w in 0..m {
            let community = w / self.workers_per;
            for t in community * self.tasks_per..(community + 1) * self.tasks_per {
                if unit(next()) / 2.0 >= self.density {
                    continue;
                }
                let flip = unit(next()) / 2.0 < error_rates[w];
                let label = Label(truths[t] ^ u16::from(flip));
                b.push(WorkerId(w as u32), TaskId(t as u32), label)
                    .expect("generated ids are valid");
            }
        }
        b.build().expect("generated cells are unique")
    }
}

/// One closed-loop throughput measurement.
struct ThroughputRow {
    mode: &'static str,
    n_shards: usize,
    batch: usize,
    responses: usize,
    assess_requests: usize,
    wall_ms: f64,
    throughput_rps: f64,
}

/// One open-loop latency measurement.
struct LatencyRow {
    mode: &'static str,
    n_shards: usize,
    offered_rps: f64,
    achieved_rps: f64,
    assess_requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

/// A service with a wire server in front of it, torn down in order.
struct Deployment {
    service: AssessmentService,
    server: WireServer,
}

impl Deployment {
    fn spawn(data: &ResponseMatrix, n_shards: usize, config: &EstimatorConfig) -> Self {
        let plan = ShardPlan::build_clustered(data, n_shards);
        let service = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default().with_estimator(config.clone()),
        );
        let server = WireServer::bind("127.0.0.1:0", service.handle(), WireConfig::default())
            .expect("bind loopback");
        Self { service, server }
    }

    fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    fn handle(&self) -> ServiceHandle {
        self.service.handle()
    }
}

fn main() {
    let mut out_path = "BENCH_PR7.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let confidence = 0.9;

    let (workload, shard_counts, assess_every): (Workload, Vec<usize>, usize) = if smoke {
        (
            Workload {
                communities: 4,
                workers_per: 12,
                tasks_per: 30,
                density: 0.5,
            },
            vec![2],
            50,
        )
    } else {
        (
            Workload {
                communities: 40,
                workers_per: 50,
                tasks_per: 80,
                density: 0.35,
            },
            vec![2, 8],
            500,
        )
    };
    let config = EstimatorConfig::fleet(16);

    eprintln!(
        "generating community workload: {} workers, {} tasks ...",
        workload.n_workers(),
        workload.n_tasks()
    );
    let data = workload.generate(20260807);
    let sched = ArrivalSchedule::poisson(&data, 1000.0, &mut crowd_sim::rng(6));
    eprintln!("trace: {} responses", sched.len());

    // Phase 1 — over-the-wire bit-identity gate at every measured
    // shard count, before any number is written.
    let (reference_mid, reference_final) = serial_reference(&data, &sched, &config, confidence);
    let mut identity_checkpoints = 0usize;
    for &n_shards in &shard_counts {
        identity_checkpoints += verify_wire_identity(
            &data,
            &sched,
            n_shards,
            &config,
            confidence,
            &reference_mid,
            &reference_final,
        );
        eprintln!("wire bit-identity verified at {n_shards} shards (mid-stream + final)");
    }

    // Phase 2 — closed-loop throughput: three transports per
    // (shard count, batch size).
    let mut rows: Vec<ThroughputRow> = Vec::new();
    for &n_shards in &shard_counts {
        for &batch in &[1usize, 256] {
            for mode in ["in_process", "wire_serial", "wire_pipelined"] {
                rows.push(run_throughput(
                    &data,
                    &sched,
                    mode,
                    n_shards,
                    batch,
                    assess_every,
                    &config,
                    confidence,
                ));
            }
        }
    }
    for &n_shards in &shard_counts {
        let rps = |mode: &str, b: usize| {
            rows.iter()
                .find(|r| r.mode == mode && r.n_shards == n_shards && r.batch == b)
                .expect("measured above")
                .throughput_rps
        };
        let (pipelined, serial) = (rps("wire_pipelined", 1), rps("wire_serial", 1));
        eprintln!(
            "{n_shards} shards @ batch 1: pipelined {pipelined:.0} rps vs serial {serial:.0} rps \
             ({:.1}x); in-process {:.0} rps",
            pipelined / serial,
            rps("in_process", 1),
        );
        if !smoke {
            assert!(
                pipelined >= serial,
                "pipelined wire ingest ({pipelined:.0} rps) lost to serial round trips \
                 ({serial:.0} rps) at {n_shards} shards — the pipelining floor failed"
            );
        }
    }

    // Phase 3 — open-loop latency, in-process vs over the wire, on
    // the largest shard count, both offered the same rate.
    let best_wire_rps = rows
        .iter()
        .filter(|r| r.mode != "in_process")
        .map(|r| r.throughput_rps)
        .fold(f64::NEG_INFINITY, f64::max);
    let n_shards = *shard_counts.last().expect("non-empty");
    let offered = best_wire_rps * 0.5;
    let latencies = [
        run_latency(
            &data,
            "in_process",
            n_shards,
            offered,
            assess_every,
            &config,
            confidence,
        ),
        run_latency(
            &data,
            "wire",
            n_shards,
            offered,
            assess_every,
            &config,
            confidence,
        ),
    ];
    for l in &latencies {
        eprintln!(
            "open-loop {} @ {:.0} rps offered: assess p50 {:.3} ms, p99 {:.3} ms",
            l.mode, l.offered_rps, l.p50_ms, l.p99_ms
        );
    }

    let json = render_json(
        &workload,
        &data,
        identity_checkpoints,
        assess_every,
        &rows,
        &latencies,
    );
    std::fs::write(&out_path, json).expect("write benchmark output");
    eprintln!("wrote {out_path}");
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// The single-threaded streaming reference: one
/// [`IncrementalEvaluator`] fed the same arrival order, evaluated at
/// the same mid-stream cut and at the end.
fn serial_reference(
    data: &ResponseMatrix,
    sched: &ArrivalSchedule,
    config: &EstimatorConfig,
    confidence: f64,
) -> (WorkerReport, WorkerReport) {
    let mut serial = IncrementalEvaluator::new(
        data.n_workers(),
        data.n_tasks(),
        data.arity(),
        config.clone(),
    );
    let cut = sched.len() / 2;
    for r in &sched.responses()[..cut] {
        serial.ingest(*r).expect("valid trace");
    }
    let mid = serial.evaluate_all(confidence).expect("m >= 3");
    for r in &sched.responses()[cut..] {
        serial.ingest(*r).expect("valid trace");
    }
    let fin = serial.evaluate_all(confidence).expect("m >= 3");
    (mid, fin)
}

/// Byte-for-byte equality via the wire encoding — the strongest
/// equality the protocol can state (NaN payloads and signed zeros
/// included), and exactly what "no transport drift" means.
fn reports_byte_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    encode_reply(&Reply::Report(a.clone())) == encode_reply(&Reply::Report(b.clone()))
}

/// Streams the trace over the wire and checks the over-the-wire
/// snapshots byte-for-byte against the in-process handle and the
/// serial reference at both drain points. Returns checkpoints passed.
fn verify_wire_identity(
    data: &ResponseMatrix,
    sched: &ArrivalSchedule,
    n_shards: usize,
    config: &EstimatorConfig,
    confidence: f64,
    reference_mid: &WorkerReport,
    reference_final: &WorkerReport,
) -> usize {
    let dep = Deployment::spawn(data, n_shards, config);
    let mut client = WireClient::connect(dep.addr()).expect("connect");
    let cut = sched.len() / 2;
    let halves = [
        (&sched.responses()[..cut], reference_mid, "mid-stream"),
        (&sched.responses()[cut..], reference_final, "final"),
    ];
    let mut checkpoints = 0usize;
    for (half, reference, point) in halves {
        let batches: Vec<Vec<Response>> = half.chunks(64).map(<[Response]>::to_vec).collect();
        for receipt in client.ingest_batches(&batches).expect("pipelined ingest") {
            receipt.expect("default policy blocks, never sheds");
        }
        let over_wire = client.snapshot(confidence).expect("wire snapshot");
        let local = dep.handle().snapshot(confidence).expect("local snapshot");
        assert!(
            reports_byte_identical(&over_wire, &local),
            "{point} wire snapshot diverged from the in-process snapshot at {n_shards} shards"
        );
        assert!(
            reports_byte_identical(&over_wire, reference),
            "{point} wire snapshot diverged from serial streaming at {n_shards} shards"
        );
        checkpoints += 2;
    }
    checkpoints
}

#[allow(clippy::too_many_arguments)]
fn run_throughput(
    data: &ResponseMatrix,
    sched: &ArrivalSchedule,
    mode: &'static str,
    n_shards: usize,
    batch: usize,
    assess_every: usize,
    config: &EstimatorConfig,
    confidence: f64,
) -> ThroughputRow {
    let dep = Deployment::spawn(data, n_shards, config);
    let handle = dep.handle();
    let m = data.n_workers() as u32;
    let mut assess_requests = 0usize;
    let pick_worker = |seen: usize| WorkerId(((seen / assess_every) as u32 * 37) % m);

    let start = Instant::now();
    match mode {
        "in_process" => {
            let mut seen = 0usize;
            for group in sched.batches(batch) {
                handle.ingest_batch(group).expect("ingest");
                let before = seen;
                seen += group.len();
                if seen / assess_every > before / assess_every {
                    let _ = handle.assess_worker(pick_worker(seen), confidence);
                    assess_requests += 1;
                }
            }
            handle.drain().expect("drain");
        }
        "wire_serial" => {
            let mut client = WireClient::connect(dep.addr()).expect("connect");
            let mut seen = 0usize;
            for group in sched.batches(batch) {
                client.ingest_batch(group).expect("ingest");
                let before = seen;
                seen += group.len();
                if seen / assess_every > before / assess_every {
                    let _ = client.assess_worker(pick_worker(seen), confidence);
                    assess_requests += 1;
                }
            }
            client.drain().expect("drain");
        }
        "wire_pipelined" => {
            let mut client = WireClient::connect(dep.addr()).expect("connect");
            // Pipeline a window of batches, then interleave the same
            // assessment mix at window boundaries.
            let groups: Vec<Vec<Response>> =
                sched.batches(batch).map(<[Response]>::to_vec).collect();
            let mut seen = 0usize;
            for window in groups.chunks(assess_every.div_ceil(batch.max(1)).max(1)) {
                for receipt in client.ingest_batches(window).expect("pipelined ingest") {
                    receipt.expect("default policy blocks, never sheds");
                }
                let before = seen;
                seen += window.iter().map(Vec::len).sum::<usize>();
                if seen / assess_every > before / assess_every {
                    let _ = client.assess_worker(pick_worker(seen), confidence);
                    assess_requests += 1;
                }
            }
            client.drain().expect("drain");
        }
        other => unreachable!("unknown mode {other}"),
    }
    let wall_ms = ms(start);
    let row = ThroughputRow {
        mode,
        n_shards,
        batch,
        responses: sched.len(),
        assess_requests,
        wall_ms,
        throughput_rps: sched.len() as f64 / (wall_ms / 1e3),
    };
    eprintln!(
        "throughput: {mode}, {n_shards} shards, batch {batch}: {:.0} rps ({:.0} ms, {} assess)",
        row.throughput_rps, row.wall_ms, row.assess_requests
    );
    row
}

#[allow(clippy::too_many_arguments)]
fn run_latency(
    data: &ResponseMatrix,
    mode: &'static str,
    n_shards: usize,
    offered_rps: f64,
    assess_every: usize,
    config: &EstimatorConfig,
    confidence: f64,
) -> LatencyRow {
    let dep = Deployment::spawn(data, n_shards, config);
    let handle = dep.handle();
    let mut client = (mode == "wire").then(|| WireClient::connect(dep.addr()).expect("connect"));
    let sched = ArrivalSchedule::poisson(data, offered_rps, &mut crowd_sim::rng(60));
    let m = data.n_workers() as u32;
    let mut latencies: Vec<f64> = Vec::new();
    let mut cursor = sched.cursor();
    let t0 = Instant::now();
    while !cursor.is_done() {
        // Open loop: sleep until the next scheduled arrival, then
        // ingest everything that has come due as one group.
        if let Some(due) = cursor.next_due() {
            let due = Duration::from_secs_f64(due);
            let now = t0.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let delivered = sched.len() - cursor.remaining();
        let group = cursor.due_by(t0.elapsed().as_secs_f64(), usize::MAX);
        if group.is_empty() {
            continue;
        }
        let after = delivered + group.len();
        match &mut client {
            Some(c) => {
                c.ingest_batch(group).expect("ingest");
            }
            None => {
                handle.ingest_batch(group).expect("ingest");
            }
        }
        if after / assess_every > delivered / assess_every {
            let worker = WorkerId(((after / assess_every) as u32 * 37) % m);
            let start = Instant::now();
            match &mut client {
                Some(c) => {
                    let _ = c.assess_worker(worker, confidence);
                }
                None => {
                    let _ = handle.assess_worker(worker, confidence);
                }
            }
            latencies.push(ms(start));
        }
    }
    match &mut client {
        Some(c) => c.drain().expect("drain"),
        None => handle.drain().expect("drain"),
    }
    let achieved_rps = sched.len() as f64 / t0.elapsed().as_secs_f64();
    assert!(!latencies.is_empty(), "at least one assess");
    LatencyRow {
        mode,
        n_shards,
        offered_rps,
        achieved_rps,
        assess_requests: latencies.len(),
        p50_ms: crowd_obs::sample_percentile(&mut latencies, 0.50),
        p99_ms: crowd_obs::sample_percentile(&mut latencies, 0.99),
        max_ms: crowd_obs::sample_percentile(&mut latencies, 1.0),
    }
}

fn render_json(
    w: &Workload,
    data: &ResponseMatrix,
    identity_checkpoints: usize,
    assess_every: usize,
    rows: &[ThroughputRow],
    latencies: &[LatencyRow],
) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"wire protocol overhead: assessment service over loopback TCP vs the in-process handle\",\n",
            "  \"confidence\": 0.9,\n",
            "  \"timing\": \"wall clock; throughput in responses/second, latency in milliseconds (assess_worker round-trip)\",\n",
            "  \"baseline\": \"in_process rows re-measure the scaling_pr6 code path in this run; archived PR6 numbers in BENCH_PR6.json\",\n",
            "  \"host_available_parallelism\": {},\n",
            "  \"workload\": {{\n",
            "    \"workers\": {},\n",
            "    \"tasks\": {},\n",
            "    \"communities\": {},\n",
            "    \"within_community_density\": {},\n",
            "    \"responses\": {},\n",
            "    \"assess_every_n_responses\": {}\n",
            "  }},\n",
            "  \"bit_identity\": {{\n",
            "    \"verified\": true,\n",
            "    \"checkpoints\": {},\n",
            "    \"comparison\": \"byte equality of wire-encoded reports\",\n",
            "    \"reference\": \"in-process snapshot of the same service + serial IncrementalEvaluator, mid-stream + final\"\n",
            "  }},\n",
            "  \"throughput\": [\n",
        ),
        cores,
        w.n_workers(),
        w.n_tasks(),
        w.communities,
        w.density,
        data.n_responses(),
        assess_every,
        identity_checkpoints,
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"mode\": \"{}\",\n",
                "      \"shards\": {},\n",
                "      \"ingest_batch_size\": {},\n",
                "      \"responses\": {},\n",
                "      \"assess_requests\": {},\n",
                "      \"wall_ms\": {:.2},\n",
                "      \"throughput_rps\": {:.1}\n",
                "    }}{}\n",
            ),
            r.mode,
            r.n_shards,
            r.batch,
            r.responses,
            r.assess_requests,
            r.wall_ms,
            r.throughput_rps,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n  \"latency_open_loop\": [\n");
    for (i, l) in latencies.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"mode\": \"{}\",\n",
                "      \"shards\": {},\n",
                "      \"offered_rps\": {:.1},\n",
                "      \"achieved_rps\": {:.1},\n",
                "      \"assess_requests\": {},\n",
                "      \"assess_p50_ms\": {:.4},\n",
                "      \"assess_p99_ms\": {:.4},\n",
                "      \"assess_max_ms\": {:.4}\n",
                "    }}{}\n",
            ),
            l.mode,
            l.n_shards,
            l.offered_rps,
            l.achieved_rps,
            l.assess_requests,
            l.p50_ms,
            l.p99_ms,
            l.max_ms,
            if i + 1 < latencies.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
