//! Pipelined-runtime load benchmark: sustained ingest+assess
//! throughput and open-loop request latency of the thread-per-shard
//! [`crowd_service::AssessmentService`].
//!
//! Emits `BENCH_PR6.json` (override the path with the first CLI
//! argument; pass `--smoke` for a seconds-scale CI rot check):
//!
//! ```text
//! cargo run --release -p crowd_bench --bin scaling_pr6
//! ```
//!
//! The workload is the community-structured fleet of `scaling_pr4`
//! (co-occurrence is local — the regime sharding and the clustered
//! plan are for), streamed in the arrival order of a
//! [`crowd_sim::ArrivalSchedule`]. Three phases:
//!
//! 1. **Bit-identity gate** — for every shard count measured below,
//!    the full trace is streamed through a service and its mid-stream
//!    and final snapshots are compared bit for bit against a serial
//!    [`crowd_core::IncrementalEvaluator`] fed the same prefix. Any
//!    divergence aborts before a single number is written.
//! 2. **Closed-loop throughput** — per (shard count ∈ {1, 2, 8},
//!    batch ∈ {1, 256}): ingest the whole trace (an `assess_worker`
//!    request mixed in every `assess_every` responses), `drain()`,
//!    and report responses/second plus the runtime counters
//!    (queue-depth high-water, batch histogram, re-anchor and
//!    gram-patch totals). The **batching floor** is asserted here:
//!    at every shard count, batched ingest must sustain at least the
//!    request-at-a-time throughput — the amortization the runtime
//!    exists to provide, and a floor that holds even on one core.
//!    Thread scaling across shard counts is reported (meaningful when
//!    cores are available; on a 1-core host it shows the fan-out
//!    overhead instead).
//! 3. **Open-loop latency** — a Poisson arrival schedule offered at
//!    half the best measured throughput, ingested in due-time groups;
//!    every `assess_every`-th arrival issues a blocking
//!    `assess_worker` and its round-trip is recorded. p50/p99/max
//!    land in the JSON; because arrivals are scheduled up front
//!    (open loop), queueing delay is measured, not hidden.

use crowd_core::{EstimatorConfig, IncrementalEvaluator, WorkerReport};
use crowd_data::{Label, Response, ResponseMatrix, ResponseMatrixBuilder, TaskId, WorkerId};
use crowd_service::{AssessmentService, ServiceConfig, ServiceStats};
use crowd_shard::ShardPlan;
use crowd_sim::ArrivalSchedule;
use std::time::{Duration, Instant};

/// Community-structured workload (same shape as `scaling_pr4`).
struct Workload {
    communities: usize,
    workers_per: usize,
    tasks_per: usize,
    density: f64,
}

impl Workload {
    fn n_workers(&self) -> usize {
        self.communities * self.workers_per
    }

    fn n_tasks(&self) -> usize {
        self.communities * self.tasks_per
    }

    /// Deterministic community-structured binary crowd; same
    /// `(shape, seed)` → same matrix.
    fn generate(&self, seed: u64) -> ResponseMatrix {
        let m = self.n_workers();
        let n = self.n_tasks();
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let unit = |x: u32| x as f64 / u32::MAX as f64 * 2.0;
        let truths: Vec<u16> = (0..n).map(|_| (next() % 2) as u16).collect();
        let error_rates: Vec<f64> = (0..m).map(|_| 0.05 + 0.15 * unit(next())).collect();
        let mut b = ResponseMatrixBuilder::new(m, n, 2);
        for w in 0..m {
            let community = w / self.workers_per;
            for t in community * self.tasks_per..(community + 1) * self.tasks_per {
                if unit(next()) / 2.0 >= self.density {
                    continue;
                }
                let flip = unit(next()) / 2.0 < error_rates[w];
                let label = Label(truths[t] ^ u16::from(flip));
                b.push(WorkerId(w as u32), TaskId(t as u32), label)
                    .expect("generated ids are valid");
            }
        }
        b.build().expect("generated cells are unique")
    }
}

/// One closed-loop throughput measurement.
struct ThroughputRow {
    n_shards: usize,
    batch: usize,
    responses: usize,
    assess_requests: usize,
    wall_ms: f64,
    throughput_rps: f64,
    stats: ServiceStats,
}

/// The open-loop latency measurement.
struct LatencyRow {
    n_shards: usize,
    offered_rps: f64,
    achieved_rps: f64,
    assess_requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn main() {
    let mut out_path = "BENCH_PR6.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let confidence = 0.9;

    let (workload, shard_counts, assess_every): (Workload, Vec<usize>, usize) = if smoke {
        (
            Workload {
                communities: 4,
                workers_per: 12,
                tasks_per: 30,
                density: 0.5,
            },
            vec![1, 2],
            50,
        )
    } else {
        (
            Workload {
                communities: 40,
                workers_per: 50,
                tasks_per: 80,
                density: 0.35,
            },
            vec![1, 2, 8],
            500,
        )
    };
    let config = EstimatorConfig::fleet(16);

    eprintln!(
        "generating community workload: {} workers, {} tasks ...",
        workload.n_workers(),
        workload.n_tasks()
    );
    let data = workload.generate(20260807);
    let sched = ArrivalSchedule::poisson(&data, 1000.0, &mut crowd_sim::rng(6));
    eprintln!("trace: {} responses", sched.len());

    // Phase 1 — bit-identity gate at every measured shard count,
    // mid-stream and final, before any number is written.
    let (reference_mid, reference_final) = serial_reference(&data, &sched, &config, confidence);
    let mut identity_checkpoints = 0usize;
    for &n_shards in &shard_counts {
        let plan = ShardPlan::build_clustered(&data, n_shards);
        let mut service = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default().with_estimator(config.clone()),
        );
        let cut = sched.len() / 2;
        for batch in sched.responses()[..cut].chunks(64) {
            service.ingest_batch(batch).expect("ingest");
        }
        let snap = service.snapshot(confidence).expect("snapshot");
        assert!(
            reports_identical(&snap, &reference_mid),
            "mid-stream snapshot diverged from serial streaming at {n_shards} shards"
        );
        for batch in sched.responses()[cut..].chunks(64) {
            service.ingest_batch(batch).expect("ingest");
        }
        let snap = service.snapshot(confidence).expect("snapshot");
        assert!(
            reports_identical(&snap, &reference_final),
            "final snapshot diverged from serial streaming at {n_shards} shards"
        );
        identity_checkpoints += 2;
        eprintln!("bit-identity verified at {n_shards} shards (mid-stream + final)");
    }

    // Phase 2 — closed-loop throughput across shard counts × batch
    // sizes, with the batching floor asserted per shard count.
    let mut rows: Vec<ThroughputRow> = Vec::new();
    for &n_shards in &shard_counts {
        for &batch in &[1usize, 256] {
            rows.push(run_throughput(
                &data,
                &sched,
                n_shards,
                batch,
                assess_every,
                &config,
                confidence,
            ));
        }
    }
    for &n_shards in &shard_counts {
        let rps = |b: usize| {
            rows.iter()
                .find(|r| r.n_shards == n_shards && r.batch == b)
                .expect("measured above")
                .throughput_rps
        };
        let (batched, one_at_a_time) = (rps(256), rps(1));
        eprintln!(
            "{n_shards} shards: batched {batched:.0} rps vs request-at-a-time {one_at_a_time:.0} rps \
             ({:.1}x)",
            batched / one_at_a_time
        );
        if !smoke {
            assert!(
                batched >= one_at_a_time,
                "batched ingest ({batched:.0} rps) lost to request-at-a-time \
                 ({one_at_a_time:.0} rps) at {n_shards} shards — the amortization floor failed"
            );
        }
    }

    // Phase 3 — open-loop latency at half the best sustained
    // throughput, on the largest shard count.
    let best_rps = rows
        .iter()
        .map(|r| r.throughput_rps)
        .fold(f64::NEG_INFINITY, f64::max);
    let latency = run_latency(
        &data,
        *shard_counts.last().expect("non-empty"),
        best_rps * 0.5,
        assess_every,
        &config,
        confidence,
    );
    eprintln!(
        "open-loop @ {:.0} rps offered: assess p50 {:.3} ms, p99 {:.3} ms",
        latency.offered_rps, latency.p50_ms, latency.p99_ms
    );

    let json = render_json(
        &workload,
        &data,
        identity_checkpoints,
        assess_every,
        &rows,
        &latency,
    );
    std::fs::write(&out_path, json).expect("write benchmark output");
    eprintln!("wrote {out_path}");
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// The single-threaded streaming reference: one
/// [`IncrementalEvaluator`] fed the same arrival order, evaluated at
/// the same mid-stream cut and at the end.
fn serial_reference(
    data: &ResponseMatrix,
    sched: &ArrivalSchedule,
    config: &EstimatorConfig,
    confidence: f64,
) -> (WorkerReport, WorkerReport) {
    let mut serial = IncrementalEvaluator::new(
        data.n_workers(),
        data.n_tasks(),
        data.arity(),
        config.clone(),
    );
    let cut = sched.len() / 2;
    for r in &sched.responses()[..cut] {
        serial.ingest(*r).expect("valid trace");
    }
    let mid = serial.evaluate_all(confidence).expect("m >= 3");
    for r in &sched.responses()[cut..] {
        serial.ingest(*r).expect("valid trace");
    }
    let fin = serial.evaluate_all(confidence).expect("m >= 3");
    (mid, fin)
}

fn run_throughput(
    data: &ResponseMatrix,
    sched: &ArrivalSchedule,
    n_shards: usize,
    batch: usize,
    assess_every: usize,
    config: &EstimatorConfig,
    confidence: f64,
) -> ThroughputRow {
    let plan = ShardPlan::build_clustered(data, n_shards);
    let mut service = AssessmentService::spawn(
        plan,
        data.n_tasks(),
        data.arity(),
        ServiceConfig::default().with_estimator(config.clone()),
    );
    let m = data.n_workers() as u32;
    let mut assess_requests = 0usize;
    let mut seen = 0usize;
    let start = Instant::now();
    for group in sched.batches(batch) {
        service.ingest_batch(group).expect("ingest");
        let before = seen;
        seen += group.len();
        // One assessment per `assess_every` responses, interleaved
        // with ingest exactly as a serving mix would be.
        if seen / assess_every > before / assess_every {
            let worker = WorkerId(((seen / assess_every) as u32 * 37) % m);
            let _ = service.assess_worker(worker, confidence);
            assess_requests += 1;
        }
    }
    service.drain().expect("drain");
    let wall_ms = ms(start);
    let stats = service.stats().expect("live stats");
    let row = ThroughputRow {
        n_shards,
        batch,
        responses: sched.len(),
        assess_requests,
        wall_ms,
        throughput_rps: sched.len() as f64 / (wall_ms / 1e3),
        stats,
    };
    eprintln!(
        "throughput: {n_shards} shards, batch {batch}: {:.0} rps ({:.0} ms, {} assess)",
        row.throughput_rps, row.wall_ms, row.assess_requests
    );
    row
}

fn run_latency(
    data: &ResponseMatrix,
    n_shards: usize,
    offered_rps: f64,
    assess_every: usize,
    config: &EstimatorConfig,
    confidence: f64,
) -> LatencyRow {
    let plan = ShardPlan::build_clustered(data, n_shards);
    let mut service = AssessmentService::spawn(
        plan,
        data.n_tasks(),
        data.arity(),
        ServiceConfig::default().with_estimator(config.clone()),
    );
    let sched = ArrivalSchedule::poisson(data, offered_rps, &mut crowd_sim::rng(60));
    let m = data.n_workers() as u32;
    let mut latencies: Vec<f64> = Vec::new();
    let mut buf: Vec<Response> = Vec::new();
    let t0 = Instant::now();
    let mut i = 0usize;
    let arrivals: Vec<(f64, Response)> = sched.arrivals().collect();
    while i < arrivals.len() {
        // Open loop: sleep until the next scheduled arrival, then
        // ingest everything that has come due as one group (the
        // batching a real ingest front-end does under load).
        let due = Duration::from_secs_f64(arrivals[i].0);
        let now = t0.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        let now = t0.elapsed().as_secs_f64();
        buf.clear();
        let before = i;
        while i < arrivals.len() && arrivals[i].0 <= now {
            buf.push(arrivals[i].1);
            i += 1;
        }
        service.ingest_batch(&buf).expect("ingest");
        if i / assess_every > before / assess_every {
            let worker = WorkerId(((i / assess_every) as u32 * 37) % m);
            let start = Instant::now();
            let _ = service.assess_worker(worker, confidence);
            latencies.push(ms(start));
        }
    }
    service.drain().expect("drain");
    let achieved_rps = sched.len() as f64 / t0.elapsed().as_secs_f64();
    assert!(!latencies.is_empty(), "at least one assess");
    LatencyRow {
        n_shards,
        offered_rps,
        achieved_rps,
        assess_requests: latencies.len(),
        p50_ms: crowd_obs::sample_percentile(&mut latencies, 0.50),
        p99_ms: crowd_obs::sample_percentile(&mut latencies, 0.99),
        max_ms: crowd_obs::sample_percentile(&mut latencies, 1.0),
    }
}

/// Bit-exact equality of two assessment reports.
fn reports_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.weights_fell_back == y.weights_fell_back
                && x.interval.center.to_bits() == y.interval.center.to_bits()
                && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
        })
        && a.failures.iter().zip(&b.failures).all(|(x, y)| x.0 == y.0)
}

fn counters_json(stats: &ServiceStats, indent: &str) -> String {
    let buckets: Vec<String> = stats
        .batch_sizes
        .counts()
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| {
            format!(
                "{{\"min_size\": {}, \"batches\": {}}}",
                crowd_service::BatchHistogram::lower_bound(i),
                c
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "{i}  \"queue_depth_high_water\": {},\n",
            "{i}  \"dropped_batches\": {},\n",
            "{i}  \"dropped_responses\": {},\n",
            "{i}  \"reanchors\": {},\n",
            "{i}  \"gram_patches\": {},\n",
            "{i}  \"gram_rebuilds\": {},\n",
            "{i}  \"batch_size_histogram\": [{}]\n",
            "{i}}}",
        ),
        stats.max_queue_high_water(),
        stats.dropped_batches,
        stats.dropped_responses,
        stats.total_reanchors(),
        stats.total_gram_patches(),
        stats.total_gram_rebuilds(),
        buckets.join(", "),
        i = indent,
    )
}

fn render_json(
    w: &Workload,
    data: &ResponseMatrix,
    identity_checkpoints: usize,
    assess_every: usize,
    rows: &[ThroughputRow],
    latency: &LatencyRow,
) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"pipelined assessment runtime: thread-per-shard ingest/assess throughput and open-loop latency\",\n",
            "  \"confidence\": 0.9,\n",
            "  \"timing\": \"wall clock; throughput in responses/second, latency in milliseconds (assess_worker round-trip)\",\n",
            "  \"host_available_parallelism\": {},\n",
            "  \"workload\": {{\n",
            "    \"workers\": {},\n",
            "    \"tasks\": {},\n",
            "    \"communities\": {},\n",
            "    \"within_community_density\": {},\n",
            "    \"responses\": {},\n",
            "    \"assess_every_n_responses\": {}\n",
            "  }},\n",
            "  \"bit_identity\": {{\n",
            "    \"verified\": true,\n",
            "    \"checkpoints\": {},\n",
            "    \"reference\": \"serial IncrementalEvaluator, same arrival order, mid-stream + final\"\n",
            "  }},\n",
            "  \"throughput\": [\n",
        ),
        cores,
        w.n_workers(),
        w.n_tasks(),
        w.communities,
        w.density,
        data.n_responses(),
        assess_every,
        identity_checkpoints,
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"shards\": {},\n",
                "      \"ingest_batch_size\": {},\n",
                "      \"responses\": {},\n",
                "      \"assess_requests\": {},\n",
                "      \"wall_ms\": {:.2},\n",
                "      \"throughput_rps\": {:.1},\n",
                "      \"counters\": {}\n",
                "    }}{}\n",
            ),
            r.n_shards,
            r.batch,
            r.responses,
            r.assess_requests,
            r.wall_ms,
            r.throughput_rps,
            counters_json(&r.stats, "      "),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str(&format!(
        concat!(
            "  ],\n",
            "  \"latency_open_loop\": {{\n",
            "    \"shards\": {},\n",
            "    \"offered_rps\": {:.1},\n",
            "    \"achieved_rps\": {:.1},\n",
            "    \"assess_requests\": {},\n",
            "    \"assess_p50_ms\": {:.4},\n",
            "    \"assess_p99_ms\": {:.4},\n",
            "    \"assess_max_ms\": {:.4}\n",
            "  }}\n",
            "}}\n",
        ),
        latency.n_shards,
        latency.offered_rps,
        latency.achieved_rps,
        latency.assess_requests,
        latency.p50_ms,
        latency.p99_ms,
        latency.max_ms,
    ));
    s
}
