//! Observability overhead benchmark: the instrumented service against
//! its metrics-disabled twin, plus a wire-scraped stage-latency
//! profile.
//!
//! Emits `BENCH_PR9.json` (override the path with the first CLI
//! argument; pass `--smoke` for a seconds-scale CI rot check):
//!
//! ```text
//! cargo run --release -p crowd_bench --bin scaling_pr9
//! ```
//!
//! Four phases:
//!
//! 1. **Overhead** — the same Poisson trace streams into a
//!    metrics-on and a metrics-off fleet, interleaved, best of three
//!    timed runs each. In full runs the instrumented ingest
//!    throughput must stay ≥ 95% of the uninstrumented one — the
//!    "provably cheap" half of the `crowd_obs` contract (three
//!    `Instant` reads and a handful of wait-free counter bumps per
//!    message must not move a queue-bound pipeline).
//! 2. **Bit identity** — the final snapshots of the two fleets are
//!    compared **byte-for-byte** via their wire encoding: the
//!    "provably free" half (timing observes evaluation, it never
//!    participates).
//! 3. **Scrape** — a `crowd_wire` server fronts the instrumented
//!    fleet and a loopback client issues the `Metrics` request; the
//!    per-shard stage histograms (queue-wait / batch-apply /
//!    drain-eval p50/p99/max) and the server's own per-opcode frame
//!    timings land in the JSON exactly as scraped, and the
//!    Prometheus exposition must carry the same counters the `Stats`
//!    path reports.
//! 4. **Flight recorder** — a run with a zero slow-op threshold
//!    forces every timed operation into the journal, proving the
//!    capture path the default 100 ms threshold would only exercise
//!    under real stalls.

use crowd_core::WorkerReport;
use crowd_data::{Response, ResponseMatrix};
use crowd_obs::EventKind;
use crowd_service::{AssessmentService, ServiceConfig};
use crowd_shard::ShardPlan;
use crowd_sim::{ArrivalSchedule, BinaryScenario, rng};
use crowd_wire::proto::encode_reply;
use crowd_wire::{Reply, WireClient, WireConfig, WireServer};
use std::time::{Duration, Instant};

/// One timed ingest run of the whole trace.
struct RunRow {
    instrumented: bool,
    run: usize,
    ingest_ms: f64,
    throughput_rps: f64,
}

/// One stage's scraped distribution, in nanoseconds.
struct StageRow {
    stage: &'static str,
    count: u64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Byte-for-byte equality via the wire encoding — the strongest
/// equality the protocol can state (NaN payloads and signed zeros
/// included).
fn reports_byte_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    encode_reply(&Reply::Report(a.clone())) == encode_reply(&Reply::Report(b.clone()))
}

/// Streams the trace into a fresh fleet and times ingest-to-drain;
/// returns the elapsed wall time and the fleet (for snapshots).
fn timed_ingest(
    data: &ResponseMatrix,
    batches: &[Vec<Response>],
    n_shards: usize,
    config: ServiceConfig,
) -> (f64, AssessmentService) {
    let mut service = AssessmentService::spawn(
        ShardPlan::build_clustered(data, n_shards),
        data.n_tasks(),
        data.arity(),
        config,
    );
    let start = Instant::now();
    for batch in batches {
        service.ingest_batch(batch).expect("ingest");
    }
    service.drain().expect("drain");
    (ms(start), service)
}

fn main() {
    let mut out_path = "BENCH_PR9.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let confidence = 0.9;

    let (n_workers, n_tasks, density, n_shards, batch_size, runs) = if smoke {
        (24usize, 120usize, 0.5, 2usize, 32usize, 1usize)
    } else {
        (300usize, 4000usize, 0.25, 8usize, 256usize, 3usize)
    };

    eprintln!("generating workload: {n_workers} workers x {n_tasks} tasks, density {density} ...");
    let inst = BinaryScenario::paper_default(n_workers, n_tasks, density).generate(&mut rng(2609));
    let data = inst.responses();
    let sched = ArrivalSchedule::poisson(data, 1e6, &mut rng(9));
    let batches: Vec<Vec<Response>> = sched
        .batches(batch_size)
        .map(<[Response]>::to_vec)
        .collect();
    eprintln!(
        "trace: {} responses in {} batches of ≤{batch_size}, {n_shards} shards",
        data.n_responses(),
        batches.len()
    );

    // Phase 1 — interleaved best-of-N overhead runs.
    let mut rows: Vec<RunRow> = Vec::new();
    let mut final_on: Option<AssessmentService> = None;
    let mut final_off: Option<AssessmentService> = None;
    for run in 0..runs {
        for instrumented in [false, true] {
            let config = ServiceConfig::default().with_metrics(instrumented);
            let (ingest_ms, mut service) = timed_ingest(data, &batches, n_shards, config);
            let throughput_rps = data.n_responses() as f64 / (ingest_ms / 1e3);
            eprintln!(
                "run {run} metrics={instrumented}: ingest {ingest_ms:.1} ms ({throughput_rps:.0} responses/s)"
            );
            rows.push(RunRow {
                instrumented,
                run,
                ingest_ms,
                throughput_rps,
            });
            // Keep the last fleet of each mode alive for phases 2–3.
            if run + 1 == runs {
                if instrumented {
                    final_on = Some(service);
                } else {
                    final_off = Some(service);
                }
                continue;
            }
            service.shutdown().expect("shutdown");
        }
    }
    let best = |on: bool| {
        rows.iter()
            .filter(|r| r.instrumented == on)
            .map(|r| r.throughput_rps)
            .fold(f64::MIN, f64::max)
    };
    let (best_on, best_off) = (best(true), best(false));
    let overhead_ratio = best_on / best_off;
    eprintln!(
        "best instrumented {best_on:.0} rps vs uninstrumented {best_off:.0} rps (ratio {overhead_ratio:.3})"
    );
    if !smoke {
        assert!(
            overhead_ratio >= 0.95,
            "instrumented ingest throughput fell to {:.1}% of uninstrumented — \
             the metrics path is no longer cheap",
            overhead_ratio * 100.0
        );
    }

    // Phase 2 — the twins' final reports agree to the bit.
    let mut on = final_on.expect("instrumented fleet retained");
    let mut off = final_off.expect("uninstrumented fleet retained");
    let a = on.snapshot(confidence).expect("instrumented snapshot");
    let b = off.snapshot(confidence).expect("uninstrumented snapshot");
    assert!(
        reports_byte_identical(&a, &b),
        "metrics-on and metrics-off services diverged — instrumentation participated in evaluation"
    );
    off.shutdown().expect("shutdown");
    eprintln!("bit identity: instrumented and twin snapshots are byte-identical");

    // Phase 3 — scrape the instrumented fleet over loopback TCP.
    let server =
        WireServer::bind("127.0.0.1:0", on.handle(), WireConfig::default()).expect("bind loopback");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    // Give the server timers frames to measure before the scrape.
    let wire_stats = client.stats().expect("wire stats");
    assert_eq!(wire_stats.submitted, data.n_responses() as u64);
    let scrape = client.metrics().expect("wire metrics scrape");
    assert!(scrape.service.enabled);
    assert_eq!(scrape.service.stages.len(), n_shards);
    let merged = scrape.service.merged_stages();
    let stage_rows: Vec<StageRow> = [
        ("queue_wait", &merged.queue_wait),
        ("batch_apply", &merged.batch_apply),
        ("drain_eval", &merged.drain_eval),
    ]
    .into_iter()
    .map(|(stage, h)| StageRow {
        stage,
        count: h.count(),
        p50_ns: h.p50(),
        p99_ns: h.p99(),
        max_ns: h.max(),
    })
    .collect();
    for r in &stage_rows {
        assert!(r.count > 0, "stage {} recorded nothing", r.stage);
        eprintln!(
            "stage {}: n {} p50 {} ns p99 {} ns max {} ns",
            r.stage, r.count, r.p50_ns, r.p99_ns, r.max_ns
        );
    }
    let text = scrape.render_text();
    assert!(
        text.contains(&format!(
            "crowd_submitted_responses_total {}",
            scrape.service.stats.submitted
        )),
        "exposition dropped the submitted counter"
    );
    let server_ops = scrape.server.len();
    let exposition_lines = text.lines().count();
    eprintln!("scrape: {server_ops} server opcodes timed, {exposition_lines}-line exposition");
    drop(client);
    drop(server);
    on.shutdown().expect("shutdown");

    // Phase 4 — flight recorder under a zero slow-op threshold.
    let (_, mut traced) = timed_ingest(
        data,
        &batches[..batches.len().min(16)],
        n_shards,
        ServiceConfig::default().with_slow_op_threshold(Duration::ZERO),
    );
    traced.snapshot(confidence).expect("traced snapshot");
    let m = traced.metrics().expect("metrics");
    let slow_ops = m.events_of(EventKind::SlowOp).count();
    let journal_events = m.events.len();
    assert!(slow_ops > 0, "zero threshold must journal slow ops");
    eprintln!(
        "flight recorder: {journal_events} events retained ({slow_ops} slow-op), {} dropped",
        m.events_dropped
    );
    traced.shutdown().expect("shutdown");

    let json = render_json(
        data,
        n_shards,
        batch_size,
        batches.len(),
        runs,
        &rows,
        best_on,
        best_off,
        overhead_ratio,
        &stage_rows,
        server_ops,
        exposition_lines,
        journal_events,
        slow_ops,
        smoke,
    );
    std::fs::write(&out_path, json).expect("write benchmark output");
    eprintln!("wrote {out_path}");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    data: &ResponseMatrix,
    n_shards: usize,
    batch_size: usize,
    n_batches: usize,
    runs: usize,
    rows: &[RunRow],
    best_on: f64,
    best_off: f64,
    overhead_ratio: f64,
    stage_rows: &[StageRow],
    server_ops: usize,
    exposition_lines: usize,
    journal_events: usize,
    slow_ops: usize,
    smoke: bool,
) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"observability overhead: instrumented ingest vs metrics-off twin, plus wire-scraped stage profile\",\n",
            "  \"confidence\": 0.9,\n",
            "  \"smoke\": {},\n",
            "  \"timing\": \"wall clock; ingest-to-drain of the whole trace, best of {} interleaved runs per mode\",\n",
            "  \"host_available_parallelism\": {},\n",
            "  \"workload\": {{\n",
            "    \"workers\": {},\n",
            "    \"tasks\": {},\n",
            "    \"responses\": {},\n",
            "    \"batches\": {},\n",
            "    \"batch_size\": {},\n",
            "    \"shards\": {}\n",
            "  }},\n",
            "  \"runs\": [\n",
        ),
        smoke,
        runs,
        cores,
        data.n_workers(),
        data.n_tasks(),
        data.n_responses(),
        n_batches,
        batch_size,
        n_shards,
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{ \"run\": {}, \"metrics\": {}, \"ingest_ms\": {:.2}, ",
                "\"throughput_rps\": {:.0} }}{}\n",
            ),
            r.run,
            r.instrumented,
            r.ingest_ms,
            r.throughput_rps,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str(&format!(
        concat!(
            "  ],\n",
            "  \"overhead\": {{\n",
            "    \"best_instrumented_rps\": {:.0},\n",
            "    \"best_uninstrumented_rps\": {:.0},\n",
            "    \"throughput_ratio\": {:.4},\n",
            "    \"ratio_floor\": 0.95,\n",
            "    \"ratio_floor_enforced\": {}\n",
            "  }},\n",
            "  \"bit_identity\": {{\n",
            "    \"verified\": true,\n",
            "    \"comparison\": \"byte equality of wire-encoded final snapshots, metrics-on vs metrics-off\"\n",
            "  }},\n",
            "  \"stages_ns\": [\n",
        ),
        best_on,
        best_off,
        overhead_ratio,
        !smoke,
    ));
    for (i, r) in stage_rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{ \"stage\": \"{}\", \"count\": {}, \"p50\": {}, ",
                "\"p99\": {}, \"max\": {} }}{}\n",
            ),
            r.stage,
            r.count,
            r.p50_ns,
            r.p99_ns,
            r.max_ns,
            if i + 1 < stage_rows.len() { "," } else { "" },
        ));
    }
    s.push_str(&format!(
        concat!(
            "  ],\n",
            "  \"scrape\": {{\n",
            "    \"transport\": \"Metrics opcode over loopback TCP\",\n",
            "    \"server_opcodes_timed\": {},\n",
            "    \"exposition_lines\": {}\n",
            "  }},\n",
            "  \"flight_recorder\": {{\n",
            "    \"zero_threshold_events\": {},\n",
            "    \"slow_op_events\": {}\n",
            "  }}\n",
            "}}\n",
        ),
        server_ops, exposition_lines, journal_events, slow_ops,
    ));
    s
}
