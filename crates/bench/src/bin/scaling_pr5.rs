//! PeerGram benchmark: evaluation-phase wall clock of the blocked
//! one-pass Gram covariance kernel versus the per-pair popcount path
//! it replaced, on a covariance-heavy fleet workload.
//!
//! Emits `BENCH_PR5.json` (override the path with the first CLI
//! argument; pass `--smoke` for a seconds-scale CI rot check):
//!
//! ```text
//! cargo run --release -p crowd_bench --bin scaling_pr5
//! ```
//!
//! Per `BENCH_PR4.json`, **evaluation** — not index construction —
//! dominates assessment wall clock at fleet scale, and the Lemma 4
//! covariance assembly is its inner hot spot: `O(T²)` anchored
//! triple-overlap queries per evaluated worker, each one a fresh
//! word-by-word AND+popcount. The workload here makes that term loud
//! on purpose: a community-structured fleet (the production shape)
//! with a **high pairing degree** — `EstimatorConfig::fleet(128)`
//! gives every worker T = 128 triples over 256 distinct peers, i.e.
//! ~33k covariance popcount queries per worker on the per-pair path.
//!
//! Arms (all over one shared [`OverlapIndex`]):
//!
//! * **per-pair** — the pre-PeerGram path, reconstructed exactly: a
//!   thin [`OverlapSource`] wrapper whose anchored views answer the
//!   covariance assembly through the trait-default per-pair
//!   `triple_common` fills instead of the blocked kernel. Same
//!   integers, pre-PR cost shape.
//! * **gram** — `evaluate_all_indexed_parallel`: every consumer path
//!   now computes one blocked `PeerGram` per evaluated worker and
//!   reads the table.
//! * **streaming** — a seeded [`IncrementalEvaluator`] (maintained
//!   anchored views + maintained grams), serial by design and run
//!   over one community's anchors: a maintained gram costs
//!   `O(l²)` resident per evaluated view, so a monitor watches its
//!   community, not the whole fleet (that is what `crowd_shard`
//!   partitions).
//! * **sharded** — `ShardRunner` over an 8-shard [`ShardPlan`].
//!
//! Every arm's report is verified **bit-identical** to the per-pair
//! reference before any number is written, and the full run asserts
//! the acceptance floor: gram evaluation ≥ 2× faster than per-pair.
//! A final section sizes the locality-aware
//! [`ShardPlan::build_clustered`] against contiguous ranges on an
//! id-scrambled community fleet (closures must shrink).

use crowd_core::{
    EstimatorConfig, IncrementalEvaluator, MWorkerEstimator, WorkerReport, parallel_index_map,
};
use crowd_data::{
    AnchoredOverlap, BitsetAnchored, Label, OverlapIndex, OverlapSource, PairStats, ResponseMatrix,
    ResponseMatrixBuilder, TaskId, TripleStats, WorkerId,
};
use crowd_shard::{ShardPlan, ShardRunner};
use std::time::Instant;

/// The pre-PeerGram reference substrate: forwards everything to the
/// wrapped [`OverlapIndex`] but hands out anchored views that keep
/// the **per-pair trait defaults** for the gram fills, so the
/// covariance assembly pays one popcount pass per table entry —
/// exactly the pre-PR cost — while producing the same integers.
struct PerPairIndex<'a>(&'a OverlapIndex);

/// Anchored view wrapper suppressing the blocked-kernel overrides.
struct PerPairAnchored<'a>(BitsetAnchored<'a>);

impl AnchoredOverlap for PerPairAnchored<'_> {
    fn triple_common(&self, a: WorkerId, b: WorkerId) -> usize {
        self.0.triple_common(a, b)
    }

    fn common_among(&self, others: &[WorkerId]) -> usize {
        self.0.common_among(others)
    }
    // No `gram_into`/`pair_gram_into` overrides: the trait defaults
    // run the per-pair queries above.
}

impl OverlapSource for PerPairIndex<'_> {
    type Anchored<'b>
        = PerPairAnchored<'b>
    where
        Self: 'b;

    fn n_workers(&self) -> usize {
        OverlapSource::n_workers(self.0)
    }

    fn arity(&self) -> u16 {
        OverlapSource::arity(self.0)
    }

    fn pair(&self, a: WorkerId, b: WorkerId) -> PairStats {
        self.0.pair(a, b)
    }

    fn triple(&self, a: WorkerId, b: WorkerId, c: WorkerId) -> TripleStats {
        self.0.triple(a, b, c)
    }

    fn anchored(&self, anchor: WorkerId) -> PerPairAnchored<'_> {
        PerPairAnchored(self.0.anchored(anchor))
    }

    fn anchored_for(&self, anchor: WorkerId, peers: &[WorkerId]) -> PerPairAnchored<'_> {
        PerPairAnchored(self.0.anchored_for(anchor, peers))
    }

    fn co_occurring_into(&self, worker: WorkerId, out: &mut Vec<WorkerId>) -> bool {
        self.0.co_occurring_into(worker, out)
    }
}

/// Benchmark workload shape: `communities × workers_per` workers,
/// `communities × tasks_per` tasks, every worker answering tasks of
/// its own community with probability `density`. `permute` scrambles
/// worker ids across communities (`w % communities`) — the fleet
/// shape the clustered planner exists for.
struct Workload {
    communities: usize,
    workers_per: usize,
    tasks_per: usize,
    density: f64,
    permute: bool,
}

impl Workload {
    fn n_workers(&self) -> usize {
        self.communities * self.workers_per
    }

    /// Deterministic community-structured binary crowd: per-task
    /// truth, per-worker error rate in [0.05, 0.35], responses flipped
    /// with that rate. Same `(shape, seed)` → same matrix.
    fn generate(&self, seed: u64) -> ResponseMatrix {
        let m = self.n_workers();
        let n = self.communities * self.tasks_per;
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let unit = |x: u32| x as f64 / u32::MAX as f64 * 2.0;
        let truths: Vec<u16> = (0..n).map(|_| (next() % 2) as u16).collect();
        let error_rates: Vec<f64> = (0..m).map(|_| 0.05 + 0.15 * unit(next())).collect();
        let mut b = ResponseMatrixBuilder::new(m, n, 2);
        for w in 0..m {
            let community = if self.permute {
                w % self.communities
            } else {
                w / self.workers_per
            };
            for t in community * self.tasks_per..(community + 1) * self.tasks_per {
                if unit(next()) / 2.0 >= self.density {
                    continue;
                }
                let flip = unit(next()) / 2.0 < error_rates[w];
                let label = Label(truths[t] ^ u16::from(flip));
                b.push(WorkerId(w as u32), TaskId(t as u32), label)
                    .expect("generated ids are valid");
            }
        }
        b.build().expect("generated cells are unique")
    }
}

fn main() {
    let mut out_path = "BENCH_PR5.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let confidence = 0.9;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let (workload, max_triples, n_shards) = if smoke {
        (
            Workload {
                communities: 4,
                workers_per: 18,
                tasks_per: 40,
                density: 0.6,
                permute: false,
            },
            6,
            4,
        )
    } else {
        // High pairing degree (T = 128 triples over 256 peers) with
        // compact per-worker masks (~72 attempts → two words): the
        // regime where the per-pair path is dominated by its O(T²)
        // per-query overhead and popcount re-streaming, exactly what
        // the blocked gram batches away.
        (
            Workload {
                communities: 8,
                workers_per: 260,
                tasks_per: 80,
                density: 0.9,
                permute: false,
            },
            128,
            8,
        )
    };

    let m = workload.n_workers();
    eprintln!(
        "generating covariance-heavy workload: {} workers, {} tasks, T = {max_triples} ...",
        m,
        workload.communities * workload.tasks_per
    );
    let data = workload.generate(20260730);
    let config = EstimatorConfig::fleet(max_triples);
    let est = MWorkerEstimator::new(config.clone());

    let start = Instant::now();
    let index = OverlapIndex::from_matrix(&data);
    let build_ms = ms(start);

    // Arm 1: the per-pair reference (pre-PR covariance cost shape).
    eprintln!("per-pair arm ...");
    let per_pair_src = PerPairIndex(&index);
    let start = Instant::now();
    let outcomes = parallel_index_map(m, threads, |i| {
        est.evaluate_worker_on(&per_pair_src, WorkerId(i as u32), confidence)
    });
    let per_pair_eval_ms = ms(start);
    let mut per_pair = WorkerReport::default();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(a) => per_pair.assessments.push(a),
            Err(e) => per_pair.failures.push((WorkerId(i as u32), e)),
        }
    }

    // Arm 2: the PeerGram path every consumer now rides.
    eprintln!("gram arm ...");
    let start = Instant::now();
    let gram = est
        .evaluate_all_indexed_parallel(&index, confidence, threads)
        .expect("m >= 3");
    let gram_eval_ms = ms(start);

    // Arm 3: streaming (maintained views + maintained grams; serial).
    // A streaming monitor's maintained gram is O(l²) resident per
    // evaluated view, so the arm covers one community's anchors — the
    // deployment unit a sharded monitor would hold — and its rows are
    // pinned against the same per-pair reference.
    let streaming_subset = workload.workers_per.min(m);
    eprintln!("streaming arm ({streaming_subset} anchors) ...");
    let monitor = IncrementalEvaluator::from_matrix(&data, config.clone());
    let start = Instant::now();
    let mut streamed = WorkerReport::default();
    for i in 0..streaming_subset {
        match monitor.evaluate_worker(WorkerId(i as u32), confidence) {
            Ok(a) => streamed.assessments.push(a),
            Err(e) => streamed.failures.push((WorkerId(i as u32), e)),
        }
    }
    let streaming_eval_ms = ms(start);
    let per_pair_subset = WorkerReport {
        assessments: per_pair
            .assessments
            .iter()
            .filter(|a| a.worker.index() < streaming_subset)
            .cloned()
            .collect(),
        failures: per_pair
            .failures
            .iter()
            .filter(|f| f.0.index() < streaming_subset)
            .cloned()
            .collect(),
    };

    // Arm 4: sharded.
    eprintln!("sharded arm ({n_shards} shards) ...");
    let start = Instant::now();
    let plan = ShardPlan::build(&data, n_shards);
    let sharded = ShardRunner::new(config.clone())
        .with_threads(threads)
        .run(&data, &plan, confidence)
        .expect("m >= 3");
    let sharded_total_ms = ms(start);

    // Bit-identity gates: nothing is written unless every path agrees
    // with the per-pair reference to the bit.
    let gram_identical = reports_identical(&gram, &per_pair);
    let streaming_identical = reports_identical(&streamed, &per_pair_subset);
    let sharded_identical = reports_identical(&sharded, &per_pair);
    assert!(gram_identical, "gram path diverged from per-pair path");
    assert!(
        streaming_identical,
        "streaming path diverged from per-pair path"
    );
    assert!(
        sharded_identical,
        "sharded path diverged from per-pair path"
    );

    let speedup = per_pair_eval_ms / gram_eval_ms.max(1e-9);
    eprintln!(
        "build {build_ms:.0} ms | per-pair eval {per_pair_eval_ms:.0} ms | \
         gram eval {gram_eval_ms:.0} ms ({speedup:.2}x) | streaming {streaming_eval_ms:.0} ms | \
         sharded {sharded_total_ms:.0} ms"
    );
    if !smoke {
        assert!(
            speedup >= 2.0,
            "gram evaluation speedup {speedup:.2}x fell below the 2x floor \
             ({per_pair_eval_ms:.0} ms -> {gram_eval_ms:.0} ms)"
        );
    }

    // Shard-plan quality on an id-scrambled community fleet: the
    // locality-aware planner must shrink the largest closure.
    let plan_workload = if smoke {
        Workload {
            communities: 4,
            workers_per: 10,
            tasks_per: 20,
            density: 0.5,
            permute: true,
        }
    } else {
        Workload {
            communities: 50,
            workers_per: 20,
            tasks_per: 40,
            density: 0.5,
            permute: true,
        }
    };
    eprintln!(
        "shard-plan quality: {} scrambled workers ...",
        plan_workload.n_workers()
    );
    let scrambled = plan_workload.generate(20260731);
    let plan_shards = if smoke { 4 } else { 10 };
    let start = Instant::now();
    let contiguous = ShardPlan::build(&scrambled, plan_shards);
    let contiguous_plan_ms = ms(start);
    let start = Instant::now();
    let clustered = ShardPlan::build_clustered(&scrambled, plan_shards);
    let clustered_plan_ms = ms(start);
    let closure_reduction =
        contiguous.max_closure_len() as f64 / clustered.max_closure_len().max(1) as f64;
    eprintln!(
        "  contiguous max closure {} ({contiguous_plan_ms:.0} ms) | \
         clustered max closure {} ({clustered_plan_ms:.0} ms) | {closure_reduction:.1}x",
        contiguous.max_closure_len(),
        clustered.max_closure_len()
    );
    assert!(
        clustered.max_closure_len() < contiguous.max_closure_len(),
        "clustered planning must shrink closures on an id-scrambled community fleet"
    );

    let json = render_json(
        &workload,
        &data,
        max_triples,
        build_ms,
        per_pair_eval_ms,
        gram_eval_ms,
        (streaming_eval_ms, streaming_subset),
        sharded_total_ms,
        n_shards,
        &[
            ("gram", gram_identical),
            ("streaming", streaming_identical),
            ("sharded", sharded_identical),
        ],
        (contiguous.max_closure_len(), clustered.max_closure_len()),
    );
    std::fs::write(&out_path, json).expect("write benchmark output");
    eprintln!("wrote {out_path} (gram evaluation speedup {speedup:.2}x)");
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Bit-exact equality of two assessment reports.
fn reports_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.weights_fell_back == y.weights_fell_back
                && x.interval.center.to_bits() == y.interval.center.to_bits()
                && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
        })
        && a.failures.iter().zip(&b.failures).all(|(x, y)| x.0 == y.0)
}

/// Hand-rolled JSON (the workspace builds without serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    w: &Workload,
    data: &ResponseMatrix,
    max_triples: usize,
    build_ms: f64,
    per_pair_eval_ms: f64,
    gram_eval_ms: f64,
    streaming: (f64, usize),
    sharded_total_ms: f64,
    n_shards: usize,
    identical: &[(&str, bool)],
    closures: (usize, usize),
) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"PeerGram: blocked one-pass Gram covariance kernel vs the per-pair popcount path\",\n",
            "  \"confidence\": 0.9,\n",
            "  \"timing\": \"wall clock, milliseconds; all arms share one prebuilt OverlapIndex except sharded (plan+build+eval) and streaming (seeded, serial)\",\n",
            "  \"host_available_parallelism\": {},\n",
            "  \"workload\": {{\n",
            "    \"workers\": {},\n",
            "    \"tasks\": {},\n",
            "    \"communities\": {},\n",
            "    \"within_community_density\": {},\n",
            "    \"responses\": {},\n",
            "    \"max_triples\": {}\n",
            "  }},\n",
            "  \"index_build_ms\": {:.2},\n",
            "  \"eval\": {{\n",
            "    \"per_pair_ms\": {:.2},\n",
            "    \"gram_ms\": {:.2},\n",
            "    \"speedup\": {:.2},\n",
            "    \"streaming_serial_ms\": {:.2},\n",
            "    \"streaming_subset_workers\": {},\n",
            "    \"sharded_total_ms\": {:.2},\n",
            "    \"shards\": {}\n",
            "  }},\n",
        ),
        cores,
        w.n_workers(),
        w.communities * w.tasks_per,
        w.communities,
        w.density,
        data.n_responses(),
        max_triples,
        build_ms,
        per_pair_eval_ms,
        gram_eval_ms,
        per_pair_eval_ms / gram_eval_ms.max(1e-9),
        streaming.0,
        streaming.1,
        sharded_total_ms,
        n_shards,
    );
    s.push_str("  \"outputs_identical\": {\n");
    for (i, (name, ok)) in identical.iter().enumerate() {
        s.push_str(&format!(
            "    \"{name}\": {ok}{}\n",
            if i + 1 < identical.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        concat!(
            "  }},\n",
            "  \"shard_plan_quality\": {{\n",
            "    \"fleet\": \"id-scrambled community workload\",\n",
            "    \"contiguous_max_closure\": {},\n",
            "    \"clustered_max_closure\": {},\n",
            "    \"closure_reduction\": {:.2}\n",
            "  }}\n",
            "}}\n",
        ),
        closures.0,
        closures.1,
        closures.0 as f64 / closures.1.max(1) as f64,
    ));
    s
}
