//! Sharded-assessment benchmark: pair-state memory and wall clock of
//! the shard-per-process pipeline (`crowd_shard`) versus the
//! single-process dense-pair-table path, at fleet scale.
//!
//! Emits `BENCH_PR4.json` (override the path with the first CLI
//! argument; pass `--smoke` for a seconds-scale CI rot check):
//!
//! ```text
//! cargo run --release -p crowd_bench --bin scaling_pr4
//! ```
//!
//! The workload is **community-structured**: workers answer tasks in
//! their own task neighbourhood, the production shape of crowd
//! platforms (task batches / sessions) and the regime sharding is
//! for — co-occurrence is local, so a dense `O(m²)` pair table is
//! almost entirely zeros. The full run uses m = 10000 workers in 200
//! communities of 50, each answering its community's 100 tasks at 40%
//! density.
//!
//! Arms:
//!
//! * **unsharded** — one dense-backed [`OverlapIndex`] over the whole
//!   fleet, `evaluate_all_indexed_parallel`: the PR 3 pipeline. Pair
//!   state is the packed `m(m−1)/2`-entry table regardless of
//!   sparsity.
//! * **sharded, s ∈ {1, 2, 8}** — `ShardPlan::build`, then each shard
//!   builds its scoped sparse index ([`crowd_shard::ShardIndex`]) and
//!   evaluates its anchors; `merge_reports` recombines. Shards run
//!   sequentially here (one host), so the sharded wall clock is the
//!   *sum* over shards — the per-process number a deployment would
//!   see is `max_shard_ms`. Pair state is measured per shard
//!   (`pair_table_bytes`, capacity-true) and the peak across shards
//!   is what one process must hold.
//!
//! Every sharded report is verified **bit-identical** to the
//! unsharded one before any number is written, and the binary asserts
//! the acceptance floor: at the largest shard count, per-shard pair
//! state must undercut the dense table by ≥ 10× with total wall clock
//! at parity or better (≤ 1.15× the unsharded run).

use crowd_core::{EstimatorConfig, MWorkerEstimator, WorkerReport};
use crowd_data::{Label, OverlapIndex, ResponseMatrix, ResponseMatrixBuilder, TaskId, WorkerId};
use crowd_shard::{ShardIndex, ShardPlan, ShardRunner, merge_reports};
use std::time::Instant;

/// Benchmark workload shape: `communities × workers_per` workers,
/// `communities × tasks_per` tasks, every worker answering tasks of
/// its own community with probability `density`.
struct Workload {
    communities: usize,
    workers_per: usize,
    tasks_per: usize,
    density: f64,
}

impl Workload {
    fn n_workers(&self) -> usize {
        self.communities * self.workers_per
    }

    /// Deterministic community-structured binary crowd: per-task truth,
    /// per-worker error rate in [0.05, 0.35], responses flipped with
    /// that rate. Same `(shape, seed)` → same matrix.
    fn generate(&self, seed: u64) -> ResponseMatrix {
        let m = self.n_workers();
        let n = self.communities * self.tasks_per;
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let unit = |x: u32| x as f64 / u32::MAX as f64 * 2.0;
        let truths: Vec<u16> = (0..n).map(|_| (next() % 2) as u16).collect();
        let error_rates: Vec<f64> = (0..m).map(|_| 0.05 + 0.15 * unit(next())).collect();
        let mut b = ResponseMatrixBuilder::new(m, n, 2);
        for w in 0..m {
            let community = w / self.workers_per;
            for t in community * self.tasks_per..(community + 1) * self.tasks_per {
                if unit(next()) / 2.0 >= self.density {
                    continue;
                }
                let flip = unit(next()) / 2.0 < error_rates[w];
                let label = Label(truths[t] ^ u16::from(flip));
                b.push(WorkerId(w as u32), TaskId(t as u32), label)
                    .expect("generated ids are valid");
            }
        }
        b.build().expect("generated cells are unique")
    }
}

/// Measurements for one shard count.
struct ShardedRow {
    n_shards: usize,
    plan_ms: f64,
    build_ms: f64,
    eval_ms: f64,
    total_ms: f64,
    max_shard_ms: f64,
    max_closure: usize,
    max_pair_bytes: usize,
    total_pair_bytes: usize,
    pair_memory_reduction: f64,
    outputs_identical: bool,
}

fn main() {
    let mut out_path = "BENCH_PR4.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let confidence = 0.9;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let (workload, shard_counts): (Workload, Vec<usize>) = if smoke {
        (
            Workload {
                communities: 6,
                workers_per: 10,
                tasks_per: 20,
                density: 0.5,
            },
            vec![1, 2, 4],
        )
    } else {
        (
            Workload {
                communities: 200,
                workers_per: 50,
                tasks_per: 100,
                density: 0.4,
            },
            vec![1, 2, 8],
        )
    };

    let m = workload.n_workers();
    eprintln!(
        "generating community workload: {} workers, {} tasks ...",
        m,
        workload.communities * workload.tasks_per
    );
    let data = workload.generate(20260731);
    let config = EstimatorConfig::fleet(16);
    let est = MWorkerEstimator::new(config.clone());

    // Unsharded arm: dense fleet-wide index, the PR 3 pipeline.
    let start = Instant::now();
    let index = OverlapIndex::from_matrix(&data);
    let unsharded_build_ms = ms(start);
    let dense_pair_bytes = index.pair_table_bytes();
    let start = Instant::now();
    let unsharded = est
        .evaluate_all_indexed_parallel(&index, confidence, threads)
        .expect("m >= 3");
    let unsharded_eval_ms = ms(start);
    drop(index);
    eprintln!(
        "unsharded: build {unsharded_build_ms:.0} ms, eval {unsharded_eval_ms:.0} ms, \
         dense pair table {:.1} MB",
        mb(dense_pair_bytes)
    );

    let runner = ShardRunner::new(config).with_threads(threads);
    let mut rows = Vec::new();
    for &n_shards in &shard_counts {
        rows.push(run_sharded(
            &runner,
            &data,
            n_shards,
            confidence,
            dense_pair_bytes,
            &unsharded,
        ));
    }

    for r in &rows {
        assert!(
            r.outputs_identical,
            "sharded pipeline diverged from the unsharded report at {} shards",
            r.n_shards
        );
    }
    // Acceptance floor (full run): at the largest shard count the
    // per-shard pair state must undercut the dense table ≥ 10× and
    // total wall clock must hold parity.
    let unsharded_total_ms = unsharded_build_ms + unsharded_eval_ms;
    if !smoke {
        let flagship = rows.last().expect("at least one shard count");
        assert!(
            flagship.pair_memory_reduction >= 10.0,
            "pair-state reduction {:.1}x at {} shards fell below the 10x floor",
            flagship.pair_memory_reduction,
            flagship.n_shards
        );
        assert!(
            flagship.total_ms <= unsharded_total_ms * 1.15,
            "sharded wall clock {:.0} ms lost parity against unsharded {:.0} ms",
            flagship.total_ms,
            unsharded_total_ms
        );
    }

    let json = render_json(
        &workload,
        &data,
        unsharded_build_ms,
        unsharded_eval_ms,
        dense_pair_bytes,
        &rows,
    );
    std::fs::write(&out_path, json).expect("write benchmark output");
    let best = rows
        .iter()
        .map(|r| r.pair_memory_reduction)
        .fold(f64::NEG_INFINITY, f64::max);
    eprintln!("wrote {out_path} (best per-shard pair-state reduction {best:.0}x)");
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn run_sharded(
    runner: &ShardRunner,
    data: &ResponseMatrix,
    n_shards: usize,
    confidence: f64,
    dense_pair_bytes: usize,
    unsharded: &WorkerReport,
) -> ShardedRow {
    eprintln!("sharded run: {n_shards} shards ...");
    let start = Instant::now();
    let plan = ShardPlan::build(data, n_shards);
    let plan_ms = ms(start);

    let mut build_ms = 0.0;
    let mut eval_ms = 0.0;
    let mut max_shard_ms = 0.0f64;
    let mut max_closure = 0usize;
    let mut max_pair_bytes = 0usize;
    let mut total_pair_bytes = 0usize;
    let mut parts = Vec::with_capacity(plan.n_shards());
    // One shard at a time, exactly as a per-process deployment would
    // hold state: peak pair memory is one shard's table.
    for spec in plan.shards() {
        let start = Instant::now();
        let shard = ShardIndex::build(data, spec);
        let b = ms(start);
        let start = Instant::now();
        parts.push(runner.evaluate_shard(&shard, confidence).expect("m >= 3"));
        let e = ms(start);
        build_ms += b;
        eval_ms += e;
        max_shard_ms = max_shard_ms.max(b + e);
        max_closure = max_closure.max(shard.closure_len());
        max_pair_bytes = max_pair_bytes.max(shard.pair_table_bytes());
        total_pair_bytes += shard.pair_table_bytes();
    }
    let merged = merge_reports(parts);

    let row = ShardedRow {
        n_shards,
        plan_ms,
        build_ms,
        eval_ms,
        total_ms: plan_ms + build_ms + eval_ms,
        max_shard_ms,
        max_closure,
        max_pair_bytes,
        total_pair_bytes,
        pair_memory_reduction: dense_pair_bytes as f64 / max_pair_bytes.max(1) as f64,
        outputs_identical: reports_identical(&merged, unsharded),
    };
    eprintln!(
        "  plan {plan_ms:.0} ms | build {build_ms:.0} ms | eval {eval_ms:.0} ms | \
         max closure {max_closure} | pair state {:.2} MB/shard vs {:.1} MB dense ({:.0}x)",
        mb(max_pair_bytes),
        mb(dense_pair_bytes),
        row.pair_memory_reduction
    );
    row
}

/// Bit-exact equality of two assessment reports.
fn reports_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.weights_fell_back == y.weights_fell_back
                && x.interval.center.to_bits() == y.interval.center.to_bits()
                && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
        })
        && a.failures.iter().zip(&b.failures).all(|(x, y)| x.0 == y.0)
}

/// Hand-rolled JSON (the workspace builds without serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    w: &Workload,
    data: &ResponseMatrix,
    unsharded_build_ms: f64,
    unsharded_eval_ms: f64,
    dense_pair_bytes: usize,
    rows: &[ShardedRow],
) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"sharded assessment: per-shard sparse pair-state memory and wall clock vs the dense single-process pipeline\",\n",
            "  \"confidence\": 0.9,\n",
            "  \"timing\": \"wall clock, milliseconds; pair state measured via pair_table_bytes() (capacity-true)\",\n",
            "  \"host_available_parallelism\": {},\n",
            "  \"workload\": {{\n",
            "    \"workers\": {},\n",
            "    \"tasks\": {},\n",
            "    \"communities\": {},\n",
            "    \"within_community_density\": {},\n",
            "    \"responses\": {}\n",
            "  }},\n",
            "  \"unsharded\": {{\n",
            "    \"build_ms\": {:.2},\n",
            "    \"eval_ms\": {:.2},\n",
            "    \"dense_pair_table_bytes\": {}\n",
            "  }},\n",
            "  \"sharded\": [\n",
        ),
        cores,
        w.n_workers(),
        w.communities * w.tasks_per,
        w.communities,
        w.density,
        data.n_responses(),
        unsharded_build_ms,
        unsharded_eval_ms,
        dense_pair_bytes,
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"shards\": {},\n",
                "      \"plan_ms\": {:.2},\n",
                "      \"build_ms\": {:.2},\n",
                "      \"eval_ms\": {:.2},\n",
                "      \"total_ms\": {:.2},\n",
                "      \"max_shard_ms\": {:.2},\n",
                "      \"max_closure_workers\": {},\n",
                "      \"max_shard_pair_table_bytes\": {},\n",
                "      \"total_pair_table_bytes\": {},\n",
                "      \"pair_memory_reduction_vs_dense\": {:.2},\n",
                "      \"outputs_identical\": {}\n",
                "    }}{}\n",
            ),
            r.n_shards,
            r.plan_ms,
            r.build_ms,
            r.eval_ms,
            r.total_ms,
            r.max_shard_ms,
            r.max_closure,
            r.max_pair_bytes,
            r.total_pair_bytes,
            r.pair_memory_reduction,
            r.outputs_identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
