//! Fault-tolerance benchmark: ingest throughput under injected shard
//! panics at calibrated fault rates, with every number gated on
//! **bit-identity** against a never-crashed twin, plus the wire retry
//! path's exactly-once cost under dropped connections.
//!
//! Emits `BENCH_PR10.json` (override the path with the first CLI
//! argument; pass `--smoke` for a seconds-scale CI rot check):
//!
//! ```text
//! cargo run --release -p crowd_bench --bin scaling_pr10
//! ```
//!
//! Two phases:
//!
//! 1. **Recovery differential** — the same Poisson trace streams into
//!    a supervised fleet at fault rates {0, 1/10k, 1/1k} per
//!    (shard, batch) and into a fault-free twin. Before *any* number
//!    is recorded, the faulted fleet's final snapshot must re-encode
//!    to exactly the twin's bytes — checkpoint restore plus WAL
//!    replay provably loses and duplicates nothing. Then the row
//!    records ingest wall time, recovery/checkpoint/WAL counters, and
//!    the recovery-duration distribution scraped from the journal's
//!    `ShardRecovered` events. Nonzero rates also pin one explicit
//!    panic site so even a sparse hash schedule exercises recovery.
//! 2. **Wire retry exactly-once** — a `crowd_wire` server with a
//!    deterministic connection-drop plan (sever after apply, before
//!    reply — the ambiguous window) fronts a fresh fleet; a
//!    [`RetryClient`] streams batches over the sequenced idempotent
//!    path. The gate: the final wire snapshot is byte-identical to a
//!    local twin fed the same batches — every retried batch landed
//!    exactly once — and the row records retries, reconnects and the
//!    per-batch round-trip cost.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crowd_core::WorkerReport;
use crowd_data::{Response, ResponseMatrix};
use crowd_obs::EventKind;
use crowd_service::{AssessmentService, FaultPlan, ServiceConfig, ServiceError};
use crowd_shard::ShardPlan;
use crowd_sim::{ArrivalSchedule, BinaryScenario, rng};
use crowd_wire::proto::encode_reply;
use crowd_wire::{Reply, RetryClient, RetryConfig, WireConfig, WireServer};

const CONFIDENCE: f64 = 0.9;

/// One fault-rate row of the recovery differential.
struct RecoveryRow {
    fault_rate: f64,
    pinned_sites: usize,
    ingest_ms: f64,
    throughput_rps: f64,
    recoveries: u64,
    checkpoints: u64,
    wal_replayed: u64,
    recovery_ns: Vec<u64>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn reports_byte_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    encode_reply(&Reply::Report(a.clone())) == encode_reply(&Reply::Report(b.clone()))
}

/// Retries the one typed failure an in-flight crash inflicts
/// ([`ServiceError::ShardUnavailable`] — the reply channel died with
/// the shard); anything else is a benchmark failure.
fn with_crash_retry<T>(mut f: impl FnMut() -> Result<T, ServiceError>) -> T {
    for _ in 0..16 {
        match f() {
            Ok(v) => return v,
            Err(ServiceError::ShardUnavailable { .. }) => continue,
            Err(other) => panic!("unexpected service error: {other:?}"),
        }
    }
    panic!("call did not succeed within the retry budget");
}

fn spawn_fleet(data: &ResponseMatrix, n_shards: usize, config: ServiceConfig) -> AssessmentService {
    AssessmentService::spawn(
        ShardPlan::build_clustered(data, n_shards),
        data.n_tasks(),
        data.arity(),
        config,
    )
}

/// Streams the trace into a supervised fleet under `fault`, gates the
/// final snapshot bit-identical against the twin's, and only then
/// returns the row.
#[allow(clippy::too_many_arguments)]
fn recovery_run(
    data: &ResponseMatrix,
    batches: &[Vec<Response>],
    n_shards: usize,
    checkpoint_interval: usize,
    fault_rate: f64,
    pinned_sites: usize,
    twin_report: &WorkerReport,
) -> RecoveryRow {
    let mut plan = FaultPlan::seeded(2707).with_panic_rate(fault_rate);
    for site in 0..pinned_sites {
        // A floor so sparse hash schedules still exercise recovery.
        plan = plan.with_panic_at(site % n_shards, 3 + 2 * site as u64);
    }
    let config = ServiceConfig::default()
        .with_checkpoint_interval(checkpoint_interval)
        .with_max_recoveries(1024)
        .with_fault(Arc::new(plan));
    let mut service = spawn_fleet(data, n_shards, config);
    let start = Instant::now();
    for batch in batches {
        service.ingest_batch(batch).expect("supervised ingest");
    }
    with_crash_retry(|| service.drain());
    let ingest_ms = ms(start);

    // The gate comes before any number: recovered state must be
    // byte-identical to the never-crashed twin's.
    let report = with_crash_retry(|| service.snapshot(CONFIDENCE));
    assert!(
        reports_byte_identical(&report, twin_report),
        "recovered snapshot diverged from the never-crashed twin at rate {fault_rate}"
    );

    let stats = with_crash_retry(|| service.stats());
    let metrics = service.metrics().expect("metrics");
    let mut recovery_ns: Vec<u64> = metrics
        .events_of(EventKind::ShardRecovered)
        .map(|e| e.b)
        .collect();
    recovery_ns.sort_unstable();
    let row = RecoveryRow {
        fault_rate,
        pinned_sites,
        ingest_ms,
        throughput_rps: data.n_responses() as f64 / (ingest_ms / 1e3),
        recoveries: stats.total_recoveries(),
        checkpoints: stats.total_checkpoints(),
        wal_replayed: stats.total_wal_replayed(),
        recovery_ns,
    };
    service.shutdown().expect("shutdown");
    row
}

fn main() {
    let mut out_path = "BENCH_PR10.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }

    let (n_workers, n_tasks, density, n_shards, batch_size, checkpoint_interval) = if smoke {
        (24usize, 120usize, 0.5, 2usize, 32usize, 4usize)
    } else {
        (200usize, 2000usize, 0.25, 4usize, 128usize, 8usize)
    };

    eprintln!("generating workload: {n_workers} workers x {n_tasks} tasks, density {density} ...");
    let inst = BinaryScenario::paper_default(n_workers, n_tasks, density).generate(&mut rng(2710));
    let data = inst.responses();
    let sched = ArrivalSchedule::poisson(data, 1e6, &mut rng(10));
    let batches: Vec<Vec<Response>> = sched
        .batches(batch_size)
        .map(<[Response]>::to_vec)
        .collect();
    eprintln!(
        "trace: {} responses in {} batches of ≤{batch_size}, {n_shards} shards, checkpoint every {checkpoint_interval}",
        data.n_responses(),
        batches.len()
    );

    // The never-crashed twin: the reference bytes every faulted run
    // must reproduce, and the zero-fault throughput baseline.
    let mut twin = spawn_fleet(
        data,
        n_shards,
        ServiceConfig::default().with_checkpoint_interval(checkpoint_interval),
    );
    let twin_start = Instant::now();
    for batch in &batches {
        twin.ingest_batch(batch).expect("twin ingest");
    }
    twin.drain().expect("twin drain");
    let twin_ms = ms(twin_start);
    let twin_report = twin.snapshot(CONFIDENCE).expect("twin snapshot");
    let twin_stats = twin.stats().expect("twin stats");
    assert_eq!(
        twin_stats.total_recoveries(),
        0,
        "the twin must never crash"
    );
    twin.shutdown().expect("twin shutdown");
    eprintln!(
        "twin baseline: ingest {twin_ms:.1} ms ({:.0} responses/s), {} checkpoints",
        data.n_responses() as f64 / (twin_ms / 1e3),
        twin_stats.total_checkpoints()
    );

    // Phase 1 — fault rates {0, 1/10k, 1/1k}; nonzero rates pin one
    // explicit site so recovery runs even if the hash schedule is
    // sparse over this trace.
    let mut rows: Vec<RecoveryRow> = Vec::new();
    for &(rate, pinned) in &[(0.0, 0usize), (1e-4, 1), (1e-3, 1)] {
        let row = recovery_run(
            data,
            &batches,
            n_shards,
            checkpoint_interval,
            rate,
            pinned,
            &twin_report,
        );
        eprintln!(
            "rate {rate}: ingest {:.1} ms ({:.0} rps), {} recoveries, {} checkpoints, {} WAL responses replayed",
            row.ingest_ms, row.throughput_rps, row.recoveries, row.checkpoints, row.wal_replayed
        );
        if rate > 0.0 {
            assert!(
                row.recoveries >= 1,
                "rate {rate} with a pinned site must recover at least once"
            );
        } else {
            assert_eq!(row.recoveries, 0, "rate 0 must not recover");
        }
        rows.push(row);
    }

    // Phase 2 — wire retry exactly-once under dropped connections.
    let wire_batches = if smoke {
        &batches[..]
    } else {
        &batches[..batches.len().min(64)]
    };
    let wire_responses: usize = wire_batches.iter().map(Vec::len).sum();
    let drop_rate = 5e-3;
    let service = spawn_fleet(data, n_shards, ServiceConfig::default());
    let mut local_twin = spawn_fleet(data, n_shards, ServiceConfig::default());
    let fault = Arc::new(
        FaultPlan::seeded(2711)
            .with_drop_rate(drop_rate)
            // Floor: the first connection's 2nd frame always drops, so
            // the ambiguous window is exercised even in smoke runs.
            .with_drop_at(1, 2),
    );
    let server = WireServer::bind(
        "127.0.0.1:0",
        service.handle(),
        WireConfig {
            fault: Some(fault),
            ..WireConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = RetryClient::connect_with(
        server.local_addr(),
        RetryConfig {
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(20),
            session: Some(2025),
            ..RetryConfig::default()
        },
    )
    .expect("retry client");

    let wire_start = Instant::now();
    for batch in wire_batches {
        client.ingest_batch(batch).expect("exactly-once ingest");
        local_twin.ingest_batch(batch).expect("local twin ingest");
    }
    client.drain().expect("drain");
    let wire_ms = ms(wire_start);
    let (retries, reconnects) = (client.retries(), client.reconnects());
    assert!(
        retries >= 1,
        "the pinned drop site must force at least one retry"
    );

    // The gate again: every retried batch landed exactly once, or the
    // bytes shift.
    let over_wire = client.snapshot(CONFIDENCE).expect("wire snapshot");
    let local = local_twin.snapshot(CONFIDENCE).expect("local snapshot");
    assert!(
        reports_byte_identical(&over_wire, &local),
        "retried wire ingest diverged from the local twin — dedup lost or doubled a batch"
    );
    eprintln!(
        "wire retry: {} batches ({wire_responses} responses) in {wire_ms:.1} ms, {retries} retries, {reconnects} connections, exactly-once verified",
        wire_batches.len()
    );
    drop(client);
    drop(server);
    local_twin.shutdown().expect("local twin shutdown");
    drop(service);

    let json = render_json(
        data,
        n_shards,
        batch_size,
        batches.len(),
        checkpoint_interval,
        twin_ms,
        &rows,
        wire_batches.len(),
        wire_responses,
        drop_rate,
        wire_ms,
        retries,
        reconnects,
        smoke,
    );
    std::fs::write(&out_path, json).expect("write benchmark output");
    eprintln!("wrote {out_path}");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    data: &ResponseMatrix,
    n_shards: usize,
    batch_size: usize,
    n_batches: usize,
    checkpoint_interval: usize,
    twin_ms: f64,
    rows: &[RecoveryRow],
    wire_batches: usize,
    wire_responses: usize,
    drop_rate: f64,
    wire_ms: f64,
    retries: u64,
    reconnects: u64,
    smoke: bool,
) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"fault tolerance: supervised ingest under injected shard panics (bit-identity gated) and wire retry exactly-once under dropped connections\",\n",
            "  \"confidence\": 0.9,\n",
            "  \"smoke\": {},\n",
            "  \"host_available_parallelism\": {},\n",
            "  \"workload\": {{\n",
            "    \"workers\": {},\n",
            "    \"tasks\": {},\n",
            "    \"responses\": {},\n",
            "    \"batches\": {},\n",
            "    \"batch_size\": {},\n",
            "    \"shards\": {},\n",
            "    \"checkpoint_interval\": {}\n",
            "  }},\n",
            "  \"twin_baseline\": {{ \"ingest_ms\": {:.2}, \"throughput_rps\": {:.0} }},\n",
            "  \"recovery\": [\n",
        ),
        smoke,
        cores,
        data.n_workers(),
        data.n_tasks(),
        data.n_responses(),
        n_batches,
        batch_size,
        n_shards,
        checkpoint_interval,
        twin_ms,
        data.n_responses() as f64 / (twin_ms / 1e3),
    );
    for (i, r) in rows.iter().enumerate() {
        let (p50, max) = if r.recovery_ns.is_empty() {
            (0, 0)
        } else {
            (
                r.recovery_ns[r.recovery_ns.len() / 2],
                *r.recovery_ns.last().expect("non-empty"),
            )
        };
        s.push_str(&format!(
            concat!(
                "    {{ \"fault_rate\": {}, \"pinned_sites\": {}, \"ingest_ms\": {:.2}, ",
                "\"throughput_rps\": {:.0}, \"recoveries\": {}, \"checkpoints\": {}, ",
                "\"wal_responses_replayed\": {}, ",
                "\"recovery_ns\": {{ \"count\": {}, \"p50\": {}, \"max\": {} }}, ",
                "\"bit_identical_to_twin\": true }}{}\n",
            ),
            r.fault_rate,
            r.pinned_sites,
            r.ingest_ms,
            r.throughput_rps,
            r.recoveries,
            r.checkpoints,
            r.wal_replayed,
            r.recovery_ns.len(),
            p50,
            max,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str(&format!(
        concat!(
            "  ],\n",
            "  \"wire_retry\": {{\n",
            "    \"batches\": {},\n",
            "    \"responses\": {},\n",
            "    \"drop_rate\": {},\n",
            "    \"pinned_drops\": 1,\n",
            "    \"ingest_ms\": {:.2},\n",
            "    \"throughput_rps\": {:.0},\n",
            "    \"retries\": {},\n",
            "    \"reconnects\": {},\n",
            "    \"exactly_once_verified\": true\n",
            "  }}\n",
            "}}\n",
        ),
        wire_batches,
        wire_responses,
        drop_rate,
        wire_ms,
        wire_responses as f64 / (wire_ms / 1e3),
        retries,
        reconnects,
    ));
    s
}
