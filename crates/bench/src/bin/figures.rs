//! Regenerates the paper's figures as CSV files + ASCII plots.
//!
//! ```text
//! cargo run --release -p crowd-bench --bin figures -- [--fig <id>|--all]
//!     [--reps N] [--seed S] [--threads N] [--out DIR] [--quick]
//! ```
//!
//! Figure ids: fig1 fig2a fig2b fig2c fig3 fig4 fig5a fig5b fig5c.
//! Without `--reps`, each figure uses its registry default (the
//! paper-scale repetition count, scaled down for the dataset-heavy
//! figures). `--quick` caps every figure at 8 repetitions for smoke
//! runs.

use crowd_bench::RunOptions;
use crowd_bench::figures::{ablation_figures, all_figures};
use std::path::PathBuf;
use std::time::Instant;

struct Cli {
    figs: Vec<String>,
    reps: Option<usize>,
    seed: u64,
    threads: Option<usize>,
    out: PathBuf,
    quick: bool,
    ablations: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        figs: Vec::new(),
        reps: None,
        seed: RunOptions::default().seed,
        threads: None,
        out: PathBuf::from("results"),
        quick: false,
        ablations: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => {
                let v = args.next().ok_or("--fig needs a value")?;
                cli.figs.push(v);
            }
            "--all" => cli.figs.clear(),
            "--reps" => {
                let v = args.next().ok_or("--reps needs a value")?;
                cli.reps = Some(v.parse().map_err(|_| format!("bad --reps {v}"))?);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                cli.seed = v.parse().map_err(|_| format!("bad --seed {v}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                cli.threads = Some(v.parse().map_err(|_| format!("bad --threads {v}"))?);
            }
            "--out" => {
                let v = args.next().ok_or("--out needs a value")?;
                cli.out = PathBuf::from(v);
            }
            "--quick" => cli.quick = true,
            "--ablations" => cli.ablations = true,
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig <id>]... [--all] [--ablations] [--reps N] \
                     [--seed S] [--threads N] [--out DIR] [--quick]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut registry = all_figures();
    if cli.ablations {
        registry = ablation_figures();
    }
    let selected: Vec<_> = if cli.figs.is_empty() {
        registry.iter().collect()
    } else {
        let mut picked = Vec::new();
        for want in &cli.figs {
            match registry.iter().find(|f| f.id == want) {
                Some(f) => picked.push(f),
                None => {
                    eprintln!(
                        "error: unknown figure {want}; known: {:?}",
                        registry.iter().map(|f| f.id).collect::<Vec<_>>()
                    );
                    std::process::exit(2);
                }
            }
        }
        picked
    };

    let mut summary = Vec::new();
    for spec in selected {
        let reps = if cli.quick {
            8
        } else {
            cli.reps.unwrap_or(spec.default_reps)
        };
        let mut options = RunOptions::default().with_reps(reps).with_seed(cli.seed);
        if let Some(t) = cli.threads {
            options.threads = t;
        }
        eprintln!(
            "running {} (reps = {reps}, threads = {})...",
            spec.id, options.threads
        );
        let start = Instant::now();
        let result = (spec.run)(&options);
        let elapsed = start.elapsed();
        match result.write_csv(&cli.out) {
            Ok(path) => eprintln!("  wrote {} ({:.1}s)", path.display(), elapsed.as_secs_f64()),
            Err(e) => {
                eprintln!("error writing {}: {e}", spec.id);
                std::process::exit(1);
            }
        }
        println!("{}", result.ascii());
        summary.push((spec.id, reps, elapsed));
    }
    eprintln!("\nsummary:");
    for (id, reps, elapsed) in summary {
        eprintln!("  {id:6} reps={reps:<4} {:.1}s", elapsed.as_secs_f64());
    }
}
