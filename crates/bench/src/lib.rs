//! Experiment harness regenerating every figure of the paper.
//!
//! Each `figN` module reproduces one figure of the evaluation:
//!
//! | Module | Paper figure | What it plots |
//! |---|---|---|
//! | [`figures::fig1`]  | Fig. 1    | CI size vs confidence, new vs old technique |
//! | [`figures::fig2a`] | Fig. 2(a) | interval accuracy vs confidence (binary, non-regular) |
//! | [`figures::fig2b`] | Fig. 2(b) | CI size vs density |
//! | [`figures::fig2c`] | Fig. 2(c) | CI size vs confidence, optimized vs uniform weights |
//! | [`figures::fig3`]  | Fig. 3    | accuracy on real-data stand-ins |
//! | [`figures::fig4`]  | Fig. 4    | accuracy after spammer pruning |
//! | [`figures::fig5a`] | Fig. 5(a) | k-ary accuracy vs confidence |
//! | [`figures::fig5b`] | Fig. 5(b) | k-ary CI size vs density |
//! | [`figures::fig5c`] | Fig. 5(c) | k-ary accuracy on real-data stand-ins |
//!
//! Every experiment is deterministic given `(seed, reps)` and
//! parallelized over repetitions with scoped threads; results are
//! emitted as [`FigureResult`] which renders to CSV and a quick ASCII
//! plot.

pub mod figures;
mod options;
mod plot;
mod result;
mod runner;

pub use options::RunOptions;
pub use plot::ascii_plot;
pub use result::{FigureResult, Series};
pub use runner::parallel_reps;

use crowd_stats::{ConfidenceInterval, two_sided_z};

/// Rescales a delta-method interval to a different confidence level.
///
/// Delta-method intervals are `center ± z·deviation`; the deviation is
/// confidence-independent, so one evaluation per repetition serves the
/// whole confidence grid (exactly how the paper sweeps `c`).
pub fn rescale_interval(ci: &ConfidenceInterval, confidence: f64) -> ConfidenceInterval {
    let z_old = two_sided_z(ci.confidence).expect("stored confidence is valid");
    let z_new = two_sided_z(confidence).expect("caller provides valid confidence");
    ConfidenceInterval {
        center: ci.center,
        half_width: ci.half_width * z_new / z_old,
        confidence,
    }
}

/// The paper's confidence grid `{0.05, 0.10, …, 0.95}`.
pub fn confidence_grid() -> Vec<f64> {
    (1..=19).map(|i| i as f64 * 0.05).collect()
}

/// The paper's density grid `{0.5, 0.55, …, 0.95}`.
pub fn density_grid() -> Vec<f64> {
    (0..=9).map(|i| 0.5 + i as f64 * 0.05).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_paper() {
        let c = confidence_grid();
        assert_eq!(c.len(), 19);
        assert!((c[0] - 0.05).abs() < 1e-12);
        assert!((c[18] - 0.95).abs() < 1e-12);
        let d = density_grid();
        assert_eq!(d.len(), 10);
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[9] - 0.95).abs() < 1e-12);
    }

    #[test]
    fn rescaling_matches_direct_construction() {
        let at50 = ConfidenceInterval::from_deviation(0.3, 0.1, 0.5).unwrap();
        let at90 = rescale_interval(&at50, 0.9);
        let direct = ConfidenceInterval::from_deviation(0.3, 0.1, 0.9).unwrap();
        assert!((at90.half_width - direct.half_width).abs() < 1e-12);
        assert_eq!(at90.center, 0.3);
        assert_eq!(at90.confidence, 0.9);
    }
}
