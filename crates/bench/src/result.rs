//! Figure results: named series of (x, y) points.

use std::io::Write;

/// One plotted line.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (matches the paper's legends).
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// Everything needed to regenerate one figure of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// Stable identifier, e.g. `fig2a`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl FigureResult {
    /// Renders the result as CSV: `x,<label1>,<label2>,...` with one
    /// row per distinct x (series are aligned by x; missing values
    /// render empty).
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut out = String::new();
        out.push('x');
        for s in &self.series {
            out.push(',');
            // Commas inside labels would break the format.
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                if let Some(&(_, y)) = s.points.iter().find(|p| (p.0 - x).abs() < 1e-12) {
                    out.push_str(&format!("{y}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes `<id>.csv` into `dir`.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        f.write_all(self.to_csv().as_bytes())?;
        f.flush()?;
        Ok(path)
    }

    /// Renders an ASCII plot of the figure.
    pub fn ascii(&self) -> String {
        crate::ascii_plot(self, 72, 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        FigureResult {
            id: "figtest",
            title: "test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]),
                Series::new("b", vec![(0.0, 3.0)]),
            ],
        }
    }

    #[test]
    fn csv_aligns_series_by_x() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "0,1,3");
        assert_eq!(lines[2], "1,2,");
    }

    #[test]
    fn csv_escapes_commas_in_labels() {
        let mut fig = sample();
        fig.series[0].label = "m=3, n=100".into();
        assert!(fig.to_csv().lines().next().unwrap().contains("m=3; n=100"));
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("crowd_bench_test_csv");
        let path = sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,a,b"));
        std::fs::remove_file(path).ok();
    }
}
