//! Minimal ASCII line plots for terminal inspection of figure results.

use crate::FigureResult;

const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders a figure as an ASCII scatter/line plot with a legend.
pub fn ascii_plot(fig: &FigureResult, width: usize, height: usize) -> String {
    let pts: Vec<(f64, f64)> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return format!("{} — (no data)\n", fig.title);
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, series) in fig.series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &series.points {
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row;
            grid[row][col.min(width - 1)] = mark;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{} [{}]\n", fig.title, fig.id));
    out.push_str(&format!(
        "y: {} ({:.4} .. {:.4})\n",
        fig.y_label, y_min, y_max
    ));
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    out.push_str(&format!(
        "x: {} ({:.3} .. {:.3})\n",
        fig.x_label, x_min, x_max
    ));
    for (si, series) in fig.series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()], series.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Series;

    fn fig(series: Vec<Series>) -> FigureResult {
        FigureResult {
            id: "p",
            title: "plot".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series,
        }
    }

    #[test]
    fn empty_plot_has_placeholder() {
        let s = ascii_plot(&fig(vec![]), 20, 5);
        assert!(s.contains("no data"));
    }

    #[test]
    fn marks_and_legend_present() {
        let s = ascii_plot(
            &fig(vec![
                Series::new("up", vec![(0.0, 0.0), (1.0, 1.0)]),
                Series::new("down", vec![(0.0, 1.0), (1.0, 0.0)]),
            ]),
            30,
            10,
        );
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("up"));
        assert!(s.contains("down"));
        assert!(s.contains("0.000 .. 1.000"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = ascii_plot(&fig(vec![Series::new("flat", vec![(0.5, 0.3)])]), 10, 4);
        assert!(s.contains('*'));
    }
}
