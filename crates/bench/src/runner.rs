//! Deterministic parallel Monte-Carlo repetition runner.

use crate::RunOptions;

/// Runs `f(rep_seed)` for every repetition in parallel and collects the
/// results in repetition order.
///
/// Seeding is per-repetition (`options.seed + rep`), so the output is
/// identical regardless of thread count — the property every figure in
/// EXPERIMENTS.md relies on.
pub fn parallel_reps<T: Send>(
    options: &RunOptions,
    f: impl Fn(u64) -> T + Sync,
) -> Vec<T> {
    let reps = options.reps;
    let threads = options.threads.max(1).min(reps.max(1));
    if threads <= 1 || reps <= 1 {
        return (0..reps).map(|i| f(options.seed + i as u64)).collect();
    }
    let mut results: Vec<Option<T>> = (0..reps).map(|_| None).collect();
    let chunk = reps.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot_chunk) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            let base = options.seed + (t * chunk) as u64;
            scope.spawn(move || {
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + i as u64));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("all repetitions completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_seed_once_in_order() {
        let opts = RunOptions { reps: 23, seed: 100, threads: 4 };
        let out = parallel_reps(&opts, |s| s);
        let expect: Vec<u64> = (100..123).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |s: u64| s.wrapping_mul(6364136223846793005).wrapping_add(1) % 997;
        let a = parallel_reps(&RunOptions { reps: 50, seed: 7, threads: 1 }, work);
        let b = parallel_reps(&RunOptions { reps: 50, seed: 7, threads: 8 }, work);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_reps_is_empty() {
        let out = parallel_reps(&RunOptions { reps: 0, seed: 0, threads: 4 }, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_reps_is_fine() {
        let out = parallel_reps(&RunOptions { reps: 3, seed: 5, threads: 64 }, |s| s * 2);
        assert_eq!(out, vec![10, 12, 14]);
    }
}
