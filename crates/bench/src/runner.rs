//! Deterministic parallel Monte-Carlo repetition runner.

use crate::RunOptions;

/// Runs `f(rep_seed)` for every repetition in parallel and collects the
/// results in repetition order.
///
/// Seeding is per-repetition (`options.seed + rep`), so the output is
/// identical regardless of thread count — the property every figure in
/// EXPERIMENTS.md relies on. Fan-out rides the same deterministic
/// chunking as the estimators' parallel paths
/// ([`crowd_core::parallel_index_map`]).
pub fn parallel_reps<T: Send>(options: &RunOptions, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    crowd_core::parallel_index_map(
        options.reps,
        options.threads,
        |i| f(options.seed + i as u64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_seed_once_in_order() {
        let opts = RunOptions {
            reps: 23,
            seed: 100,
            threads: 4,
        };
        let out = parallel_reps(&opts, |s| s);
        let expect: Vec<u64> = (100..123).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |s: u64| s.wrapping_mul(6364136223846793005).wrapping_add(1) % 997;
        let a = parallel_reps(
            &RunOptions {
                reps: 50,
                seed: 7,
                threads: 1,
            },
            work,
        );
        let b = parallel_reps(
            &RunOptions {
                reps: 50,
                seed: 7,
                threads: 8,
            },
            work,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn zero_reps_is_empty() {
        let out = parallel_reps(
            &RunOptions {
                reps: 0,
                seed: 0,
                threads: 4,
            },
            |s| s,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_reps_is_fine() {
        let out = parallel_reps(
            &RunOptions {
                reps: 3,
                seed: 5,
                threads: 64,
            },
            |s| s * 2,
        );
        assert_eq!(out, vec![10, 12, 14]);
    }
}
