//! Figure 1 — "Size of interval vs. confidence for old and new
//! techniques".
//!
//! Setting (§III-A1): `n = 100` regular binary tasks, `m ∈ {3, 7}`
//! workers with error rates drawn from {0.1, 0.2, 0.3}, 500
//! repetitions; the average c-confidence-interval size of the new
//! (delta-method, Algorithm A2) and old (KDD'13 super-worker)
//! techniques is plotted against `c`. The paper reports the new
//! technique up to ≈ 40% tighter.

use crate::{FigureResult, RunOptions, Series, confidence_grid, parallel_reps, rescale_interval};
use crowd_core::baselines::OldTechnique;
use crowd_core::{EstimatorConfig, MWorkerEstimator};
use crowd_sim::BinaryScenario;

/// Per-repetition mean interval sizes across the confidence grid, for
/// the (new, old) techniques.
type SizePair = (Vec<f64>, Vec<f64>);

/// Runs the experiment.
pub fn run(options: &RunOptions) -> FigureResult {
    let grid = confidence_grid();
    let mut series = Vec::new();
    for &m in &[3usize, 7] {
        let scenario = BinaryScenario::paper_default(m, 100, 1.0);
        let per_rep: Vec<Option<SizePair>> = parallel_reps(options, |seed| {
            let mut rng = crowd_sim::rng(seed);
            let inst = scenario.generate(&mut rng);
            let new = MWorkerEstimator::new(EstimatorConfig::default());
            let report = new.evaluate_all(inst.responses(), 0.5).ok()?;
            if report.assessments.len() < m {
                // A degenerate repetition (§III-C: "minuscule
                // probability that our algorithm fails"); drop it for
                // both techniques to keep the comparison paired.
                return None;
            }
            let new_sizes: Vec<f64> = grid
                .iter()
                .map(|&c| {
                    report
                        .assessments
                        .iter()
                        .map(|a| rescale_interval(&a.interval, c).size())
                        .sum::<f64>()
                        / m as f64
                })
                .collect();
            let old = OldTechnique::default();
            let mut old_sizes = Vec::with_capacity(grid.len());
            for &c in &grid {
                let cis = old.evaluate_all(inst.responses(), c).ok()?;
                old_sizes.push(cis.iter().map(|(_, ci)| ci.size()).sum::<f64>() / m as f64);
            }
            Some((new_sizes, old_sizes))
        });
        let valid: Vec<&SizePair> = per_rep.iter().flatten().collect();
        let count = valid.len().max(1) as f64;
        let mean_at = |pick: fn(&SizePair) -> &Vec<f64>, idx: usize| -> f64 {
            valid.iter().map(|rep| pick(rep)[idx]).sum::<f64>() / count
        };
        series.push(Series::new(
            format!("new technique, {m} workers, 100 tasks"),
            grid.iter()
                .enumerate()
                .map(|(i, &c)| (c, mean_at(|r| &r.0, i)))
                .collect(),
        ));
        series.push(Series::new(
            format!("old technique, {m} workers, 100 tasks"),
            grid.iter()
                .enumerate()
                .map(|(i, &c)| (c, mean_at(|r| &r.1, i)))
                .collect(),
        ));
    }
    FigureResult {
        id: "fig1",
        title: "Size of interval vs. confidence for old and new techniques".into(),
        x_label: "Confidence Level".into(),
        y_label: "Size of Interval".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_shape() {
        let fig = run(&RunOptions::quick().with_reps(30));
        assert_eq!(fig.series.len(), 4);
        // Locate the four curves.
        let get = |label_frag: &str| {
            fig.series
                .iter()
                .find(|s| s.label.contains(label_frag))
                .unwrap_or_else(|| panic!("missing series {label_frag}"))
        };
        let new3 = get("new technique, 3");
        let old3 = get("old technique, 3");
        let new7 = get("new technique, 7");
        let old7 = get("old technique, 7");
        // Shape 1: sizes increase with confidence for every curve.
        for s in [new3, old3, new7, old7] {
            assert!(
                s.points.last().unwrap().1 > s.points.first().unwrap().1,
                "{} should increase with c",
                s.label
            );
        }
        // Shape 2: new is tighter than old at c = 0.5 for both m.
        let at = |s: &Series, c: f64| s.points.iter().find(|p| (p.0 - c).abs() < 1e-9).unwrap().1;
        assert!(at(new3, 0.5) < at(old3, 0.5));
        assert!(at(new7, 0.5) < at(old7, 0.5));
        // Shape 3 (headline): ≳ 30% reduction at m=3, c=0.5.
        let reduction = 1.0 - at(new3, 0.5) / at(old3, 0.5);
        assert!(reduction > 0.2, "size reduction only {reduction:.2}");
    }
}
