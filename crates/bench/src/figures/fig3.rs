//! Figure 3 — "Accuracy of interval vs confidence" on real data.
//!
//! Setting (§III-E2): the m-worker binary non-regular method on the
//! IC, ENT(RTE) and TEM datasets (stand-ins here; DESIGN.md §4), with
//! the gold-standard error fraction as the truth proxy. Without
//! preprocessing, accuracy dips below the diagonal at high confidence
//! because near-spammers sit next to the `q = 1/2` singularity — the
//! effect Figure 4 repairs.

use crate::{FigureResult, RunOptions, Series, confidence_grid, parallel_reps, rescale_interval};
use crowd_core::{EstimatorConfig, MWorkerEstimator};
use crowd_datasets::Dataset;

/// Pair-overlap floor used on the sparse real datasets — the binary
/// analogue of the paper's §IV-C triple threshold `t`. Agreement rates
/// estimated from fewer than ~10 common tasks cannot resolve the
/// `q = 1/2` singularity, and conditioning on the inversion *not*
/// failing then biases estimates toward zero error (see the m-worker
/// module docs). Workers without enough overlapping peers are reported
/// as failures instead.
pub const MIN_REAL_DATA_OVERLAP: usize = 10;

/// The estimator configuration shared by the Figure 3/4 protocol.
///
/// Degenerate agreement rates are *clamped* rather than failed here:
/// the paper evaluates every worker of the real datasets, and clamping
/// (very wide intervals near the singularity) keeps spammer-adjacent
/// workers in the accuracy tally the way the paper's plots do.
pub fn real_data_estimator() -> MWorkerEstimator {
    MWorkerEstimator::new(EstimatorConfig {
        min_pair_overlap: MIN_REAL_DATA_OVERLAP,
        degeneracy: crowd_core::DegeneracyPolicy::Clamp { epsilon: 1e-3 },
        ..EstimatorConfig::default()
    })
}

/// Shared scoring for Figures 3 and 4: per-confidence (covered, total)
/// for one dataset instance under the given estimator, using empirical
/// gold error rates as truth.
pub(crate) fn score_dataset(
    dataset: &Dataset,
    estimator: &MWorkerEstimator,
    grid: &[f64],
) -> Vec<(usize, usize)> {
    let Ok(report) = estimator.evaluate_all(&dataset.responses, 0.5) else {
        return vec![(0, 0); grid.len()];
    };
    grid.iter()
        .map(|&c| {
            let mut covered = 0;
            let mut total = 0;
            for a in &report.assessments {
                let Some(truth) = dataset.empirical_error_rate(a.worker) else {
                    continue;
                };
                total += 1;
                if rescale_interval(&a.interval, c).contains(truth) {
                    covered += 1;
                }
            }
            (covered, total)
        })
        .collect()
}

pub(crate) fn accuracy_series(
    options: &RunOptions,
    label: &str,
    grid: &[f64],
    make_dataset: impl Fn(u64) -> Dataset + Sync,
    estimator: &MWorkerEstimator,
) -> Series {
    let per_rep: Vec<Vec<(usize, usize)>> = parallel_reps(options, |seed| {
        let d = make_dataset(seed);
        score_dataset(&d, estimator, grid)
    });
    let points = grid
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let covered: usize = per_rep.iter().map(|r| r[i].0).sum();
            let total: usize = per_rep.iter().map(|r| r[i].1).sum();
            (c, covered as f64 / total.max(1) as f64)
        })
        .collect();
    Series::new(label, points)
}

/// Runs the experiment.
pub fn run(options: &RunOptions) -> FigureResult {
    let grid = confidence_grid();
    let est = real_data_estimator();
    let series = vec![
        accuracy_series(
            options,
            "Image Comparison",
            &grid,
            crowd_datasets::ic::generate,
            &est,
        ),
        accuracy_series(options, "RTE", &grid, crowd_datasets::ent::generate, &est),
        accuracy_series(
            options,
            "Temporal",
            &grid,
            crowd_datasets::tem::generate,
            &est,
        ),
    ];
    FigureResult {
        id: "fig3",
        title: "Interval accuracy vs. confidence on real-data stand-ins".into(),
        x_label: "Confidence Level".into(),
        y_label: "Accuracy".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_data_accuracy_is_roughly_diagonal() {
        let fig = run(&RunOptions::quick().with_reps(4));
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            let hi = s.points.last().unwrap().1;
            let lo = s.points.first().unwrap().1;
            assert!(hi > lo, "{}: accuracy should rise with confidence", s.label);
            // Real data is messy and — exactly as the paper reports —
            // accuracy can fall well below the diagonal at high
            // confidence before the Figure-4 pruning. Only rule out
            // complete collapse here.
            let at09 = s
                .points
                .iter()
                .find(|p| (p.0 - 0.9).abs() < 1e-9)
                .unwrap()
                .1;
            assert!(
                at09 > 0.4,
                "{}: accuracy at c=0.9 is implausibly low ({at09})",
                s.label
            );
        }
    }
}
