//! Extension experiment: multi-round hiring with interval-based firing.
//!
//! The paper's introduction motivates confidence intervals with the
//! hiring problem, and its conclusion claims that "using confidence
//! intervals allows us to end up with a good set of workers faster
//! than we could by using mean error estimates, yielding improved
//! quality crowdsourced results". Neither is evaluated in the paper
//! itself (the claim defers to the authors' earlier KDD'13 study);
//! this experiment reproduces it end-to-end on our substrate.
//!
//! A pool of workers labels batches of binary tasks round after round.
//! After each round every active worker is re-evaluated on their full
//! history with the m-worker estimator, and a retention policy fires
//! workers deemed too error-prone, replacing them with fresh hires:
//!
//! * **interval policy** — fire only when the 90% interval's *lower*
//!   bound clears the threshold ([`DecisionRule::IntervalBounds`]);
//! * **point policy** — fire whenever the point estimate clears it
//!   ([`DecisionRule::PointEstimate`]);
//! * **never fire** — the do-nothing control.
//!
//! [`quality`] plots the pool's mean true error rate per round: both
//! firing policies drive it down, the point policy slightly faster.
//! [`cost`] plots the cumulative number of *good* workers wrongly
//! fired: the point policy burns many (every unlucky streak near the
//! threshold is fatal), the interval policy almost none — the paper's
//! "bad reputation" cost made measurable.

use crate::{FigureResult, RunOptions, Series, parallel_reps};
use crowd_core::{DecisionRule, EstimatorConfig, MWorkerEstimator, RetentionPolicy};
use crowd_data::{Label, ResponseMatrixBuilder, TaskId, WorkerId};
use rand::RngExt;

/// Rounds of the simulation.
const ROUNDS: usize = 12;
/// Fresh tasks per round.
const TASKS_PER_ROUND: usize = 40;
/// Active workers at any time.
const POOL: usize = 9;
/// Probability a worker attempts a given task of the round.
const ATTEMPT: f64 = 0.9;
/// Firing threshold on the error rate.
const THRESHOLD: f64 = 0.3;
/// Confidence level of the interval policy.
const CONFIDENCE: f64 = 0.9;
/// Hiring pool: true error rates and their probabilities. The 0.45
/// workers are the ones worth firing (threshold 0.3); the rest are
/// keepers.
const HIRE_RATES: [f64; 3] = [0.1, 0.2, 0.45];
const HIRE_PROBS: [f64; 3] = [0.35, 0.35, 0.30];

/// One active worker: true error rate plus full response history.
struct Member {
    p: f64,
    history: Vec<(u32, Label)>,
}

/// Per-round outcomes of one simulated arm.
struct ArmTrace {
    /// Mean true error rate of the pool after each round's firing.
    pool_error: Vec<f64>,
    /// Cumulative good workers (p ≤ threshold) wrongly fired.
    wrongful: Vec<f64>,
}

fn hire(rng: &mut impl RngExt) -> Member {
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (p, w) in HIRE_RATES.iter().zip(HIRE_PROBS) {
        acc += w;
        if u < acc {
            return Member {
                p: *p,
                history: Vec::new(),
            };
        }
    }
    Member {
        p: *HIRE_RATES.last().expect("non-empty pool"),
        history: Vec::new(),
    }
}

/// Runs one arm of the simulation. `rule = None` is the never-fire
/// control.
fn simulate(seed: u64, rule: Option<DecisionRule>) -> ArmTrace {
    let mut rng = crowd_sim::rng(seed);
    let mut members: Vec<Member> = (0..POOL).map(|_| hire(&mut rng)).collect();
    // The estimator must always produce an interval for near-spammer
    // histories, so agreement rates at the singularity are clamped.
    let estimator = MWorkerEstimator::new(EstimatorConfig::clamping());
    let mut trace = ArmTrace {
        pool_error: Vec::with_capacity(ROUNDS),
        wrongful: Vec::with_capacity(ROUNDS),
    };
    let mut wrongful_total = 0usize;

    for round in 0..ROUNDS {
        // The round's fresh tasks. Truths are 50/50 binary; the answer
        // itself never enters the evaluation (no gold standard).
        let base = (round * TASKS_PER_ROUND) as u32;
        for t in 0..TASKS_PER_ROUND as u32 {
            let truth = Label((rng.random::<f64>() < 0.5) as u16);
            for m in members.iter_mut() {
                if rng.random::<f64>() < ATTEMPT {
                    let wrong = rng.random::<f64>() < m.p;
                    m.history
                        .push((base + t, if wrong { truth.flipped() } else { truth }));
                }
            }
        }

        if let Some(rule) = rule {
            // Evaluate every active worker on their accumulated
            // history and apply the policy.
            let n_tasks = (round + 1) * TASKS_PER_ROUND;
            let mut b = ResponseMatrixBuilder::new(POOL, n_tasks, 2);
            for (w, m) in members.iter().enumerate() {
                for &(t, label) in &m.history {
                    b.push(WorkerId(w as u32), TaskId(t), label)
                        .expect("history ids are in range");
                }
            }
            let data = b.build().expect("histories are duplicate-free");
            let policy = RetentionPolicy {
                fire_threshold: THRESHOLD,
                rule,
            };
            if let Ok(report) = estimator.evaluate_all(&data, CONFIDENCE) {
                for (worker, decision) in policy.decide_all(&report) {
                    if decision == crowd_core::Decision::Fire {
                        let idx = worker.index();
                        if members[idx].p <= THRESHOLD {
                            wrongful_total += 1;
                        }
                        members[idx] = hire(&mut rng);
                    }
                }
            }
        }

        let mean_p = members.iter().map(|m| m.p).sum::<f64>() / POOL as f64;
        trace.pool_error.push(mean_p);
        trace.wrongful.push(wrongful_total as f64);
    }
    trace
}

fn mean_traces(traces: &[ArmTrace], field: impl Fn(&ArmTrace) -> &[f64]) -> Vec<(f64, f64)> {
    (0..ROUNDS)
        .map(|r| {
            let sum: f64 = traces.iter().map(|t| field(t)[r]).sum();
            ((r + 1) as f64, sum / traces.len().max(1) as f64)
        })
        .collect()
}

/// Pool quality per round under the three policies.
pub fn quality(options: &RunOptions) -> FigureResult {
    let arms: [(&str, Option<DecisionRule>); 3] = [
        ("interval policy", Some(DecisionRule::IntervalBounds)),
        ("point policy", Some(DecisionRule::PointEstimate)),
        ("never fire", None),
    ];
    let mut series = Vec::new();
    for (label, rule) in arms {
        let traces = parallel_reps(options, |seed| simulate(seed, rule));
        series.push(Series::new(label, mean_traces(&traces, |t| &t.pool_error)));
    }
    FigureResult {
        id: "ext_policy",
        title: format!(
            "Extension: pool mean error rate per round (fire at {THRESHOLD}, c = {CONFIDENCE})"
        ),
        x_label: "Round".into(),
        y_label: "Mean true error rate of pool".into(),
        series,
    }
}

/// Wrongful-firing cost per round for the two firing policies.
pub fn cost(options: &RunOptions) -> FigureResult {
    let arms: [(&str, DecisionRule); 2] = [
        ("interval policy", DecisionRule::IntervalBounds),
        ("point policy", DecisionRule::PointEstimate),
    ];
    let mut series = Vec::new();
    for (label, rule) in arms {
        let traces = parallel_reps(options, |seed| simulate(seed, Some(rule)));
        series.push(Series::new(label, mean_traces(&traces, |t| &t.wrongful)));
    }
    FigureResult {
        id: "ext_policy_cost",
        title: "Extension: cumulative good workers wrongly fired".into(),
        x_label: "Round".into(),
        y_label: "Good workers fired (cumulative mean)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_round(s: &Series, round: usize) -> f64 {
        s.points[round - 1].1
    }

    #[test]
    fn firing_policies_improve_the_pool() {
        let fig = quality(&RunOptions::quick().with_reps(12));
        let interval = &fig.series[0];
        let never = &fig.series[2];
        assert_eq!(interval.points.len(), ROUNDS);
        // The control drifts only by sampling noise; the interval
        // policy must end with a clearly better pool.
        let final_interval = at_round(interval, ROUNDS);
        let final_never = at_round(never, ROUNDS);
        assert!(
            final_interval < final_never - 0.03,
            "interval policy should purge bad workers: {final_interval:.3} vs control \
             {final_never:.3}"
        );
        // And it improves over its own starting pool.
        assert!(final_interval < at_round(interval, 1) - 0.03);
    }

    #[test]
    fn interval_policy_fires_fewer_good_workers() {
        let fig = cost(&RunOptions::quick().with_reps(12));
        let interval_cost = at_round(&fig.series[0], ROUNDS);
        let point_cost = at_round(&fig.series[1], ROUNDS);
        assert!(
            interval_cost < point_cost * 0.6,
            "interval policy should burn distinctly fewer good workers: {interval_cost:.2} \
             vs {point_cost:.2}"
        );
        // Costs are cumulative, hence monotone.
        for s in &fig.series {
            assert!(s.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12));
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = simulate(99, Some(DecisionRule::IntervalBounds));
        let b = simulate(99, Some(DecisionRule::IntervalBounds));
        assert_eq!(a.pool_error, b.pool_error);
        assert_eq!(a.wrongful, b.wrongful);
    }
}
