//! Figure 5(c) — "Accuracy of confidence interval vs confidence level"
//! for the k-ary method on real data.
//!
//! Setting (§IV-C2): MOOC (3-ary, `t = 60`), WSD (binary, `t = 100`)
//! and WS (binary, `t = 30`) stand-ins; 50 random worker triples with
//! at least `t` common tasks per dataset; truth is the empirical
//! response-probability fraction from gold labels (entries whose truth
//! row was never observed for a worker are skipped — the paper cannot
//! score those either).

use crate::{FigureResult, RunOptions, Series, confidence_grid, parallel_reps, rescale_interval};
use crowd_core::{EstimatorConfig, KaryEstimator};
use crowd_datasets::{Dataset, triples_with_overlap};

/// Triples sampled per dataset, per the paper.
pub const TRIPLES_PER_DATASET: usize = 50;

fn dataset_series(
    options: &RunOptions,
    label: &str,
    grid: &[f64],
    threshold: usize,
    make_dataset: impl Fn(u64) -> Dataset + Sync,
) -> Series {
    let per_rep: Vec<Vec<(usize, usize)>> = parallel_reps(options, |seed| {
        let d = make_dataset(seed);
        let mut rng = crowd_sim::rng(seed ^ 0xabcd);
        let triples = triples_with_overlap(&d.responses, threshold, TRIPLES_PER_DATASET, &mut rng);
        let est = KaryEstimator::new(EstimatorConfig::default());
        let k = d.responses.arity() as usize;
        let mut tallies = vec![(0usize, 0usize); grid.len()];
        for triple in triples {
            let Ok(a) = est.evaluate(&d.responses, triple, 0.5) else {
                continue;
            };
            for (slot, &w) in triple.iter().enumerate() {
                let counts = d.gold.worker_confusion_counts(&d.responses, w);
                let probs = d.gold.worker_confusion(&d.responses, w);
                for r in 0..k {
                    // Skip truth rows the gold data never observed.
                    let row_total: f64 = counts.row(r).iter().sum();
                    if row_total == 0.0 {
                        continue;
                    }
                    for c_idx in 0..k {
                        for (gi, &g) in grid.iter().enumerate() {
                            let ci = rescale_interval(a.interval(slot, r, c_idx), g);
                            tallies[gi].1 += 1;
                            if ci.contains(probs.get(r, c_idx)) {
                                tallies[gi].0 += 1;
                            }
                        }
                    }
                }
            }
        }
        tallies
    });
    let points = grid
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let covered: usize = per_rep.iter().map(|r| r[i].0).sum();
            let total: usize = per_rep.iter().map(|r| r[i].1).sum();
            (c, covered as f64 / total.max(1) as f64)
        })
        .collect();
    Series::new(label, points)
}

/// Runs the experiment.
pub fn run(options: &RunOptions) -> FigureResult {
    let grid = confidence_grid();
    let series = vec![
        dataset_series(options, "MOOC arity 3", &grid, 60, |s| {
            crowd_datasets::mooc::generate(s ^ 0x5eed_0003)
        }),
        dataset_series(options, "WSD arity 2", &grid, 100, |s| {
            crowd_datasets::wsd::generate(s ^ 0x5eed_0004)
        }),
        dataset_series(options, "Wordsim arity 2", &grid, 30, |s| {
            crowd_datasets::ws::generate(s ^ 0x5eed_0005)
        }),
    ];
    FigureResult {
        id: "fig5c",
        title: "k-ary interval accuracy vs. confidence on real-data stand-ins".into(),
        x_label: "Confidence Level".into(),
        y_label: "Accuracy".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_kary_accuracy_reaches_nominal_at_high_confidence() {
        let fig = run(&RunOptions::quick().with_reps(2));
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            let at095 = s.points.last().unwrap().1;
            assert!(
                at095 > 0.7,
                "{}: accuracy {at095:.2} at c=0.95 too far below nominal",
                s.label
            );
            assert!(
                s.points.last().unwrap().1 >= s.points.first().unwrap().1,
                "{}: coverage should not shrink with c",
                s.label
            );
        }
    }
}
