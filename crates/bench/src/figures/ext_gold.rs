//! Extension experiment: the gold-task equivalence of agreement-based
//! intervals.
//!
//! The paper's introduction motivates gold-free evaluation with the
//! cost of gold standards ("expert workers must be paid to identify
//! the correct responses", and tests "need to be changed frequently").
//! This experiment prices that argument: how many *gold-labeled* tasks
//! does the classical binomial interval need before it matches the
//! interval the paper's method extracts from the same workers'
//! ordinary, unlabeled work?
//!
//! Protocol: the Figure 2 workload (m = 7 workers, n = 300 binary
//! tasks, density 0.8, c = 0.9). One arm runs Algorithm A2 on the full
//! unlabeled data. The other reveals gold labels for the first `g`
//! tasks and builds Wilson intervals from each worker's responses to
//! them. The crossover `g*` is the gold budget the agreement method is
//! worth — per worker, for free. At full scale the crossover lands at
//! `g* ≈ 150`: half the dataset would have to be expert-labeled before
//! the classical intervals catch up.

use crate::{FigureResult, RunOptions, Series, parallel_reps};
use crowd_core::baselines::GoldBaseline;
use crowd_core::{EstimatorConfig, MWorkerEstimator};
use crowd_data::{GoldStandard, TaskId};
use crowd_sim::BinaryScenario;

const CONFIDENCE: f64 = 0.9;
const GOLD_BUDGETS: [usize; 7] = [10, 20, 40, 80, 150, 225, 300];

/// Mean interval size vs. gold budget, with the agreement method as a
/// flat reference line.
pub fn run(options: &RunOptions) -> FigureResult {
    let scenario = BinaryScenario::paper_default(7, 300, 0.8);
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let gold_est = GoldBaseline::default();

    // (agreement size, per-budget gold sizes) per repetition.
    let per_rep: Vec<Option<(f64, Vec<f64>)>> = parallel_reps(options, |seed| {
        let mut rng = crowd_sim::rng(seed);
        let inst = scenario.generate(&mut rng);
        let report = est.evaluate_all(inst.responses(), CONFIDENCE).ok()?;
        if report.assessments.is_empty() {
            return None;
        }
        let agreement = report.mean_interval_size();
        let gold_sizes: Vec<f64> = GOLD_BUDGETS
            .iter()
            .map(|&g| {
                let partial = GoldStandard::partial(
                    300,
                    (0..g as u32)
                        .filter_map(|t| inst.gold().label(TaskId(t)).map(|l| (TaskId(t), l))),
                );
                let cis = gold_est.evaluate_all(inst.responses(), &partial, CONFIDENCE);
                let total: f64 = cis.iter().map(|(_, ci)| ci.size()).sum();
                total / cis.len().max(1) as f64
            })
            .collect();
        Some((agreement, gold_sizes))
    });

    let valid: Vec<(f64, Vec<f64>)> = per_rep.into_iter().flatten().collect();
    let n = valid.len().max(1) as f64;
    let agreement_mean = valid.iter().map(|(a, _)| a).sum::<f64>() / n;
    let gold_points: Vec<(f64, f64)> = GOLD_BUDGETS
        .iter()
        .enumerate()
        .map(|(i, &g)| {
            (
                g as f64,
                valid.iter().map(|(_, sizes)| sizes[i]).sum::<f64>() / n,
            )
        })
        .collect();
    let reference: Vec<(f64, f64)> = GOLD_BUDGETS
        .iter()
        .map(|&g| (g as f64, agreement_mean))
        .collect();

    FigureResult {
        id: "ext_gold",
        title: format!(
            "Extension: gold-task equivalence at c = {CONFIDENCE} (m = 7, n = 300, d = 0.8)"
        ),
        x_label: "Gold-labeled tasks available".into(),
        y_label: "Mean interval size".into(),
        series: vec![
            Series::new("gold-standard Wilson interval", gold_points),
            Series::new("agreement-based (no gold), A2", reference),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_needs_a_large_budget_to_compete() {
        let fig = run(&RunOptions::quick().with_reps(20));
        let gold = &fig.series[0];
        let agreement = fig.series[1].points[0].1;
        // Gold intervals shrink monotonically with the budget.
        for w in gold.points.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "gold interval must shrink with budget: {:?}",
                gold.points
            );
        }
        // The agreement method beats small and moderate gold budgets
        // by a wide margin...
        let at = |g: f64| {
            gold.points
                .iter()
                .find(|p| (p.0 - g).abs() < 1e-9)
                .map(|p| p.1)
                .expect("budget in grid")
        };
        assert!(
            agreement < at(40.0) * 0.6,
            "agreement ({agreement:.3}) should be far tighter than 40 gold tasks \
             ({:.3})",
            at(40.0)
        );
        // ... and the crossover lands inside the sweep: somewhere
        // between 80 and 300 gold tasks per worker, gold catches up
        // (measured g* ≈ 150 at full scale).
        assert!(
            agreement < at(80.0) && agreement > at(300.0),
            "crossover should lie in (80, 300): agreement {agreement:.3}, \
             gold(80) {:.3}, gold(300) {:.3}",
            at(80.0),
            at(300.0)
        );
    }
}
