//! Figure 4 — "Accuracy of improved interval vs confidence": the
//! Figure 3 experiment after spammer pruning.
//!
//! Setting (§III-E2): workers whose majority-disagreement rate exceeds
//! 0.4 are removed (they sit at the `q = 1/2` singularity of the
//! inversion), then the m-worker method runs on the survivors. The
//! paper reports a marked accuracy improvement at high confidence.

use crate::figures::fig3::{accuracy_series, real_data_estimator};
use crate::{FigureResult, RunOptions, confidence_grid};
use crowd_core::preprocess::{PAPER_SPAMMER_THRESHOLD, prune_spammers};
use crowd_datasets::Dataset;

/// Prunes spammers from a stand-in dataset, keeping gold labels
/// aligned (worker ids are re-numbered; gold is task-indexed and
/// unaffected).
fn pruned(make: impl Fn(u64) -> Dataset) -> impl Fn(u64) -> Dataset {
    move |seed| {
        let d = make(seed);
        let outcome = prune_spammers(&d.responses, PAPER_SPAMMER_THRESHOLD);
        Dataset {
            name: d.name,
            responses: outcome.data,
            gold: d.gold,
        }
    }
}

/// Runs the experiment.
pub fn run(options: &RunOptions) -> FigureResult {
    let grid = confidence_grid();
    let est = real_data_estimator();
    let series = vec![
        accuracy_series(
            options,
            "Image Comparison",
            &grid,
            pruned(crowd_datasets::ic::generate),
            &est,
        ),
        accuracy_series(
            options,
            "RTE",
            &grid,
            pruned(crowd_datasets::ent::generate),
            &est,
        ),
        accuracy_series(
            options,
            "Temporal",
            &grid,
            pruned(crowd_datasets::tem::generate),
            &est,
        ),
    ];
    FigureResult {
        id: "fig4",
        title: "Interval accuracy vs. confidence after spammer pruning".into(),
        x_label: "Confidence Level".into(),
        y_label: "Accuracy".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig3;

    #[test]
    fn pruning_improves_high_confidence_accuracy() {
        let opts = RunOptions::quick().with_reps(4);
        let before = fig3::run(&opts);
        let after = run(&opts);
        let mean_high = |fig: &FigureResult| -> f64 {
            let mut acc = 0.0;
            let mut n = 0;
            for s in &fig.series {
                for &(c, a) in s.points.iter().filter(|p| p.0 >= 0.8) {
                    let _ = c;
                    acc += a;
                    n += 1;
                }
            }
            acc / n as f64
        };
        let b = mean_high(&before);
        let a = mean_high(&after);
        assert!(
            a >= b - 0.02,
            "pruning should not hurt high-confidence accuracy: {b:.3} → {a:.3}"
        );
        // After pruning, high-confidence accuracy should be close to
        // nominal.
        assert!(a > 0.75, "post-pruning accuracy too low: {a:.3}");
    }
}
