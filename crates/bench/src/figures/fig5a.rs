//! Figure 5(a) — "Accuracy of confidence interval vs confidence level"
//! for the k-ary method on synthetic data.
//!
//! Setting (§IV-B1): three workers with the paper's response matrices,
//! uniform selectivity, everyone attempts every task,
//! `k ∈ {2, 3, 4}`, `n ∈ {100, 1000}`; accuracy over all `3k²`
//! response-probability intervals is plotted against `c`. The paper
//! observes conservatism (above-diagonal accuracy) when data is small
//! relative to the arity.

use crate::{FigureResult, RunOptions, Series, confidence_grid, parallel_reps, rescale_interval};
use crowd_core::{EstimatorConfig, KaryEstimator};
use crowd_data::WorkerId;
use crowd_sim::KaryScenario;

/// Runs the experiment.
pub fn run(options: &RunOptions) -> FigureResult {
    let grid = confidence_grid();
    let mut series = Vec::new();
    let workers = [WorkerId(0), WorkerId(1), WorkerId(2)];
    for &arity in &[2u16, 3, 4] {
        for &n in &[100usize, 1000] {
            let scenario = KaryScenario::paper_default(arity, n, 1.0);
            let per_rep: Vec<Option<Vec<(usize, usize)>>> = parallel_reps(options, |seed| {
                let mut rng = crowd_sim::rng(seed);
                let inst = scenario.generate(&mut rng);
                let est = KaryEstimator::new(EstimatorConfig::default());
                let a = est.evaluate(inst.responses(), workers, 0.5).ok()?;
                let truth = [0u32, 1, 2].map(|w| inst.true_confusion(WorkerId(w)));
                Some(
                    grid.iter()
                        .map(|&c| {
                            let mut covered = 0;
                            let mut total = 0;
                            for (i, t) in truth.iter().enumerate() {
                                for r in 0..arity as usize {
                                    for col in 0..arity as usize {
                                        total += 1;
                                        let ci = rescale_interval(a.interval(i, r, col), c);
                                        if ci.contains(t.get(r, col)) {
                                            covered += 1;
                                        }
                                    }
                                }
                            }
                            (covered, total)
                        })
                        .collect(),
                )
            });
            let points: Vec<(f64, f64)> = grid
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let covered: usize = per_rep.iter().flatten().map(|r| r[i].0).sum();
                    let total: usize = per_rep.iter().flatten().map(|r| r[i].1).sum();
                    (c, covered as f64 / total.max(1) as f64)
                })
                .collect();
            series.push(Series::new(format!("arity {arity}, {n} tasks"), points));
        }
    }
    FigureResult {
        id: "fig5a",
        title: "k-ary interval accuracy vs. confidence".into(),
        x_label: "Confidence Level".into(),
        y_label: "Accuracy".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_tracks_or_exceeds_the_diagonal() {
        let fig = run(&RunOptions::quick().with_reps(10));
        assert_eq!(fig.series.len(), 6);
        for s in &fig.series {
            let at09 = s
                .points
                .iter()
                .find(|p| (p.0 - 0.9).abs() < 1e-9)
                .unwrap()
                .1;
            assert!(
                at09 > 0.75,
                "{}: accuracy {at09:.2} at c=0.9 too far below nominal",
                s.label
            );
            // More confidence → no less coverage.
            let lo = s.points.first().unwrap().1;
            assert!(at09 >= lo, "{}: coverage should grow with c", s.label);
        }
    }
}
