//! Figure 5(b) — "Average size of confidence interval vs density" for
//! the k-ary method.
//!
//! Setting (§IV-B2): `n = 500`, `c = 0.8`, three workers each
//! attempting every task with probability `d ∈ {0.5 … 0.95}`,
//! `k ∈ {2, 3, 4}`. Sizes fall with density and grow sharply with
//! arity (the parameter count grows as `k²`).

use crate::{FigureResult, RunOptions, Series, density_grid, parallel_reps};
use crowd_core::{EstimatorConfig, KaryEstimator};
use crowd_data::WorkerId;
use crowd_sim::KaryScenario;

/// Confidence level fixed by the paper for this figure.
pub const CONFIDENCE: f64 = 0.8;
/// Task count fixed by the paper for this figure.
pub const N_TASKS: usize = 500;

/// Runs the experiment.
pub fn run(options: &RunOptions) -> FigureResult {
    let grid = density_grid();
    let workers = [WorkerId(0), WorkerId(1), WorkerId(2)];
    let mut series = Vec::new();
    for &arity in &[2u16, 3, 4] {
        let mut points = Vec::with_capacity(grid.len());
        for &d in &grid {
            let scenario = KaryScenario::paper_default(arity, N_TASKS, d);
            let sizes: Vec<Option<f64>> = parallel_reps(options, |seed| {
                let mut rng = crowd_sim::rng(seed);
                let inst = scenario.generate(&mut rng);
                let est = KaryEstimator::new(EstimatorConfig::default());
                let a = est.evaluate(inst.responses(), workers, CONFIDENCE).ok()?;
                Some(a.mean_interval_size())
            });
            let valid: Vec<f64> = sizes.into_iter().flatten().collect();
            points.push((d, valid.iter().sum::<f64>() / valid.len().max(1) as f64));
        }
        series.push(Series::new(format!("Arity {arity}"), points));
    }
    FigureResult {
        id: "fig5b",
        title: "k-ary interval size vs. density (n = 500, c = 0.8)".into(),
        x_label: "Density".into(),
        y_label: "Average Size of Interval".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_falls_with_density_and_rises_with_arity() {
        let fig = run(&RunOptions::quick().with_reps(10));
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            // Monte-Carlo noise at small rep counts: compare the mean
            // of the three sparsest points against the three densest.
            let head: f64 = s.points[..3].iter().map(|p| p.1).sum::<f64>() / 3.0;
            let tail: f64 = s.points[s.points.len() - 3..]
                .iter()
                .map(|p| p.1)
                .sum::<f64>()
                / 3.0;
            assert!(tail < head, "{}: size should fall with density", s.label);
        }
        let at = |label: &str, d: f64| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .points
                .iter()
                .find(|p| (p.0 - d).abs() < 1e-9)
                .unwrap()
                .1
        };
        assert!(
            at("Arity 3", 0.9) > at("Arity 2", 0.9),
            "arity 3 wider than arity 2"
        );
        assert!(
            at("Arity 4", 0.9) > at("Arity 3", 0.9),
            "arity 4 wider than arity 3"
        );
    }
}
