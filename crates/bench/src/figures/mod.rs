//! One module per figure of the paper's evaluation, plus ablations.

pub mod ablations;
pub mod ext_gold;
pub mod ext_policy;
pub mod fig1;
pub mod fig2a;
pub mod fig2b;
pub mod fig2c;
pub mod fig3;
pub mod fig4;
pub mod fig5a;
pub mod fig5b;
pub mod fig5c;

use crate::{FigureResult, RunOptions};

/// Registry entry binding a figure id to its runner and the repetition
/// count the default `figures --all` run uses (real-data figures
/// re-generate whole datasets per repetition and need fewer).
pub struct FigureSpec {
    /// Stable id (`fig1` … `fig5c`).
    pub id: &'static str,
    /// Default repetitions for the full run.
    pub default_reps: usize,
    /// The runner.
    pub run: fn(&RunOptions) -> FigureResult,
}

/// All figures, in paper order.
pub fn all_figures() -> Vec<FigureSpec> {
    vec![
        FigureSpec {
            id: "fig1",
            default_reps: 500,
            run: fig1::run,
        },
        FigureSpec {
            id: "fig2a",
            default_reps: 500,
            run: fig2a::run,
        },
        FigureSpec {
            id: "fig2b",
            default_reps: 500,
            run: fig2b::run,
        },
        FigureSpec {
            id: "fig2c",
            default_reps: 500,
            run: fig2c::run,
        },
        FigureSpec {
            id: "fig3",
            default_reps: 100,
            run: fig3::run,
        },
        FigureSpec {
            id: "fig4",
            default_reps: 100,
            run: fig4::run,
        },
        FigureSpec {
            id: "fig5a",
            default_reps: 500,
            run: fig5a::run,
        },
        FigureSpec {
            id: "fig5b",
            default_reps: 200,
            run: fig5b::run,
        },
        FigureSpec {
            id: "fig5c",
            default_reps: 30,
            run: fig5c::run,
        },
    ]
}

/// The ablation and extension experiments (not figures of the paper;
/// run with `figures --ablations`).
pub fn ablation_figures() -> Vec<FigureSpec> {
    vec![
        FigureSpec {
            id: "abl_collusion",
            default_reps: 40,
            run: ablations::collusion,
        },
        FigureSpec {
            id: "abl_prune",
            default_reps: 15,
            run: ablations::pruning_threshold,
        },
        FigureSpec {
            id: "abl_epsilon",
            default_reps: 30,
            run: ablations::derivative_epsilon,
        },
        FigureSpec {
            id: "abl_pairing",
            default_reps: 60,
            run: ablations::pairing_strategy,
        },
        FigureSpec {
            id: "abl_degeneracy",
            default_reps: 40,
            run: ablations::degeneracy_policy,
        },
        FigureSpec {
            id: "abl_kary_m",
            default_reps: 20,
            run: ablations::kary_m_sweep,
        },
        FigureSpec {
            id: "ext_kary_acc",
            default_reps: 40,
            run: ablations::kary_m_accuracy,
        },
        FigureSpec {
            id: "ext_policy",
            default_reps: 60,
            run: ext_policy::quality,
        },
        FigureSpec {
            id: "ext_policy_cost",
            default_reps: 60,
            run: ext_policy::cost,
        },
        FigureSpec {
            id: "ext_gold",
            default_reps: 100,
            run: ext_gold::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_figure_once() {
        let ids: Vec<&str> = all_figures().iter().map(|f| f.id).collect();
        assert_eq!(
            ids,
            vec![
                "fig1", "fig2a", "fig2b", "fig2c", "fig3", "fig4", "fig5a", "fig5b", "fig5c"
            ]
        );
    }

    #[test]
    fn ablation_registry_ids_are_unique_and_stable() {
        let ids: Vec<&str> = ablation_figures().iter().map(|f| f.id).collect();
        assert_eq!(
            ids,
            vec![
                "abl_collusion",
                "abl_prune",
                "abl_epsilon",
                "abl_pairing",
                "abl_degeneracy",
                "abl_kary_m",
                "ext_kary_acc",
                "ext_policy",
                "ext_policy_cost",
                "ext_gold",
            ]
        );
        // No id collides with a paper figure.
        for id in ids {
            assert!(all_figures().iter().all(|f| f.id != id));
        }
    }
}
