//! Figure 2(b) — "Size of intervals for varying levels of density".
//!
//! Setting (§III-D2): `c = 0.8`, density `d ∈ {0.5 … 0.95}`,
//! `(n, m) ∈ {(300, 3), (100, 7), (300, 7)}` (the paper omits
//! `(100, 3)` because its sizes blow past the plot scale at d = 0.5);
//! the mean interval size is expected to fall roughly like `1/d`.

use crate::{FigureResult, RunOptions, Series, density_grid, parallel_reps};
use crowd_core::{EstimatorConfig, MWorkerEstimator};
use crowd_sim::BinaryScenario;

/// Confidence level fixed by the paper for this figure.
pub const CONFIDENCE: f64 = 0.8;

/// Runs the experiment.
pub fn run(options: &RunOptions) -> FigureResult {
    let grid = density_grid();
    let mut series = Vec::new();
    for &(m, n) in &[(3usize, 300usize), (7, 100), (7, 300)] {
        let mut points = Vec::with_capacity(grid.len());
        for &d in &grid {
            let scenario = BinaryScenario::paper_default(m, n, d);
            let sizes: Vec<Option<f64>> = parallel_reps(options, |seed| {
                let mut rng = crowd_sim::rng(seed);
                let inst = scenario.generate(&mut rng);
                let est = MWorkerEstimator::new(EstimatorConfig::default());
                let report = est.evaluate_all(inst.responses(), CONFIDENCE).ok()?;
                if report.assessments.is_empty() {
                    None
                } else {
                    Some(report.mean_interval_size())
                }
            });
            let valid: Vec<f64> = sizes.into_iter().flatten().collect();
            points.push((d, valid.iter().sum::<f64>() / valid.len().max(1) as f64));
        }
        series.push(Series::new(format!("{m} workers, {n} tasks"), points));
    }
    FigureResult {
        id: "fig2b",
        title: "Size of interval vs. density (c = 0.8)".into(),
        x_label: "Density".into(),
        y_label: "Size of Interval".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_fall_with_density_and_scale_with_data() {
        let fig = run(&RunOptions::quick().with_reps(12));
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(last < first, "{}: size should shrink with density", s.label);
        }
        // More tasks → smaller intervals at the same m (compare the two
        // m=7 curves at d=0.9).
        let at = |label: &str, d: f64| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .points
                .iter()
                .find(|p| (p.0 - d).abs() < 1e-9)
                .unwrap()
                .1
        };
        assert!(at("7 workers, 300 tasks", 0.9) < at("7 workers, 100 tasks", 0.9));
    }
}
