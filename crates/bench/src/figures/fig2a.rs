//! Figure 2(a) — "Accuracy of m-worker binary non-regular method in
//! estimating confidence".
//!
//! Setting (§III-D1): density 0.8, `n ∈ {100, 300}`, `m ∈ {3, 7}`, 500
//! repetitions; the fraction of c-confidence intervals containing the
//! true worker error rate is plotted against `c` and should track the
//! diagonal.

use crate::{FigureResult, RunOptions, Series, confidence_grid, parallel_reps, rescale_interval};
use crowd_core::{EstimatorConfig, MWorkerEstimator};
use crowd_sim::BinaryScenario;

/// Runs the experiment.
pub fn run(options: &RunOptions) -> FigureResult {
    let grid = confidence_grid();
    let mut series = Vec::new();
    for &(m, n) in &[(3usize, 100usize), (3, 300), (7, 100), (7, 300)] {
        let scenario = BinaryScenario::paper_default(m, n, 0.8);
        // Per repetition: (covered, total) per confidence level.
        let per_rep: Vec<Vec<(usize, usize)>> = parallel_reps(options, |seed| {
            let mut rng = crowd_sim::rng(seed);
            let inst = scenario.generate(&mut rng);
            let est = MWorkerEstimator::new(EstimatorConfig::default());
            let Ok(report) = est.evaluate_all(inst.responses(), 0.5) else {
                return vec![(0, 0); grid.len()];
            };
            grid.iter()
                .map(|&c| {
                    let mut covered = 0;
                    let mut total = 0;
                    for a in &report.assessments {
                        total += 1;
                        let ci = rescale_interval(&a.interval, c);
                        if ci.contains(inst.true_error_rate(a.worker)) {
                            covered += 1;
                        }
                    }
                    (covered, total)
                })
                .collect()
        });
        let points: Vec<(f64, f64)> = grid
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let covered: usize = per_rep.iter().map(|r| r[i].0).sum();
                let total: usize = per_rep.iter().map(|r| r[i].1).sum();
                (c, covered as f64 / total.max(1) as f64)
            })
            .collect();
        series.push(Series::new(format!("{m} workers {n} tasks"), points));
    }
    FigureResult {
        id: "fig2a",
        title: "Interval accuracy vs. confidence (binary non-regular, density 0.8)".into(),
        x_label: "Confidence Level".into(),
        y_label: "Accuracy".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_tracks_the_diagonal() {
        let fig = run(&RunOptions::quick().with_reps(40));
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            // Check mid and high confidence levels stay near ideal.
            for &(c, acc) in s.points.iter().filter(|p| p.0 >= 0.5) {
                assert!(
                    (acc - c).abs() < 0.15,
                    "{}: accuracy {acc:.2} at c={c:.2} strays from the diagonal",
                    s.label
                );
            }
            // Accuracy is monotone-ish: high c beats low c.
            let lo = s.points.first().unwrap().1;
            let hi = s.points.last().unwrap().1;
            assert!(hi > lo, "{}: accuracy should grow with c", s.label);
        }
    }
}
