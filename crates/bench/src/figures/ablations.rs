//! Ablation experiments beyond the paper's figures, probing the
//! assumptions and design choices DESIGN.md calls out.
//!
//! * [`collusion`] — §III-A assumes independent workers ("as long as
//!   workers don't collude"); sweeps the colluding fraction and
//!   measures interval accuracy separately for clique members and
//!   honest workers.
//! * [`pruning_threshold`] — Figure 4 fixes the spammer threshold at
//!   0.4; sweeps it to show the plateau the paper's choice sits on.
//! * [`derivative_epsilon`] — Algorithm A3 fixes the numeric
//!   differentiation step at ε = 0.01; sweeps it to show the interval
//!   sizes are insensitive across two orders of magnitude.
//! * [`pairing_strategy`] — §III-C1 argues for the overlap-greedy
//!   pairing; compares it against naive id-order pairing on
//!   block-structured data where pairing actually matters (on iid
//!   sparsity the strategies tie).
//! * [`degeneracy_policy`] — the paper drops degenerate triples; the
//!   `Clamp` alternative keeps them at the cost of wide intervals.
//!   Sweeps the spammer fraction and compares coverage and the
//!   fraction of workers that get evaluated at all.
//! * [`kary_m_sweep`] — the m-worker k-ary extension: interval size
//!   vs. crowd size, demonstrating the ρ ≈ 0.9 cross-triple
//!   correlation ceiling documented in `crowd_core::kary`.
//! * [`kary_m_accuracy`] — coverage calibration of that extension:
//!   its plug-in cross-triple covariance has no closed form to lean
//!   on, so this run certifies the combined intervals are honest.

use crate::{FigureResult, RunOptions, Series, parallel_reps};
use crowd_core::pairing::PairingStrategy;
use crowd_core::preprocess::prune_spammers;
use crowd_core::{
    CoverageStats, DegeneracyPolicy, EstimatorConfig, KaryEstimator, KaryMWorkerEstimator,
    MWorkerEstimator,
};
use crowd_data::{WorkerId, pair_stats};
use crowd_sim::{BinaryScenario, Collusion, KaryScenario};

/// Collusion sweep: interval accuracy at c = 0.9 vs. colluding
/// fraction, split by cohort.
pub fn collusion(options: &RunOptions) -> FigureResult {
    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4];
    let mut honest_points = Vec::new();
    let mut clique_points = Vec::new();
    for &fraction in &fractions {
        let mut scenario = BinaryScenario::paper_default(9, 300, 1.0);
        if fraction > 0.0 {
            scenario.collusion = Some(Collusion {
                fraction,
                clique_error: 0.3,
            });
        }
        let per_rep: Vec<(CoverageStats, CoverageStats)> = parallel_reps(options, |seed| {
            let mut rng = crowd_sim::rng(seed);
            let inst = scenario.generate(&mut rng);
            let est = MWorkerEstimator::new(EstimatorConfig::default());
            let mut honest = CoverageStats::default();
            let mut clique = CoverageStats::default();
            let members = clique_members(inst.responses());
            if let Ok(report) = est.evaluate_all(inst.responses(), 0.9) {
                for a in &report.assessments {
                    let covered = a.interval.contains(inst.true_error_rate(a.worker));
                    if members.contains(&a.worker) {
                        clique.record(covered);
                    } else {
                        honest.record(covered);
                    }
                }
            }
            (honest, clique)
        });
        let mut honest = CoverageStats::default();
        let mut clique = CoverageStats::default();
        for (h, c) in per_rep {
            honest.merge(h);
            clique.merge(c);
        }
        honest_points.push((fraction, honest.accuracy().unwrap_or(f64::NAN)));
        if let Some(acc) = clique.accuracy() {
            clique_points.push((fraction, acc));
        }
    }
    FigureResult {
        id: "abl_collusion",
        title: "Ablation: interval accuracy at c = 0.9 vs. colluding fraction".into(),
        x_label: "Colluding fraction".into(),
        y_label: "Accuracy".into(),
        series: vec![
            Series::new("honest workers", honest_points),
            Series::new("clique members", clique_points),
        ],
    }
}

/// Members of any perfectly-agreeing clique (≥ 50 shared tasks).
fn clique_members(data: &crowd_data::ResponseMatrix) -> Vec<WorkerId> {
    let m = data.n_workers() as u32;
    let mut members = std::collections::HashSet::new();
    for a in 0..m {
        for b in (a + 1)..m {
            let s = pair_stats(data, WorkerId(a), WorkerId(b));
            if s.common_tasks > 50 && s.agreements == s.common_tasks {
                members.insert(WorkerId(a));
                members.insert(WorkerId(b));
            }
        }
    }
    members.into_iter().collect()
}

/// Pruning-threshold sweep on the ENT stand-in: post-pruning interval
/// accuracy at c = 0.9 and surviving-worker count vs. threshold.
pub fn pruning_threshold(options: &RunOptions) -> FigureResult {
    let thresholds = [0.25, 0.3, 0.35, 0.4, 0.45, 0.5];
    let mut acc_points = Vec::new();
    let mut kept_points = Vec::new();
    for &threshold in &thresholds {
        let per_rep: Vec<(CoverageStats, usize)> = parallel_reps(options, |seed| {
            let d = crowd_datasets::ent::generate(seed);
            let outcome = prune_spammers(&d.responses, threshold);
            let est = MWorkerEstimator::new(EstimatorConfig {
                min_pair_overlap: 10,
                ..EstimatorConfig::default()
            });
            let mut cov = CoverageStats::default();
            if let Ok(report) = est.evaluate_all(&outcome.data, 0.9) {
                cov.merge(report.coverage(|w| {
                    d.gold
                        .worker_error_rate(&d.responses, outcome.kept[w.index()])
                }));
            }
            (cov, outcome.kept.len())
        });
        let mut cov = CoverageStats::default();
        let mut kept = 0usize;
        for (c, k) in &per_rep {
            cov.merge(*c);
            kept += k;
        }
        acc_points.push((threshold, cov.accuracy().unwrap_or(f64::NAN)));
        kept_points.push((threshold, kept as f64 / per_rep.len().max(1) as f64 / 164.0));
    }
    FigureResult {
        id: "abl_prune",
        title: "Ablation: spammer-pruning threshold on ENT (c = 0.9)".into(),
        x_label: "Disagreement threshold".into(),
        y_label: "Accuracy / kept fraction".into(),
        series: vec![
            Series::new("interval accuracy", acc_points),
            Series::new("fraction of workers kept", kept_points),
        ],
    }
}

/// Numeric-derivative step sweep for Algorithm A3: mean interval size
/// at c = 0.8 vs. ε.
pub fn derivative_epsilon(options: &RunOptions) -> FigureResult {
    let epsilons = [0.001, 0.003, 0.01, 0.03, 0.1];
    let workers = [WorkerId(0), WorkerId(1), WorkerId(2)];
    let scenario = KaryScenario::paper_default(3, 500, 1.0);
    let mut points = Vec::new();
    for &eps in &epsilons {
        let sizes: Vec<Option<f64>> = parallel_reps(options, |seed| {
            let mut rng = crowd_sim::rng(seed);
            let inst = scenario.generate(&mut rng);
            let est = KaryEstimator::new(EstimatorConfig {
                derivative_epsilon: eps,
                ..EstimatorConfig::default()
            });
            let a = est.evaluate(inst.responses(), workers, 0.8).ok()?;
            Some(a.mean_interval_size())
        });
        let valid: Vec<f64> = sizes.into_iter().flatten().collect();
        points.push((eps, valid.iter().sum::<f64>() / valid.len().max(1) as f64));
    }
    FigureResult {
        id: "abl_epsilon",
        title: "Ablation: A3 derivative step ε vs. interval size (arity 3)".into(),
        x_label: "epsilon".into(),
        y_label: "Mean interval size".into(),
        series: vec![Series::new("arity 3, n = 500", points)],
    }
}

/// Pairing-strategy sweep: mean interval size vs. confidence for the
/// overlap-greedy pairing of §III-C1 against naive id-order pairing.
///
/// Under iid sparsity every pairing sees statistically identical
/// overlaps and the strategies tie (we measured 4th-decimal
/// differences on the Figure 2(c) workload). The heuristic earns its
/// keep on *block-structured* data — the batch-assignment pattern of
/// real platforms ([`crowd_datasets::BlockDesign`]): worker ids are
/// interleaved across cohorts, so id-order pairing matches workers
/// from different blocks (small triple overlap) while greedy recovers
/// the same-cohort pairs.
pub fn pairing_strategy(options: &RunOptions) -> FigureResult {
    let confidences = [0.5, 0.6, 0.7, 0.8, 0.9];
    let strategies: [(&str, PairingStrategy); 2] = [
        ("greedy by overlap", PairingStrategy::GreedyByOverlap),
        ("id-order pairing", PairingStrategy::Sequential),
    ];
    // Each repetition builds its block instance and overlap index
    // exactly once; both strategies and all five confidence levels
    // read the same shared index (previously the instance was
    // regenerated and re-indexed per (strategy, confidence) cell —
    // 10× the matrix-path work for bit-identical numbers).
    let per_rep: Vec<[[Option<f64>; 5]; 2]> = parallel_reps(options, |seed| {
        let data = interleaved_block_instance(seed);
        let index = crowd_data::OverlapIndex::from_matrix(&data);
        let mut cells = [[None; 5]; 2];
        for (s, (_, strategy)) in strategies.iter().enumerate() {
            let est = MWorkerEstimator::new(EstimatorConfig {
                pairing: *strategy,
                ..EstimatorConfig::default()
            });
            for (i, &c) in confidences.iter().enumerate() {
                cells[s][i] = est
                    .evaluate_all_indexed(&index, c)
                    .ok()
                    .filter(|report| !report.assessments.is_empty())
                    .map(|report| report.mean_interval_size());
            }
        }
        cells
    });
    let mut series = Vec::new();
    for (s, (label, _)) in strategies.iter().enumerate() {
        let mut points = Vec::new();
        for (i, &c) in confidences.iter().enumerate() {
            let valid: Vec<f64> = per_rep.iter().filter_map(|cells| cells[s][i]).collect();
            points.push((c, valid.iter().sum::<f64>() / valid.len().max(1) as f64));
        }
        series.push(Series::new(*label, points));
    }
    FigureResult {
        id: "abl_pairing",
        title: "Ablation: pairing strategy on block-structured data".into(),
        x_label: "Confidence level".into(),
        y_label: "Mean interval size".into(),
        series,
    }
}

/// A block-structured binary instance with cohort-interleaved worker
/// ids: 3 cohorts × 5 workers over 60-task blocks with 30% overlap
/// between consecutive blocks; worker `w` sits in cohort `w mod 3`.
fn interleaved_block_instance(seed: u64) -> crowd_data::ResponseMatrix {
    use crowd_data::{Label, ResponseMatrixBuilder, TaskId};
    use rand::RngExt;
    let design = crowd_datasets::BlockDesign {
        cohorts: 3,
        workers_per_cohort: 5,
        block_len: 60,
        block_overlap: 0.3,
        dropout: 0.1,
    };
    let mut rng = crowd_sim::rng(seed);
    let mask = design.sample_mask(&mut rng);
    let n_tasks = design.n_tasks();
    let n_workers = design.n_workers();
    let truths: Vec<Label> = (0..n_tasks)
        .map(|_| Label((rng.random::<f64>() < 0.5) as u16))
        .collect();
    let pool = [0.1, 0.2, 0.3];
    let mut b = ResponseMatrixBuilder::new(n_workers, n_tasks, 2);
    for cohort_slot in 0..n_workers {
        // Interleave: design row `cohort_slot` (cohort-contiguous)
        // becomes public worker id `slot·cohorts + cohort`.
        let cohort = cohort_slot / 5;
        let slot = cohort_slot % 5;
        let public = (slot * 3 + cohort) as u32;
        let p = pool[(rng.random::<f64>() * 3.0) as usize % 3];
        for (t, &attempted) in mask[cohort_slot].iter().enumerate() {
            if attempted {
                let wrong = rng.random::<f64>() < p;
                let label = if wrong {
                    truths[t].flipped()
                } else {
                    truths[t]
                };
                b.push(crowd_data::WorkerId(public), TaskId(t as u32), label)
                    .expect("ids in range");
            }
        }
    }
    b.build().expect("mask has no duplicates")
}

/// Degeneracy-policy sweep: with spammers in the pool, dropping
/// degenerate triples (the paper's behaviour) versus clamping the
/// agreement rate just above the singularity. Reports coverage at
/// c = 0.9 and the fraction of workers evaluated, per policy.
pub fn degeneracy_policy(options: &RunOptions) -> FigureResult {
    let spam_fractions = [0.0, 0.1, 0.2, 0.3];
    let policies: [(&str, DegeneracyPolicy); 2] = [
        ("drop (paper)", DegeneracyPolicy::Error),
        ("clamp", DegeneracyPolicy::Clamp { epsilon: 1e-3 }),
    ];
    let estimators = policies.map(|(_, policy)| {
        MWorkerEstimator::new(EstimatorConfig {
            degeneracy: policy,
            ..EstimatorConfig::default()
        })
    });
    /// A policy's accumulated (accuracy, evaluated-fraction) points.
    type PolicyPoints = (Vec<(f64, f64)>, Vec<(f64, f64)>);
    // One instance + one shared index per (fraction, seed); both
    // policies evaluate against it (previously each policy regenerated
    // and re-indexed the identical instance).
    let mut per_policy: [PolicyPoints; 2] = Default::default();
    for &fraction in &spam_fractions {
        let mut scenario = BinaryScenario::paper_default(9, 200, 0.9);
        scenario.spammer_fraction = fraction;
        /// Per-policy (coverage, evaluated, total) cells of one rep.
        type PolicyCells = [(CoverageStats, usize, usize); 2];
        let per_rep: Vec<PolicyCells> = parallel_reps(options, |seed| {
            let mut rng = crowd_sim::rng(seed);
            let inst = scenario.generate(&mut rng);
            let index = crowd_data::OverlapIndex::from_matrix(inst.responses());
            [0, 1].map(|p| match estimators[p].evaluate_all_indexed(&index, 0.9) {
                Ok(report) => {
                    let cov = report.coverage(|w| Some(inst.true_error_rate(w)));
                    (cov, report.assessments.len(), 9)
                }
                Err(_) => (CoverageStats::default(), 0, 9),
            })
        });
        for (p, (acc_points, eval_points)) in per_policy.iter_mut().enumerate() {
            let mut cov = CoverageStats::default();
            let mut evaluated = 0usize;
            let mut total = 0usize;
            for cells in &per_rep {
                let (c, e, t) = &cells[p];
                cov.merge(*c);
                evaluated += e;
                total += t;
            }
            acc_points.push((fraction, cov.accuracy().unwrap_or(f64::NAN)));
            eval_points.push((fraction, evaluated as f64 / total.max(1) as f64));
        }
    }
    let mut acc_series = Vec::new();
    let mut eval_series = Vec::new();
    for ((label, _), (acc_points, eval_points)) in policies.iter().zip(per_policy) {
        acc_series.push(Series::new(format!("coverage, {label}"), acc_points));
        eval_series.push(Series::new(
            format!("evaluated fraction, {label}"),
            eval_points,
        ));
    }
    acc_series.append(&mut eval_series);
    FigureResult {
        id: "abl_degeneracy",
        title: "Ablation: degeneracy policy under spammers (c = 0.9)".into(),
        x_label: "Spammer fraction".into(),
        y_label: "Coverage / evaluated fraction".into(),
        series: acc_series,
    }
}

/// Coverage calibration of the m-worker k-ary extension: interval
/// accuracy vs. confidence for m = 5. The cross-triple covariance is a
/// plug-in construction with no closed form to lean on, so this is the
/// experiment that certifies the combined intervals are honest.
pub fn kary_m_accuracy(options: &RunOptions) -> FigureResult {
    let confidences: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let mut series = vec![Series::new(
        "Ideal interval-accuracy",
        confidences.iter().map(|&c| (c, c)).collect(),
    )];
    for arity in [2u16, 3] {
        let scenario = KaryScenario::paper_default(arity, 400, 0.9).with_workers(5);
        let est = KaryMWorkerEstimator::new(EstimatorConfig::default());
        // One instance + one shared index per repetition; all nine
        // confidence levels evaluate against it (previously the
        // instance was regenerated and re-indexed per level).
        let per_rep: Vec<Vec<CoverageStats>> = parallel_reps(options, |seed| {
            let mut rng = crowd_sim::rng(seed);
            let inst = scenario.generate(&mut rng);
            let index = crowd_data::OverlapIndex::from_matrix(inst.responses());
            confidences
                .iter()
                .map(|&c| match est.evaluate_all_indexed(&index, c) {
                    Ok(report) => report.coverage(|w| Some(inst.true_confusion(w))),
                    Err(_) => CoverageStats::default(),
                })
                .collect()
        });
        let mut points = Vec::new();
        for (i, &c) in confidences.iter().enumerate() {
            let mut stats = CoverageStats::default();
            for rep in &per_rep {
                stats.merge(rep[i]);
            }
            points.push((c, stats.accuracy().unwrap_or(f64::NAN)));
        }
        series.push(Series::new(
            format!("arity {arity}, m = 5, n = 400"),
            points,
        ));
    }
    FigureResult {
        id: "ext_kary_acc",
        title: "Extension: m-worker k-ary interval accuracy vs. confidence".into(),
        x_label: "Confidence level".into(),
        y_label: "Accuracy".into(),
        series,
    }
}

/// Crowd-size sweep for the m-worker k-ary extension: mean interval
/// size at c = 0.8 vs. m. The shrinkage saturates quickly — the
/// cross-triple correlation of the k-ary pipeline is ρ ≈ 0.9, so extra
/// triples mostly re-measure the same noise (see `crowd_core::kary`).
pub fn kary_m_sweep(options: &RunOptions) -> FigureResult {
    let ms = [3usize, 5, 7, 9];
    let mut series = Vec::new();
    for arity in [2u16, 3] {
        let mut points = Vec::new();
        for &m in &ms {
            let scenario = KaryScenario::paper_default(arity, 400, 1.0).with_workers(m);
            let est = KaryMWorkerEstimator::new(EstimatorConfig::default());
            let sizes: Vec<Option<f64>> = parallel_reps(options, |seed| {
                let mut rng = crowd_sim::rng(seed);
                let inst = scenario.generate(&mut rng);
                let a = est
                    .evaluate_worker(inst.responses(), WorkerId(0), 0.8)
                    .ok()?;
                Some(a.mean_interval_size())
            });
            let valid: Vec<f64> = sizes.into_iter().flatten().collect();
            points.push((
                m as f64,
                valid.iter().sum::<f64>() / valid.len().max(1) as f64,
            ));
        }
        series.push(Series::new(format!("arity {arity}, n = 400"), points));
    }
    FigureResult {
        id: "abl_kary_m",
        title: "Extension: k-ary interval size vs. crowd size (c = 0.8)".into(),
        x_label: "Workers m".into(),
        y_label: "Mean interval size".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collusion_hurts_and_scales_with_fraction() {
        // 24 reps × 9 workers ≈ 200 intervals per point; fewer reps
        // leave the clean-pool coverage estimate too noisy to assert on.
        let fig = collusion(&RunOptions::quick().with_reps(24));
        let honest = &fig.series[0];
        // Accuracy at fraction 0 is near nominal; at 0.4 it is visibly
        // degraded.
        let at = |s: &Series, x: f64| {
            s.points
                .iter()
                .find(|p| (p.0 - x).abs() < 1e-9)
                .map(|p| p.1)
        };
        let clean = at(honest, 0.0).unwrap();
        let poisoned = at(honest, 0.4).unwrap();
        assert!(clean > 0.8, "clean-pool accuracy {clean:.3}");
        assert!(
            poisoned < clean - 0.1,
            "collusion should visibly degrade honest accuracy: {clean:.3} → {poisoned:.3}"
        );
        // Clique members exist for positive fractions and are badly
        // covered (their intervals are confidently wrong).
        let clique = &fig.series[1];
        assert!(!clique.points.is_empty());
        let worst = clique
            .points
            .iter()
            .map(|p| p.1)
            .fold(f64::INFINITY, f64::min);
        assert!(
            worst < 0.5,
            "clique coverage should collapse, got {worst:.3}"
        );
    }

    #[test]
    fn pruning_threshold_sweep_has_sane_shape() {
        let fig = pruning_threshold(&RunOptions::quick().with_reps(3));
        let kept = &fig.series[1];
        // Raising the threshold keeps (weakly) more workers.
        assert!(
            kept.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9),
            "kept fraction should rise with the threshold: {:?}",
            kept.points
        );
        let acc = &fig.series[0];
        assert!(
            acc.points.iter().all(|p| p.1 > 0.7),
            "accuracy stays high: {:?}",
            acc.points
        );
    }

    #[test]
    fn greedy_pairing_beats_sequential_on_block_data() {
        let fig = pairing_strategy(&RunOptions::quick().with_reps(12));
        let greedy = &fig.series[0];
        let sequential = &fig.series[1];
        for (g, s) in greedy.points.iter().zip(&sequential.points) {
            assert!(
                g.1 < s.1,
                "greedy pairing should be tighter at c = {}: {} vs {}",
                g.0,
                g.1,
                s.1
            );
        }
        // The block structure makes the gap substantial, not cosmetic.
        let (g9, s9) = (greedy.points[4].1, sequential.points[4].1);
        assert!(
            g9 < s9 * 0.95,
            "expected ≥5% tighter intervals at c = 0.9: {g9:.4} vs {s9:.4}"
        );
    }

    #[test]
    fn degeneracy_policies_trade_coverage_for_reach() {
        let fig = degeneracy_policy(&RunOptions::quick().with_reps(8));
        // Series: [coverage drop, coverage clamp, eval drop, eval clamp].
        let eval_drop = &fig.series[2];
        let eval_clamp = &fig.series[3];
        // Clamping evaluates at least as many workers everywhere.
        for (d, c) in eval_drop.points.iter().zip(&eval_clamp.points) {
            assert!(
                c.1 >= d.1 - 1e-9,
                "clamp should evaluate more workers: {c:?} vs {d:?}"
            );
        }
        // With no spammers both policies cover near the nominal level.
        let cov_drop_clean = fig.series[0].points[0].1;
        assert!(cov_drop_clean > 0.8, "clean coverage {cov_drop_clean:.3}");
    }

    #[test]
    fn kary_m_worker_intervals_are_calibrated() {
        let fig = kary_m_accuracy(&RunOptions::quick().with_reps(10));
        for s in fig.series.iter().skip(1) {
            // At c = 0.9, coverage within a tolerant Monte-Carlo band
            // of nominal — neither overconfident nor uselessly wide.
            let at_09 = s
                .points
                .iter()
                .find(|p| (p.0 - 0.9).abs() < 1e-9)
                .unwrap()
                .1;
            assert!(
                (0.82..=1.0).contains(&at_09),
                "{}: coverage {at_09:.3} at c = 0.9",
                s.label
            );
            // Accuracy grows with the confidence level.
            let at_02 = s
                .points
                .iter()
                .find(|p| (p.0 - 0.2).abs() < 1e-9)
                .unwrap()
                .1;
            assert!(at_02 < at_09, "{}: accuracy not monotone-ish", s.label);
        }
    }

    #[test]
    fn kary_interval_size_saturates_with_crowd_size() {
        let fig = kary_m_sweep(&RunOptions::quick().with_reps(4));
        for s in &fig.series {
            let at_3 = s.points[0].1;
            let at_9 = s.points[3].1;
            assert!(
                at_9 <= at_3,
                "{}: more workers must not widen intervals ({at_3} → {at_9})",
                s.label
            );
            // The documented saturation: nothing close to the √3
            // shrinkage independent triples would give.
            assert!(
                at_9 > at_3 * 0.5,
                "{}: shrinkage should saturate, got {at_3} → {at_9}",
                s.label
            );
        }
    }

    #[test]
    fn interval_size_is_insensitive_to_epsilon() {
        let fig = derivative_epsilon(&RunOptions::quick().with_reps(4));
        let sizes: Vec<f64> = fig.series[0].points.iter().map(|p| p.1).collect();
        let max = sizes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min < 1.5,
            "A3 intervals should be stable across ε (paper fixes 0.01): {sizes:?}"
        );
    }
}
