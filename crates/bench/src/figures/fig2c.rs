//! Figure 2(c) — "Size of interval vs. confidence with and without
//! weight optimization".
//!
//! Setting (§III-D3): `n = 100`, `m = 7`, per-worker densities
//! `dᵢ = (0.5·i + (m − i)) / m` so triples differ in quality; Lemma 5
//! optimal weights vs. uniform weights. The paper reports the
//! optimized intervals at less than half the size around `c = 0.5`.

use crate::{FigureResult, RunOptions, Series, confidence_grid, parallel_reps, rescale_interval};
use crowd_core::{EstimatorConfig, MWorkerEstimator};
use crowd_data::OverlapIndex;
use crowd_sim::{AttemptDesign, BinaryScenario, fig2c_densities};

/// Per-repetition mean interval sizes across the confidence grid, for
/// the (optimized, uniform) weight policies.
type SizePair = (Vec<f64>, Vec<f64>);

/// Runs the experiment.
pub fn run(options: &RunOptions) -> FigureResult {
    let grid = confidence_grid();
    let m = 7usize;
    let mut scenario = BinaryScenario::paper_default(m, 100, 0.8);
    scenario.design = AttemptDesign::PerWorkerDensity(fig2c_densities(m));

    let per_rep: Vec<Option<SizePair>> = parallel_reps(options, |seed| {
        let mut rng = crowd_sim::rng(seed);
        let inst = scenario.generate(&mut rng);
        let optimized = MWorkerEstimator::new(EstimatorConfig::default());
        let uniform = MWorkerEstimator::new(EstimatorConfig::with_uniform_weights());
        // One shared index serves both weight policies (the substrates
        // are bit-identical, so this cannot move a point — see
        // `tests/figure_regression.rs`).
        let index = OverlapIndex::from_matrix(inst.responses());
        let rep_opt = optimized.evaluate_all_indexed(&index, 0.5).ok()?;
        let rep_uni = uniform.evaluate_all_indexed(&index, 0.5).ok()?;
        if rep_opt.assessments.is_empty() || rep_uni.assessments.is_empty() {
            return None;
        }
        let sizes = |report: &crowd_core::WorkerReport| -> Vec<f64> {
            grid.iter()
                .map(|&c| {
                    report
                        .assessments
                        .iter()
                        .map(|a| rescale_interval(&a.interval, c).size())
                        .sum::<f64>()
                        / report.assessments.len() as f64
                })
                .collect()
        };
        Some((sizes(&rep_opt), sizes(&rep_uni)))
    });
    let valid: Vec<&SizePair> = per_rep.iter().flatten().collect();
    let count = valid.len().max(1) as f64;
    let mean = |pick: fn(&SizePair) -> &Vec<f64>| -> Vec<(f64, f64)> {
        grid.iter()
            .enumerate()
            .map(|(i, &c)| (c, valid.iter().map(|r| pick(r)[i]).sum::<f64>() / count))
            .collect()
    };
    FigureResult {
        id: "fig2c",
        title: "Size of interval vs. confidence, optimized vs. uniform weights".into(),
        x_label: "Confidence Level".into(),
        y_label: "Size of Interval".into(),
        series: vec![
            Series::new("With Optimization", mean(|r| &r.0)),
            Series::new("No Optimization", mean(|r| &r.1)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_shrinks_intervals_substantially() {
        let fig = run(&RunOptions::quick().with_reps(25));
        let opt = fig
            .series
            .iter()
            .find(|s| s.label == "With Optimization")
            .unwrap();
        let uni = fig
            .series
            .iter()
            .find(|s| s.label == "No Optimization")
            .unwrap();
        let at = |s: &Series, c: f64| s.points.iter().find(|p| (p.0 - c).abs() < 1e-9).unwrap().1;
        // The paper reports >2x at c = 0.5; require a clear win.
        let ratio = at(uni, 0.5) / at(opt, 0.5);
        assert!(ratio > 1.3, "uniform/optimized ratio only {ratio:.2}");
        // Both grow with confidence.
        assert!(at(opt, 0.95) > at(opt, 0.05));
        assert!(at(uni, 0.95) > at(uni, 0.05));
    }
}
