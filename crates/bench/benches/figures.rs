//! Criterion benches: one per figure of the paper, at smoke-test
//! repetition counts. These exist so `cargo bench` exercises every
//! experiment end-to-end and tracks regressions in the full pipelines;
//! the publication-scale runs live in the `figures` binary.

#![allow(missing_docs)] // criterion_main! generates an undocumented main

use criterion::{Criterion, criterion_group, criterion_main};
use crowd_bench::RunOptions;
use crowd_bench::figures::all_figures;
use std::hint::black_box;

/// Repetitions per figure keeping a bench iteration under ~1 s.
fn bench_reps(id: &str) -> usize {
    match id {
        "fig1" | "fig2a" | "fig2c" => 8,
        "fig2b" | "fig5a" => 3,
        "fig3" | "fig4" | "fig5b" => 2,
        "fig5c" => 1,
        _ => 2,
    }
}

fn figure_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for spec in all_figures() {
        let reps = bench_reps(spec.id);
        let options = RunOptions::default().with_reps(reps);
        group.bench_function(spec.id, |b| {
            b.iter(|| black_box((spec.run)(black_box(&options))));
        });
    }
    group.finish();
}

criterion_group!(benches, figure_benches);
criterion_main!(benches);
