//! Complexity benches validating the paper's stated costs:
//!
//! * Algorithm A1 (3 workers): `O(n)` in the task count,
//! * Algorithm A2 (m workers): `O(m²n + m⁴)`,
//! * Algorithm A3 (k-ary): `O(k⁶ + n·k³)`,
//!
//! plus the design-choice ablations DESIGN.md calls out: Lemma 5
//! optimal vs. uniform weights, greedy vs. sequential pairing, and the
//! new technique vs. the KDD'13 baseline vs. Dawid-Skene EM.

#![allow(missing_docs)] // criterion_main! generates an undocumented main

use criterion::{BenchmarkId, Criterion, criterion_group, criterion_main};
use crowd_core::baselines::{DawidSkene, OldTechnique};
use crowd_core::pairing::PairingStrategy;
use crowd_core::{EstimatorConfig, KaryEstimator, MWorkerEstimator, ThreeWorkerEstimator};
use crowd_data::WorkerId;
use crowd_sim::{BinaryScenario, KaryScenario, rng};
use std::hint::black_box;

fn a1_scaling_in_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_vs_n");
    group.sample_size(20);
    for &n in &[100usize, 1_000, 10_000] {
        let inst = BinaryScenario::paper_default(3, n, 1.0).generate(&mut rng(1));
        let est = ThreeWorkerEstimator::new(EstimatorConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(est.evaluate_triple(black_box(inst.responses()), 0.9)));
        });
    }
    group.finish();
}

fn a2_scaling_in_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_vs_m");
    group.sample_size(10);
    for &m in &[5usize, 9, 17, 33] {
        let inst = BinaryScenario::paper_default(m, 200, 0.9).generate(&mut rng(2));
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                black_box(est.evaluate_worker(black_box(inst.responses()), WorkerId(0), 0.9))
            });
        });
    }
    group.finish();
}

fn a3_scaling_in_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_vs_k");
    group.sample_size(10);
    let workers = [WorkerId(0), WorkerId(1), WorkerId(2)];
    for &k in &[2u16, 3, 4] {
        let inst = KaryScenario::paper_default(k, 500, 1.0).generate(&mut rng(3));
        let est = KaryEstimator::new(EstimatorConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(est.evaluate(black_box(inst.responses()), workers, 0.8)));
        });
    }
    group.finish();
}

fn ablation_weights(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_weights");
    group.sample_size(10);
    let mut scenario = BinaryScenario::paper_default(7, 100, 0.8);
    scenario.design = crowd_sim::AttemptDesign::PerWorkerDensity(crowd_sim::fig2c_densities(7));
    let inst = scenario.generate(&mut rng(4));
    for (label, config) in [
        ("optimal", EstimatorConfig::default()),
        ("uniform", EstimatorConfig::with_uniform_weights()),
    ] {
        let est = MWorkerEstimator::new(config);
        group.bench_function(label, |b| {
            b.iter(|| black_box(est.evaluate_all(black_box(inst.responses()), 0.8)));
        });
    }
    group.finish();
}

fn ablation_pairing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pairing");
    group.sample_size(10);
    let inst = BinaryScenario::paper_default(15, 300, 0.6).generate(&mut rng(5));
    for (label, strategy) in [
        ("greedy", PairingStrategy::GreedyByOverlap),
        ("sequential", PairingStrategy::Sequential),
    ] {
        let est = MWorkerEstimator::new(EstimatorConfig {
            pairing: strategy,
            ..EstimatorConfig::default()
        });
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(est.evaluate_worker(black_box(inst.responses()), WorkerId(0), 0.8))
            });
        });
    }
    group.finish();
}

fn ablation_techniques(c: &mut Criterion) {
    let mut group = c.benchmark_group("techniques");
    group.sample_size(10);
    let inst = BinaryScenario::paper_default(7, 100, 1.0).generate(&mut rng(6));
    let new = MWorkerEstimator::new(EstimatorConfig::default());
    group.bench_function("new_technique", |b| {
        b.iter(|| black_box(new.evaluate_all(black_box(inst.responses()), 0.8)));
    });
    let old = OldTechnique::default();
    group.bench_function("old_technique", |b| {
        b.iter(|| black_box(old.evaluate_all(black_box(inst.responses()), 0.8)));
    });
    let ds = DawidSkene::default();
    group.bench_function("dawid_skene_em", |b| {
        b.iter(|| black_box(ds.run(black_box(inst.responses()))));
    });
    group.finish();
}

fn ablation_incremental(c: &mut Criterion) {
    // The streaming evaluator's pair cache turns the dominant
    // O(m²·n̄) pairwise scans of evaluate_all into O(1) lookups.
    use crowd_core::IncrementalEvaluator;
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    let inst = BinaryScenario::paper_default(25, 500, 0.8).generate(&mut rng(7));
    let batch = MWorkerEstimator::new(EstimatorConfig::default());
    group.bench_function("batch_evaluate_all", |b| {
        b.iter(|| black_box(batch.evaluate_all(black_box(inst.responses()), 0.9)));
    });
    let ev = IncrementalEvaluator::from_matrix(inst.responses(), EstimatorConfig::default());
    group.bench_function("cached_evaluate_all", |b| {
        b.iter(|| black_box(ev.evaluate_all(0.9)));
    });
    group.bench_function("ingest_one_response", |b| {
        // Measure the steady-state per-response ingestion cost on a
        // fresh evaluator (re-created outside the timing loop).
        let responses: Vec<_> = inst.responses().iter().collect();
        let mut fresh = IncrementalEvaluator::new(25, 500, 2, EstimatorConfig::default());
        let mut idx = 0usize;
        b.iter(|| {
            if idx >= responses.len() {
                fresh = IncrementalEvaluator::new(25, 500, 2, EstimatorConfig::default());
                idx = 0;
            }
            fresh
                .ingest(black_box(responses[idx]))
                .expect("stream is duplicate-free");
            idx += 1;
        });
    });
    group.finish();
}

fn parallel_evaluate_all(c: &mut Criterion) {
    // ENT-scale crowd: per-worker evaluations are independent, so
    // wall-clock should fall near-linearly with the thread count.
    let mut group = c.benchmark_group("evaluate_all_threads");
    group.sample_size(10);
    let inst = BinaryScenario::paper_default(40, 400, 0.5).generate(&mut rng(10));
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(est.evaluate_all_parallel(black_box(inst.responses()), 0.9, t)));
        });
    }
    group.finish();
}

fn kary_m_worker_scaling(c: &mut Criterion) {
    // The m-worker k-ary extension: one full A3 pipeline per triple
    // plus O(l²·k⁶) cross-triple covariances; l = ⌊(m−1)/2⌋ stays tiny
    // so the per-triple A3 cost dominates, i.e. roughly linear in m.
    use crowd_core::KaryMWorkerEstimator;
    let mut group = c.benchmark_group("kary_m_worker_vs_m");
    group.sample_size(10);
    for &m in &[3usize, 5, 9] {
        let inst = KaryScenario::paper_default(3, 300, 1.0)
            .with_workers(m)
            .generate(&mut rng(8));
        let est = KaryMWorkerEstimator::new(EstimatorConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                black_box(est.evaluate_worker(black_box(inst.responses()), WorkerId(0), 0.8))
            });
        });
    }
    group.finish();
}

fn bootstrap_vs_delta(c: &mut Criterion) {
    // Why the analytic Theorem 1 chain matters: the bootstrap oracle
    // produces comparable intervals at hundreds of statistic
    // re-evaluations per interval.
    use crowd_core::DegeneracyPolicy;
    use crowd_core::agreement::Triangle;
    use crowd_data::triple_joint_labels;
    use crowd_stats::Bootstrap;
    let mut group = c.benchmark_group("interval_methods");
    group.sample_size(10);
    let inst = BinaryScenario::paper_default(3, 200, 1.0).generate(&mut rng(9));
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    group.bench_function("delta_method", |b| {
        b.iter(|| black_box(est.evaluate_worker(black_box(inst.responses()), WorkerId(0), 0.9)));
    });
    let items = triple_joint_labels(inst.responses(), WorkerId(0), WorkerId(1), WorkerId(2));
    let boot = Bootstrap {
        resamples: 500,
        seed: 17,
    };
    group.bench_function("bootstrap_500", |b| {
        b.iter(|| {
            black_box(boot.percentile_interval(
                black_box(&items),
                |sample| {
                    let n = sample.len() as f64;
                    let count = |f: &dyn Fn(&(_, _, _)) -> bool| {
                        sample.iter().filter(|t| f(t)).count() as f64 / n
                    };
                    let t = Triangle {
                        q_ij: count(&|(a, b, _)| a == b),
                        q_ik: count(&|(a, _, c)| a == c),
                        q_jk: count(&|(_, b, c)| b == c),
                    }
                    .regularized(DegeneracyPolicy::Error)
                    .ok()?;
                    Some(t.error_rate())
                },
                0.9,
            ))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    a1_scaling_in_n,
    a2_scaling_in_m,
    a3_scaling_in_k,
    parallel_evaluate_all,
    kary_m_worker_scaling,
    bootstrap_vs_delta,
    ablation_weights,
    ablation_pairing,
    ablation_techniques,
    ablation_incremental
);
criterion_main!(benches);
