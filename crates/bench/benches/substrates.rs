//! Microbenches of the from-scratch substrates: dense linear algebra,
//! the statistical primitives, and the data-model hot paths the
//! estimators lean on.

#![allow(missing_docs)] // criterion_main! generates an undocumented main

use criterion::{BenchmarkId, Criterion, criterion_group, criterion_main};
use crowd_data::{CountsTensor, WorkerId, pair_stats};
use crowd_linalg::{Lu, Matrix, gauss_jordan_inverse, symmetric_eigen};
use crowd_sim::{BinaryScenario, KaryScenario, rng};
use crowd_stats::{normal_quantile, two_sided_z};
use std::hint::black_box;

fn random_spd(n: usize, seed: u64) -> Matrix {
    use rand::RngExt;
    let mut r = rng(seed);
    let b = Matrix::from_fn(n, n, |_, _| r.random::<f64>() * 2.0 - 1.0);
    let mut g = b.transpose().matmul(&b);
    for i in 0..n {
        let v = g.get(i, i) + n as f64;
        g.set(i, i, v);
    }
    g
}

fn linalg_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    group.sample_size(30);
    for &n in &[4usize, 16, 64] {
        let a = random_spd(n, 7);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |b, _| {
            b.iter(|| black_box(a.matmul(black_box(&a))));
        });
        group.bench_with_input(BenchmarkId::new("lu_inverse", n), &n, |b, _| {
            b.iter(|| black_box(Lu::decompose(black_box(&a)).unwrap().inverse()));
        });
        group.bench_with_input(BenchmarkId::new("gauss_jordan", n), &n, |b, _| {
            b.iter(|| black_box(gauss_jordan_inverse(black_box(&a))));
        });
        group.bench_with_input(BenchmarkId::new("jacobi_eigen", n), &n, |b, _| {
            b.iter(|| black_box(symmetric_eigen(black_box(&a))));
        });
    }
    group.finish();
}

fn stats_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    group.sample_size(50);
    group.bench_function("normal_quantile", |b| {
        b.iter(|| black_box(normal_quantile(black_box(0.975))));
    });
    group.bench_function("two_sided_z", |b| {
        b.iter(|| black_box(two_sided_z(black_box(0.9))));
    });
    group.bench_function("erf", |b| {
        b.iter(|| black_box(crowd_stats::erf(black_box(1.234))));
    });
    group.finish();
}

fn data_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("data");
    group.sample_size(20);
    let inst = BinaryScenario::paper_default(20, 2_000, 0.7).generate(&mut rng(8));
    group.bench_function("pair_stats_2k_tasks", |b| {
        b.iter(|| {
            black_box(pair_stats(
                black_box(inst.responses()),
                WorkerId(0),
                WorkerId(1),
            ))
        });
    });
    group.bench_function("disagreement_rates_20x2k", |b| {
        b.iter(|| black_box(crowd_data::disagreement_rates(black_box(inst.responses()))));
    });
    let kinst = KaryScenario::paper_default(4, 2_000, 0.8).generate(&mut rng(9));
    group.bench_function("counts_tensor_4ary_2k", |b| {
        b.iter(|| {
            black_box(CountsTensor::from_matrix(
                black_box(kinst.responses()),
                WorkerId(0),
                WorkerId(1),
                WorkerId(2),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, linalg_benches, stats_benches, data_benches);
criterion_main!(benches);
