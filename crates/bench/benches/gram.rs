//! Microbench of the [`PeerGram`] kernels: the register-blocked
//! one-pass Gram versus the per-pair `triple_common` loop it
//! replaces, across pairing degree l ∈ {8, 32, 128} and anchor degree
//! n̄ ∈ {1k, 16k} — the axes the Lemma 4 covariance cost
//! `O(l²·n̄/64)` scales over. The per-pair arm runs the trait-default
//! `gram_into` (per-entry popcount passes with per-query row
//! resolution) against the same bitset view, so the two arms do the
//! same integer work and differ only in kernel shape.

#![allow(missing_docs)] // criterion_main! generates an undocumented main

use criterion::{BenchmarkId, Criterion, criterion_group, criterion_main};
use crowd_data::{
    AnchoredOverlap, Label, OverlapIndex, OverlapSource, PeerGram, PeerGramScratch,
    ResponseMatrixBuilder, TaskId, TriplePairGram, WorkerId,
};
use std::hint::black_box;

/// Forwards the popcount queries of a bitset view but keeps the
/// per-pair trait defaults for the gram fills — the pre-PeerGram
/// reference arm.
struct PerPair<A>(A);

impl<A: AnchoredOverlap> AnchoredOverlap for PerPair<A> {
    fn triple_common(&self, a: WorkerId, b: WorkerId) -> usize {
        self.0.triple_common(a, b)
    }

    fn common_among(&self, others: &[WorkerId]) -> usize {
        self.0.common_among(others)
    }
}

/// One anchor of degree `n_tasks` with `peers` peers, each answering
/// ~70% of the anchor's tasks (deterministic LCG).
fn anchored_instance(peers: usize, n_tasks: usize) -> (OverlapIndex, Vec<WorkerId>) {
    let mut b = ResponseMatrixBuilder::new(peers + 1, n_tasks, 2);
    let mut state = 0x9e3779b97f4a7c15u64 ^ (peers as u64) << 32 ^ n_tasks as u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for t in 0..n_tasks as u32 {
        b.push(WorkerId(0), TaskId(t), Label(0)).unwrap();
    }
    for w in 1..=peers as u32 {
        for t in 0..n_tasks as u32 {
            if next() % 10 < 7 {
                b.push(WorkerId(w), TaskId(t), Label((next() % 2) as u16))
                    .unwrap();
            }
        }
    }
    let data = b.build().unwrap();
    let ids: Vec<WorkerId> = (1..=peers as u32).map(WorkerId).collect();
    (OverlapIndex::from_matrix(&data), ids)
}

fn gram_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram");
    group.sample_size(20);
    for &peers in &[8usize, 32, 128] {
        for &n_tasks in &[1_000usize, 16_000] {
            let (index, ids) = anchored_instance(peers, n_tasks);
            let view = index.anchored_for(WorkerId(0), &ids);
            let mut gram = PeerGram::default();
            let mut scratch = PeerGramScratch::default();
            let label = format!("l{peers}_n{n_tasks}");
            group.bench_with_input(BenchmarkId::new("per_pair", &label), &peers, |b, _| {
                let per_pair = PerPair(&view);
                b.iter(|| {
                    per_pair.gram_into(black_box(&ids), &mut gram, &mut scratch);
                    black_box(gram.dim())
                });
            });
            group.bench_with_input(BenchmarkId::new("blocked", &label), &peers, |b, _| {
                b.iter(|| {
                    view.gram_into(black_box(&ids), &mut gram, &mut scratch);
                    black_box(gram.dim())
                });
            });
            // The k-ary n₅ table over l/2 disjoint triples: per-entry
            // 4-way intersections vs combined-row blocked gram.
            let pairs: Vec<(WorkerId, WorkerId)> = ids
                .chunks(2)
                .filter(|c| c.len() == 2)
                .map(|c| (c[0], c[1]))
                .collect();
            let mut n5 = TriplePairGram::default();
            group.bench_with_input(BenchmarkId::new("n5_per_pair", &label), &peers, |b, _| {
                let per_pair = PerPair(&view);
                b.iter(|| {
                    per_pair.pair_gram_into(black_box(&pairs), &mut n5, &mut scratch);
                    black_box(n5.dim())
                });
            });
            group.bench_with_input(BenchmarkId::new("n5_blocked", &label), &peers, |b, _| {
                b.iter(|| {
                    view.pair_gram_into(black_box(&pairs), &mut n5, &mut scratch);
                    black_box(n5.dim())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, gram_benches);
criterion_main!(benches);
