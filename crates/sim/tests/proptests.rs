//! Property-based tests on the workload generator: whatever the
//! scenario parameters, the generated instances must satisfy the shape
//! and model invariants the estimators assume.

use crowd_data::{Label, TaskId, WorkerId};
use crowd_sim::{AttemptDesign, BinaryScenario, KaryScenario, rng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binary instances have the declared shape, in-range labels, and
    /// error rates drawn from the scenario pool.
    #[test]
    fn binary_instance_shape(
        m in 3usize..10,
        n in 10usize..120,
        density in 0.4f64..1.0,
        seed in 0u64..1000,
    ) {
        let scenario = BinaryScenario::paper_default(m, n, density);
        let inst = scenario.generate(&mut rng(seed));
        let data = inst.responses();
        prop_assert_eq!(data.n_workers(), m);
        prop_assert_eq!(data.n_tasks(), n);
        prop_assert_eq!(data.arity(), 2);
        for r in data.iter() {
            prop_assert!(r.label.0 < 2);
        }
        for w in 0..m as u32 {
            let p = inst.true_error_rate(WorkerId(w));
            prop_assert!(
                scenario.error_pool.iter().any(|&x| (x - p).abs() < 1e-12),
                "error rate {p} not in pool"
            );
        }
        // Gold standard is complete and in range.
        prop_assert_eq!(inst.gold().known_count(), n);
        for t in 0..n as u32 {
            prop_assert!(inst.gold().label(TaskId(t)).expect("complete gold").0 < 2);
        }
    }

    /// The realized density concentrates near the requested one.
    #[test]
    fn density_concentrates(density in 0.3f64..1.0, seed in 0u64..500) {
        let scenario = BinaryScenario::paper_default(8, 400, density);
        let inst = scenario.generate(&mut rng(seed));
        let realized = inst.responses().density();
        // 3200 Bernoulli cells: 5 sigma of slack.
        let sigma = (density * (1.0 - density) / 3200.0).sqrt();
        prop_assert!(
            (realized - density).abs() < 5.0 * sigma + 1e-9,
            "requested {density}, realized {realized}"
        );
    }

    /// Density 1 means regular data, every worker on every task.
    #[test]
    fn full_density_is_regular(m in 3usize..8, n in 5usize..60, seed in 0u64..300) {
        let inst = BinaryScenario::paper_default(m, n, 1.0).generate(&mut rng(seed));
        prop_assert!(inst.responses().is_regular());
        prop_assert_eq!(inst.responses().n_responses(), m * n);
    }

    /// Per-worker density designs give each worker its own attempt
    /// rate.
    #[test]
    fn per_worker_density_is_respected(seed in 0u64..300) {
        let mut scenario = BinaryScenario::paper_default(4, 500, 1.0);
        let densities = vec![0.9, 0.7, 0.5, 0.3];
        scenario.design = AttemptDesign::PerWorkerDensity(densities.clone());
        let inst = scenario.generate(&mut rng(seed));
        for (w, &d) in densities.iter().enumerate() {
            let got = inst.responses().worker_task_count(WorkerId(w as u32)) as f64 / 500.0;
            let sigma = (d * (1.0 - d) / 500.0).sqrt();
            prop_assert!(
                (got - d).abs() < 5.0 * sigma + 1e-9,
                "worker {w}: requested {d}, realized {got}"
            );
        }
    }

    /// K-ary instances: true confusion rows are distributions, labels
    /// are in range, and the empirical error rate tracks the model.
    #[test]
    fn kary_instance_model_consistency(
        arity in 2u16..5,
        seed in 0u64..500,
    ) {
        let scenario = KaryScenario::paper_default(arity, 400, 1.0);
        let inst = scenario.generate(&mut rng(seed));
        prop_assert_eq!(inst.responses().arity(), arity);
        for r in inst.responses().iter() {
            prop_assert!(r.label.0 < arity);
        }
        for w in 0..3u32 {
            let truth = inst.true_confusion(WorkerId(w));
            prop_assert_eq!(truth.rows(), arity as usize);
            for row in 0..arity as usize {
                let sum: f64 = truth.row(row).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "row {row} sums to {sum}");
            }
            // Empirical per-worker error rate within Monte-Carlo slack
            // of the model rate.
            let model = inst.true_error_rate(WorkerId(w));
            let empirical = inst
                .gold()
                .worker_error_rate(inst.responses(), WorkerId(w))
                .expect("regular data");
            let sigma = (model * (1.0 - model) / 400.0).sqrt();
            prop_assert!(
                (model - empirical).abs() < 5.0 * sigma + 0.01,
                "worker {w}: model {model}, empirical {empirical}"
            );
        }
    }

    /// Spammer injection: spammers answer uniformly, so their error
    /// rate is (k−1)/k and the non-spammers keep pool rates.
    #[test]
    fn spammers_have_half_error(fraction in 0.0f64..0.6, seed in 0u64..300) {
        let mut scenario = BinaryScenario::paper_default(30, 10, 1.0);
        scenario.spammer_fraction = fraction;
        let inst = scenario.generate(&mut rng(seed));
        for w in 0..30u32 {
            let p = inst.true_error_rate(WorkerId(w));
            let is_pool = scenario.error_pool.iter().any(|&x| (x - p).abs() < 1e-12);
            let is_spammer = (p - 0.5).abs() < 1e-12;
            prop_assert!(is_pool || is_spammer, "unexpected error rate {p}");
        }
    }

    /// Generation is a pure function of the seed.
    #[test]
    fn generation_is_deterministic(seed in 0u64..1000) {
        let scenario = BinaryScenario::paper_default(5, 50, 0.8);
        let a = scenario.generate(&mut rng(seed));
        let b = scenario.generate(&mut rng(seed));
        prop_assert_eq!(a.responses(), b.responses());
        for t in 0..50u32 {
            prop_assert_eq!(a.gold().label(TaskId(t)), b.gold().label(TaskId(t)));
        }
    }

    /// Random-removal designs drop exactly the requested share of a
    /// regular matrix (the Figure 3 IC protocol).
    #[test]
    fn random_removal_hits_target(remove in 0.05f64..0.5, seed in 0u64..300) {
        let mut scenario = BinaryScenario::paper_default(10, 100, 1.0);
        scenario.design = AttemptDesign::RandomRemoval { fraction: remove };
        let inst = scenario.generate(&mut rng(seed));
        let expected_removed = (1000.0 * remove).round() as usize;
        prop_assert_eq!(inst.responses().n_responses(), 1000 - expected_removed);
    }

    /// Collusion: clique members copy the leader verbatim on every
    /// task they attempt, so their pairwise agreement is 1.
    #[test]
    fn colluders_copy_the_leader(seed in 0u64..200) {
        let mut scenario = BinaryScenario::paper_default(8, 60, 1.0);
        scenario.collusion = Some(crowd_sim::Collusion { fraction: 0.3, clique_error: 0.2 });
        let inst = scenario.generate(&mut rng(seed));
        let data = inst.responses();
        // Find a perfectly-agreeing pair (the clique has ≥ 2 members
        // at fraction 0.3 of 8 workers → 2 members).
        let mut found = false;
        for a in 0..8u32 {
            for b in (a + 1)..8u32 {
                let s = crowd_data::pair_stats(data, WorkerId(a), WorkerId(b));
                if s.common_tasks == 60 && s.agreements == 60 {
                    found = true;
                }
            }
        }
        // With clique error 0.2 on 60 tasks, honest pairs agreeing by
        // chance on all 60 tasks is essentially impossible.
        prop_assert!(found, "no clique pair found");
    }
}

/// Non-proptest shape checks that exercise labels on the boundary.
#[test]
fn label_flip_is_involutive() {
    assert_eq!(Label(0).flipped(), Label(1));
    assert_eq!(Label(1).flipped(), Label(0));
    assert_eq!(Label(0).flipped().flipped(), Label(0));
}
