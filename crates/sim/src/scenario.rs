//! Complete experiment scenarios.

use crate::instance::{BinaryInstance, KaryInstance};
use crate::{AttemptDesign, DifficultyModel, WorkerModel, sample_discrete};
use crowd_data::{GoldStandard, Label, ResponseMatrixBuilder, TaskId, WorkerId};
use crowd_linalg::Matrix;
use rand::RngExt;

/// A binary-task experiment description (sections III-A through III-E).
#[derive(Debug, Clone)]
pub struct BinaryScenario {
    /// Number of workers `m`.
    pub n_workers: usize,
    /// Number of tasks `n`.
    pub n_tasks: usize,
    /// Pool of error rates; each non-spammer worker draws one uniformly.
    pub error_pool: Vec<f64>,
    /// Probability that a task's true answer is [`Label::YES`].
    pub positive_rate: f64,
    /// Which (worker, task) cells are attempted.
    pub design: AttemptDesign,
    /// Optional per-task difficulty (violates the iid assumption).
    pub difficulty: DifficultyModel,
    /// Fraction of workers replaced by spammers (error rate 1/2).
    pub spammer_fraction: f64,
    /// Optional colluding clique (violates the §III-A independence
    /// assumption: "This assumption is true as long as workers don't
    /// collude with each other").
    pub collusion: Option<Collusion>,
}

/// A clique of workers who copy a shared answer instead of answering
/// independently. Their pairwise agreement is (near-)perfect, which
/// fools agreement-based evaluation into under-estimating their error
/// rates — the ablation quantifying the paper's independence caveat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Collusion {
    /// Fraction of workers in the clique (at least 2 members).
    pub fraction: f64,
    /// Error rate of the shared clique answer.
    pub clique_error: f64,
}

impl BinaryScenario {
    /// The paper's synthetic default: error pool {0.1, 0.2, 0.3},
    /// balanced truth, iid attempt probability `density`, no difficulty
    /// heterogeneity, no spammers.
    pub fn paper_default(n_workers: usize, n_tasks: usize, density: f64) -> Self {
        Self {
            n_workers,
            n_tasks,
            error_pool: crate::paper_error_pool(),
            positive_rate: 0.5,
            design: if density >= 1.0 {
                AttemptDesign::Regular
            } else {
                AttemptDesign::UniformDensity(density)
            },
            difficulty: DifficultyModel::Uniform,
            spammer_fraction: 0.0,
            collusion: None,
        }
    }

    /// Samples a concrete instance.
    pub fn generate(&self, rng: &mut impl RngExt) -> BinaryInstance {
        assert!(
            self.n_workers >= 1 && self.n_tasks >= 1,
            "scenario must be non-empty"
        );
        // 1. Worker abilities.
        let workers: Vec<WorkerModel> = (0..self.n_workers)
            .map(|_| {
                if self.spammer_fraction > 0.0 && rng.random::<f64>() < self.spammer_fraction {
                    WorkerModel::spammer(2)
                } else {
                    let idx = sample_discrete(&vec![1.0; self.error_pool.len()], rng);
                    WorkerModel::SymmetricError(self.error_pool[idx])
                }
            })
            .collect();
        // Clique membership: the first ⌈fraction·m⌉ worker slots after a
        // shuffle, so ids carry no meaning.
        let colluders: Vec<bool> = match self.collusion {
            None => vec![false; self.n_workers],
            Some(c) => {
                assert!(
                    (0.0..=1.0).contains(&c.fraction),
                    "collusion fraction in [0,1]"
                );
                let count = ((self.n_workers as f64) * c.fraction).round() as usize;
                let count = count.min(self.n_workers);
                let mut slots: Vec<usize> = (0..self.n_workers).collect();
                for i in (1..slots.len()).rev() {
                    let j = rng.random_range(0..=i as u32) as usize;
                    slots.swap(i, j);
                }
                let mut mask = vec![false; self.n_workers];
                for &s in slots.iter().take(count) {
                    mask[s] = true;
                }
                mask
            }
        };
        // 2. True labels and per-task difficulties.
        let truths: Vec<Label> = (0..self.n_tasks)
            .map(|_| {
                if rng.random::<f64>() < self.positive_rate {
                    Label::YES
                } else {
                    Label::NO
                }
            })
            .collect();
        let difficulties: Vec<f64> = (0..self.n_tasks)
            .map(|_| self.difficulty.sample(rng))
            .collect();
        // Shared clique answers, sampled once per task.
        let clique_answers: Vec<Label> = match self.collusion {
            None => Vec::new(),
            Some(c) => truths
                .iter()
                .map(|&truth| {
                    if rng.random::<f64>() < c.clique_error {
                        truth.flipped()
                    } else {
                        truth
                    }
                })
                .collect(),
        };
        // 3. Attempt mask, then responses.
        let mask = self.design.sample_mask(self.n_workers, self.n_tasks, rng);
        let mut builder = ResponseMatrixBuilder::new(self.n_workers, self.n_tasks, 2);
        for (w, worker) in workers.iter().enumerate() {
            for (t, &truth) in truths.iter().enumerate() {
                if mask[w][t] {
                    let label = if colluders[w] {
                        clique_answers[t]
                    } else {
                        worker.respond(truth, 2, difficulties[t], rng)
                    };
                    builder
                        .push(WorkerId(w as u32), TaskId(t as u32), label)
                        .expect("generated ids are in range");
                }
            }
        }
        let responses = builder
            .build()
            .expect("generator emits unique (worker, task) pairs");
        let models: Vec<WorkerModel> = workers
            .into_iter()
            .zip(&colluders)
            .map(|(m, &colludes)| {
                if colludes {
                    // The colluder's *true* per-response error rate is
                    // the clique's.
                    WorkerModel::SymmetricError(
                        self.collusion
                            .expect("colluders imply collusion")
                            .clique_error,
                    )
                } else {
                    m
                }
            })
            .collect();
        BinaryInstance::new(responses, GoldStandard::complete(truths), models)
    }
}

/// A k-ary-task experiment description (section IV).
#[derive(Debug, Clone)]
pub struct KaryScenario {
    /// Number of workers (the paper's k-ary method evaluates triples).
    pub n_workers: usize,
    /// Number of tasks `n`.
    pub n_tasks: usize,
    /// Task arity `k ≥ 2`.
    pub arity: u16,
    /// Pool of response-probability matrices; each worker draws one
    /// uniformly.
    pub matrix_pool: Vec<Matrix>,
    /// Selectivity prior over true labels (sums to 1).
    pub selectivity: Vec<f64>,
    /// Which (worker, task) cells are attempted.
    pub design: AttemptDesign,
    /// Optional per-task difficulty.
    pub difficulty: DifficultyModel,
}

impl KaryScenario {
    /// The paper's §IV-B default: its published matrix pool for the
    /// arity, uniform selectivity, three workers, iid density.
    pub fn paper_default(arity: u16, n_tasks: usize, density: f64) -> Self {
        Self {
            n_workers: 3,
            n_tasks,
            arity,
            matrix_pool: crate::paper_matrices(arity),
            selectivity: vec![1.0 / arity as f64; arity as usize],
            design: if density >= 1.0 {
                AttemptDesign::Regular
            } else {
                AttemptDesign::UniformDensity(density)
            },
            difficulty: DifficultyModel::Uniform,
        }
    }

    /// Overrides the worker count — the paper's A3 evaluates triples,
    /// but the m-worker k-ary extension needs larger crowds.
    pub fn with_workers(mut self, n_workers: usize) -> Self {
        self.n_workers = n_workers;
        self
    }

    /// Samples a concrete instance.
    pub fn generate(&self, rng: &mut impl RngExt) -> KaryInstance {
        assert!(
            self.n_workers >= 1 && self.n_tasks >= 1,
            "scenario must be non-empty"
        );
        assert_eq!(
            self.selectivity.len(),
            self.arity as usize,
            "selectivity length must be k"
        );
        let workers: Vec<WorkerModel> = (0..self.n_workers)
            .map(|_| {
                let idx = sample_discrete(&vec![1.0; self.matrix_pool.len()], rng);
                WorkerModel::Confusion(self.matrix_pool[idx].clone())
            })
            .collect();
        let truths: Vec<Label> = (0..self.n_tasks)
            .map(|_| Label(sample_discrete(&self.selectivity, rng) as u16))
            .collect();
        let difficulties: Vec<f64> = (0..self.n_tasks)
            .map(|_| self.difficulty.sample(rng))
            .collect();
        let mask = self.design.sample_mask(self.n_workers, self.n_tasks, rng);
        let mut builder = ResponseMatrixBuilder::new(self.n_workers, self.n_tasks, self.arity);
        for (w, worker) in workers.iter().enumerate() {
            for (t, &truth) in truths.iter().enumerate() {
                if mask[w][t] {
                    let label = worker.respond(truth, self.arity, difficulties[t], rng);
                    builder
                        .push(WorkerId(w as u32), TaskId(t as u32), label)
                        .expect("generated ids are in range");
                }
            }
        }
        let responses = builder
            .build()
            .expect("generator emits unique (worker, task) pairs");
        KaryInstance::new(
            responses,
            GoldStandard::complete(truths),
            workers,
            self.selectivity.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn binary_default_generates_expected_shape() {
        let mut r = rng(42);
        let inst = BinaryScenario::paper_default(7, 100, 0.8).generate(&mut r);
        let m = inst.responses();
        assert_eq!(m.n_workers(), 7);
        assert_eq!(m.n_tasks(), 100);
        assert_eq!(m.arity(), 2);
        assert!((m.density() - 0.8).abs() < 0.1, "density {}", m.density());
        // Error rates come from the pool.
        for w in 0..7u32 {
            let p = inst.true_error_rate(WorkerId(w));
            assert!(
                [0.1, 0.2, 0.3].iter().any(|&x| (x - p).abs() < 1e-12),
                "p = {p}"
            );
        }
    }

    #[test]
    fn binary_regular_density_one() {
        let mut r = rng(1);
        let inst = BinaryScenario::paper_default(3, 50, 1.0).generate(&mut r);
        assert!(inst.responses().is_regular());
    }

    #[test]
    fn empirical_error_rate_tracks_model() {
        let mut r = rng(7);
        let mut scenario = BinaryScenario::paper_default(1, 5000, 1.0);
        scenario.error_pool = vec![0.2];
        let inst = scenario.generate(&mut r);
        let emp = inst
            .gold()
            .worker_error_rate(inst.responses(), WorkerId(0))
            .unwrap();
        assert!((emp - 0.2).abs() < 0.02, "empirical error {emp}");
    }

    #[test]
    fn spammers_appear_at_requested_rate() {
        let mut r = rng(9);
        let mut scenario = BinaryScenario::paper_default(200, 1, 1.0);
        scenario.spammer_fraction = 0.5;
        let inst = scenario.generate(&mut r);
        let spammers = (0..200u32)
            .filter(|&w| (inst.true_error_rate(WorkerId(w)) - 0.5).abs() < 1e-12)
            .count();
        assert!(
            (spammers as f64 / 200.0 - 0.5).abs() < 0.12,
            "spammers {spammers}"
        );
    }

    #[test]
    fn kary_default_generates_expected_shape() {
        let mut r = rng(3);
        let inst = KaryScenario::paper_default(3, 200, 0.9).generate(&mut r);
        let m = inst.responses();
        assert_eq!(m.n_workers(), 3);
        assert_eq!(m.arity(), 3);
        assert!((m.density() - 0.9).abs() < 0.06);
        // Worker matrices come from the paper's pool.
        let pool = crate::paper_matrices(3);
        for w in 0..3u32 {
            let pm = inst.true_confusion(WorkerId(w));
            assert!(pool.iter().any(|cand| cand.approx_eq(&pm, 1e-12)));
        }
    }

    #[test]
    fn kary_selectivity_shapes_truth_distribution() {
        let mut r = rng(5);
        let mut scenario = KaryScenario::paper_default(2, 6000, 1.0);
        scenario.selectivity = vec![0.7, 0.2, 0.1];
        scenario.arity = 3;
        scenario.matrix_pool = crate::paper_matrices(3);
        let inst = scenario.generate(&mut r);
        let s = inst.gold().selectivity(3);
        assert!((s[0] - 0.7).abs() < 0.03, "selectivity {s:?}");
        assert!((s[2] - 0.1).abs() < 0.03, "selectivity {s:?}");
    }

    #[test]
    fn colluders_copy_each_other() {
        let mut scenario = BinaryScenario::paper_default(10, 200, 1.0);
        scenario.collusion = Some(Collusion {
            fraction: 0.4,
            clique_error: 0.2,
        });
        let inst = scenario.generate(&mut rng(15));
        // Identify the clique by its true error rate (0.2 is also in
        // the pool, so detect via perfect pairwise agreement instead).
        let m = inst.responses();
        let mut clique = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10u32 {
                let s = crowd_data::pair_stats(m, WorkerId(a), WorkerId(b));
                if s.agreements == s.common_tasks && s.common_tasks > 50 {
                    clique.push((a, b));
                }
            }
        }
        // 4 colluders → C(4,2) = 6 perfectly agreeing pairs.
        assert_eq!(
            clique.len(),
            6,
            "expected a 4-clique of copiers: {clique:?}"
        );
        // Colluders' true error rate is the clique error.
        let colluding_workers: std::collections::HashSet<u32> =
            clique.iter().flat_map(|&(a, b)| [a, b]).collect();
        for &w in &colluding_workers {
            assert!((inst.true_error_rate(WorkerId(w)) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn collusion_off_means_independent_errors() {
        let scenario = BinaryScenario::paper_default(6, 400, 1.0);
        assert!(scenario.collusion.is_none());
        let inst = scenario.generate(&mut rng(16));
        // No pair should agree perfectly over 400 tasks with p ≥ 0.1.
        for a in 0..6u32 {
            for b in (a + 1)..6u32 {
                let s = crowd_data::pair_stats(inst.responses(), WorkerId(a), WorkerId(b));
                assert!(
                    s.agreements < s.common_tasks,
                    "suspiciously perfect pair ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let scenario = BinaryScenario::paper_default(5, 40, 0.8);
        let a = scenario.generate(&mut rng(11));
        let b = scenario.generate(&mut rng(11));
        assert_eq!(a.responses(), b.responses());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_scenario_panics() {
        let mut r = rng(1);
        BinaryScenario::paper_default(0, 10, 0.5).generate(&mut r);
    }
}
