//! Worker noise models.

use crate::sample_discrete;
use crowd_data::Label;
use crowd_linalg::Matrix;
use rand::RngExt;

/// How a simulated worker turns a true label into a response.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerModel {
    /// The binary-section model: makes a mistake with probability `p`
    /// independent of the true label. On k-ary tasks a mistake picks
    /// uniformly among the `k − 1` wrong labels.
    SymmetricError(f64),
    /// The k-ary-section model: row `j₁`, column `j₂` is
    /// `P(response = r_j₂ | truth = r_j₁)`.
    Confusion(Matrix),
}

impl WorkerModel {
    /// A spammer: answers uniformly at random regardless of truth,
    /// i.e. error rate `(k−1)/k` (0.5 for binary).
    pub fn spammer(arity: u16) -> Self {
        let k = arity as f64;
        Self::SymmetricError((k - 1.0) / k)
    }

    /// Samples a response to a task with true label `truth`.
    ///
    /// `difficulty ≥ 0` inflates the error probability (see
    /// [`DifficultyModel`]); pass `0.0` for the paper's iid setting.
    pub fn respond(
        &self,
        truth: Label,
        arity: u16,
        difficulty: f64,
        rng: &mut impl RngExt,
    ) -> Label {
        debug_assert!(truth.valid_for_arity(arity));
        match self {
            Self::SymmetricError(p) => {
                let p_eff = (p + difficulty).clamp(0.0, 0.98);
                if rng.random::<f64>() >= p_eff {
                    truth
                } else if arity == 2 {
                    truth.flipped()
                } else {
                    // Uniform among the wrong labels.
                    let offset = rng.random_range(1..arity as u32) as u16;
                    Label((truth.0 + offset) % arity)
                }
            }
            Self::Confusion(m) => {
                debug_assert_eq!(m.rows(), arity as usize, "confusion matrix arity mismatch");
                let row = m.row(truth.index());
                if difficulty <= 0.0 {
                    Label(sample_discrete(row, rng) as u16)
                } else {
                    // Blend toward the uniform distribution: harder
                    // tasks wash out the worker's skill.
                    let w = difficulty.clamp(0.0, 1.0);
                    let k = arity as f64;
                    let blended: Vec<f64> = row.iter().map(|&p| (1.0 - w) * p + w / k).collect();
                    Label(sample_discrete(&blended, rng) as u16)
                }
            }
        }
    }

    /// The worker's overall error rate under a selectivity prior `s`
    /// (probability the response differs from the truth).
    pub fn error_rate(&self, selectivity: &[f64]) -> f64 {
        match self {
            Self::SymmetricError(p) => *p,
            Self::Confusion(m) => {
                let mut err = 0.0;
                for (r, &sr) in selectivity.iter().enumerate() {
                    err += sr * (1.0 - m.get(r, r));
                }
                err
            }
        }
    }

    /// The worker's k×k response-probability matrix.
    pub fn confusion_matrix(&self, arity: u16) -> Matrix {
        match self {
            Self::SymmetricError(p) => {
                let k = arity as usize;
                let off = if k > 1 { p / (k as f64 - 1.0) } else { 0.0 };
                Matrix::from_fn(k, k, |r, c| if r == c { 1.0 - p } else { off })
            }
            Self::Confusion(m) => m.clone(),
        }
    }
}

/// Optional per-task difficulty heterogeneity.
///
/// The paper's model assumes all tasks are equally hard and notes that
/// real data violates this, correlating worker errors (§III-E). The
/// dataset stand-ins use [`DifficultyModel::HalfNormal`] to reproduce
/// that violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DifficultyModel {
    /// All tasks identical (the synthetic-experiment setting).
    Uniform,
    /// Task difficulty `|N(0, sigma²)|` capped at `max`, added to every
    /// worker's error probability on that task.
    HalfNormal {
        /// Scale of the underlying normal.
        sigma: f64,
        /// Hard cap on the difficulty shift.
        max: f64,
    },
}

impl DifficultyModel {
    /// Samples the difficulty shift for one task.
    pub fn sample(&self, rng: &mut impl RngExt) -> f64 {
        match *self {
            Self::Uniform => 0.0,
            Self::HalfNormal { sigma, max } => {
                // Box-Muller half-normal.
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (z.abs() * sigma).min(max)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn perfect_worker_never_errs() {
        let w = WorkerModel::SymmetricError(0.0);
        let mut r = rng(3);
        for _ in 0..100 {
            assert_eq!(w.respond(Label(1), 2, 0.0, &mut r), Label(1));
        }
    }

    #[test]
    fn error_rate_matches_empirical_frequency_binary() {
        let w = WorkerModel::SymmetricError(0.3);
        let mut r = rng(5);
        let n = 20_000;
        let errs = (0..n)
            .filter(|_| w.respond(Label(0), 2, 0.0, &mut r) != Label(0))
            .count();
        let rate = errs as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical {rate}");
    }

    #[test]
    fn kary_symmetric_spreads_errors_uniformly() {
        let w = WorkerModel::SymmetricError(0.4);
        let mut r = rng(9);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[w.respond(Label(2), 4, 0.0, &mut r).index()] += 1;
        }
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.02);
        for wrong in [0usize, 1, 3] {
            let f = counts[wrong] as f64 / n as f64;
            assert!((f - 0.4 / 3.0).abs() < 0.02, "wrong label {wrong}: {f}");
        }
    }

    #[test]
    fn confusion_model_follows_rows() {
        let m = Matrix::from_rows(&[&[0.9, 0.1], &[0.3, 0.7]]);
        let w = WorkerModel::Confusion(m);
        let mut r = rng(11);
        let n = 20_000;
        let wrong_on_1 = (0..n)
            .filter(|_| w.respond(Label(1), 2, 0.0, &mut r) == Label(0))
            .count();
        let f = wrong_on_1 as f64 / n as f64;
        assert!((f - 0.3).abs() < 0.02, "empirical {f}");
    }

    #[test]
    fn error_rate_under_selectivity() {
        let m = Matrix::from_rows(&[&[0.9, 0.1], &[0.3, 0.7]]);
        let w = WorkerModel::Confusion(m);
        // err = 0.25*0.1 + 0.75*0.3 = 0.25.
        assert!((w.error_rate(&[0.25, 0.75]) - 0.25).abs() < 1e-12);
        assert!((WorkerModel::SymmetricError(0.2).error_rate(&[0.5, 0.5]) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn spammer_is_uniform() {
        let s = WorkerModel::spammer(2);
        assert_eq!(s, WorkerModel::SymmetricError(0.5));
        let s4 = WorkerModel::spammer(4);
        assert!((s4.error_rate(&[0.25; 4]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_of_symmetric_model() {
        let w = WorkerModel::SymmetricError(0.3);
        let m = w.confusion_matrix(3);
        assert!((m.get(0, 0) - 0.7).abs() < 1e-15);
        assert!((m.get(0, 1) - 0.15).abs() < 1e-15);
        for r in 0..3 {
            let s: f64 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn difficulty_increases_errors() {
        let w = WorkerModel::SymmetricError(0.1);
        let mut r = rng(13);
        let n = 20_000;
        let hard_errs = (0..n)
            .filter(|_| w.respond(Label(0), 2, 0.3, &mut r) != Label(0))
            .count();
        let f = hard_errs as f64 / n as f64;
        assert!((f - 0.4).abs() < 0.02, "difficulty-shifted rate {f}");
    }

    #[test]
    fn difficulty_sampler_bounds() {
        let d = DifficultyModel::HalfNormal {
            sigma: 0.1,
            max: 0.15,
        };
        let mut r = rng(17);
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((0.0..=0.15).contains(&x));
        }
        assert_eq!(DifficultyModel::Uniform.sample(&mut r), 0.0);
    }

    #[test]
    fn confusion_blend_toward_uniform_on_hard_tasks() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let w = WorkerModel::Confusion(m);
        let mut r = rng(19);
        let n = 20_000;
        let errs = (0..n)
            .filter(|_| w.respond(Label(0), 2, 0.5, &mut r) != Label(0))
            .count();
        let f = errs as f64 / n as f64;
        // Blend 0.5 toward uniform: error prob = 0.5 * 0.5 = 0.25.
        assert!((f - 0.25).abs() < 0.02, "blended error rate {f}");
    }
}
