//! Synthetic crowd workload generator.
//!
//! Every synthetic experiment in the paper draws from the same recipe:
//! pick worker abilities from a pool, pick true task labels from a
//! selectivity prior, decide which (worker, task) cells are attempted
//! (the *attempt design*), then sample responses through each worker's
//! noise model. This crate factors that recipe into composable pieces:
//!
//! * [`WorkerModel`] — symmetric error rate (binary sections) or a
//!   full k×k confusion matrix (k-ary sections),
//! * [`AttemptDesign`] — regular, iid density, per-worker density
//!   (Figure 2c) or random removal (the IC dataset protocol),
//! * [`DifficultyModel`] — optional per-task difficulty shifts that
//!   *violate* the independence assumption, used by the real-dataset
//!   stand-ins,
//! * [`BinaryScenario`] / [`KaryScenario`] — complete experiment
//!   descriptions that [`generate`](BinaryScenario::generate) concrete
//!   [`BinaryInstance`]s / [`KaryInstance`]s from an explicit RNG, so
//!   every experiment is reproducible from a seed.

mod arrival;
mod design;
mod instance;
mod presets;
mod scenario;
mod worker;

pub use arrival::{ArrivalCursor, ArrivalSchedule};
pub use design::AttemptDesign;
pub use instance::{BinaryInstance, KaryInstance};
pub use presets::{fig2c_densities, paper_error_pool, paper_matrices, skewed_activity_densities};
pub use scenario::{BinaryScenario, Collusion, KaryScenario};
pub use worker::{DifficultyModel, WorkerModel};

use rand::SeedableRng;

/// The deterministic RNG used across the workspace's experiments.
pub type Rng = rand::rngs::StdRng;

/// Creates the workspace's standard seeded RNG.
pub fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Samples an index from a discrete distribution given by
/// (not necessarily normalized, non-negative) weights.
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub(crate) fn sample_discrete(weights: &[f64], rng: &mut impl rand::RngExt) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "discrete distribution must have positive mass");
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        use rand::RngExt;
        let mut a = rng(7);
        let mut b = rng(7);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn discrete_sampling_respects_weights() {
        use rand::RngExt as _;
        let mut r = rng(1);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[sample_discrete(&weights, &mut r)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
        let _ = r.random::<f64>();
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_mass_panics() {
        let mut r = rng(1);
        sample_discrete(&[0.0, 0.0], &mut r);
    }
}
