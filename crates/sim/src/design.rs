//! Attempt designs: which (worker, task) cells get a response.

use rand::RngExt;

/// How worker–task assignments are drawn.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptDesign {
    /// Every worker attempts every task (the regular setting of §III-A).
    Regular,
    /// Every worker attempts every task independently with probability
    /// `d` (the non-regular synthetic experiments, §III-D).
    UniformDensity(f64),
    /// Worker `i` attempts each task with probability `densities[i]`
    /// (the weight-optimization experiment of Figure 2c).
    PerWorkerDensity(Vec<f64>),
    /// Start from a regular matrix, then delete a uniform random
    /// `fraction` of all responses (the protocol used on the IC
    /// dataset in §III-E).
    RandomRemoval {
        /// Fraction of responses to remove, in `[0, 1]`.
        fraction: f64,
    },
}

impl AttemptDesign {
    /// Materializes the attempt mask for `n_workers × n_tasks`.
    /// `mask[w][t]` is true when worker `w` attempts task `t`.
    pub fn sample_mask(
        &self,
        n_workers: usize,
        n_tasks: usize,
        rng: &mut impl RngExt,
    ) -> Vec<Vec<bool>> {
        match self {
            Self::Regular => vec![vec![true; n_tasks]; n_workers],
            Self::UniformDensity(d) => {
                assert!((0.0..=1.0).contains(d), "density must be in [0,1], got {d}");
                (0..n_workers)
                    .map(|_| (0..n_tasks).map(|_| rng.random::<f64>() < *d).collect())
                    .collect()
            }
            Self::PerWorkerDensity(ds) => {
                assert_eq!(ds.len(), n_workers, "one density per worker required");
                ds.iter()
                    .map(|&d| {
                        assert!(
                            (0.0..=1.0).contains(&d),
                            "density must be in [0,1], got {d}"
                        );
                        (0..n_tasks).map(|_| rng.random::<f64>() < d).collect()
                    })
                    .collect()
            }
            Self::RandomRemoval { fraction } => {
                assert!(
                    (0.0..=1.0).contains(fraction),
                    "removal fraction must be in [0,1], got {fraction}"
                );
                let mut mask = vec![vec![true; n_tasks]; n_workers];
                let total = n_workers * n_tasks;
                let remove = ((total as f64) * fraction).round() as usize;
                // Partial Fisher-Yates over the flattened cell indices.
                let mut cells: Vec<usize> = (0..total).collect();
                for i in 0..remove.min(total) {
                    let j = rng.random_range(i..total);
                    cells.swap(i, j);
                    let cell = cells[i];
                    mask[cell / n_tasks][cell % n_tasks] = false;
                }
                mask
            }
        }
    }

    /// Expected fraction of filled cells.
    pub fn expected_density(&self, n_workers: usize) -> f64 {
        match self {
            Self::Regular => 1.0,
            Self::UniformDensity(d) => *d,
            Self::PerWorkerDensity(ds) => {
                assert_eq!(ds.len(), n_workers);
                ds.iter().sum::<f64>() / n_workers.max(1) as f64
            }
            Self::RandomRemoval { fraction } => 1.0 - fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn regular_fills_everything() {
        let mut r = rng(1);
        let mask = AttemptDesign::Regular.sample_mask(3, 5, &mut r);
        assert!(mask.iter().flatten().all(|&b| b));
        assert_eq!(AttemptDesign::Regular.expected_density(3), 1.0);
    }

    #[test]
    fn uniform_density_is_close_to_nominal() {
        let mut r = rng(2);
        let mask = AttemptDesign::UniformDensity(0.7).sample_mask(20, 500, &mut r);
        let filled = mask.iter().flatten().filter(|&&b| b).count();
        let density = filled as f64 / (20.0 * 500.0);
        assert!((density - 0.7).abs() < 0.02, "density {density}");
    }

    #[test]
    fn per_worker_density_differs_by_worker() {
        let mut r = rng(3);
        let design = AttemptDesign::PerWorkerDensity(vec![0.2, 0.9]);
        let mask = design.sample_mask(2, 2000, &mut r);
        let d0 = mask[0].iter().filter(|&&b| b).count() as f64 / 2000.0;
        let d1 = mask[1].iter().filter(|&&b| b).count() as f64 / 2000.0;
        assert!((d0 - 0.2).abs() < 0.04, "worker 0 density {d0}");
        assert!((d1 - 0.9).abs() < 0.04, "worker 1 density {d1}");
        assert!((design.expected_density(2) - 0.55).abs() < 1e-12);
    }

    #[test]
    fn random_removal_removes_exact_count() {
        let mut r = rng(4);
        let mask = AttemptDesign::RandomRemoval { fraction: 0.2 }.sample_mask(19, 48, &mut r);
        let filled = mask.iter().flatten().filter(|&&b| b).count();
        let expected = 19 * 48 - ((19.0 * 48.0 * 0.2f64).round() as usize);
        assert_eq!(filled, expected);
    }

    #[test]
    fn removal_of_everything_and_nothing() {
        let mut r = rng(5);
        let none = AttemptDesign::RandomRemoval { fraction: 1.0 }.sample_mask(2, 3, &mut r);
        assert!(none.iter().flatten().all(|&b| !b));
        let all = AttemptDesign::RandomRemoval { fraction: 0.0 }.sample_mask(2, 3, &mut r);
        assert!(all.iter().flatten().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "density must be in")]
    fn invalid_density_panics() {
        let mut r = rng(6);
        AttemptDesign::UniformDensity(1.2).sample_mask(1, 1, &mut r);
    }

    #[test]
    #[should_panic(expected = "one density per worker")]
    fn mismatched_density_vector_panics() {
        let mut r = rng(7);
        AttemptDesign::PerWorkerDensity(vec![0.5]).sample_mask(2, 1, &mut r);
    }
}
