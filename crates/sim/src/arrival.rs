//! Open-loop arrival schedules for load-generating the assessment
//! runtime.
//!
//! A batch [`crate::BinaryScenario`] / [`crate::KaryScenario`] instance
//! fixes *what* the crowd answered; an [`ArrivalSchedule`] fixes
//! *when*: a deterministic shuffle of the instance's responses (the
//! ingest order a service would actually see — workers interleave, they
//! don't arrive row by row) plus Poisson arrival offsets at a target
//! rate. The schedule is **open-loop**: offsets are drawn up front,
//! independent of how fast the system under test drains them, which is
//! what makes measured latency meaningful under load (a closed-loop
//! driver self-throttles and hides queueing delay).
//!
//! Everything is reproducible from the scenario seed: the same
//! `(data, rate, rng seed)` always yields the same order and the same
//! offsets.

use crate::Rng;
use crowd_data::{Response, ResponseMatrix};
use rand::RngExt;

/// A fixed arrival trace: every response of one instance, in arrival
/// order, with a monotone arrival offset (seconds from stream start)
/// for each. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    responses: Vec<Response>,
    offsets: Vec<f64>,
}

impl ArrivalSchedule {
    /// Poisson arrivals: a uniform shuffle of `data`'s responses with
    /// Exp(`rate`) inter-arrival gaps (`rate` in responses/second,
    /// must be positive and finite).
    pub fn poisson(data: &ResponseMatrix, rate: f64, rng: &mut Rng) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive"
        );
        let mut responses: Vec<Response> = data.iter().collect();
        // Fisher–Yates over the response list.
        for i in (1..responses.len()).rev() {
            let j = rng.random_range(0..i + 1);
            responses.swap(i, j);
        }
        let mut offsets = Vec::with_capacity(responses.len());
        let mut t = 0.0f64;
        for _ in 0..responses.len() {
            // Inverse-CDF exponential gap; 1 - u keeps ln's argument
            // in (0, 1].
            let u: f64 = rng.random();
            t += -(1.0 - u).ln() / rate;
            offsets.push(t);
        }
        Self { responses, offsets }
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.responses.len()
    }

    /// True when the instance had no responses.
    pub fn is_empty(&self) -> bool {
        self.responses.is_empty()
    }

    /// The responses in arrival order.
    pub fn responses(&self) -> &[Response] {
        &self.responses
    }

    /// Arrival offset (seconds from stream start) of the `i`-th
    /// response; non-decreasing in `i`.
    pub fn offset(&self, i: usize) -> f64 {
        self.offsets[i]
    }

    /// The whole trace as `(offset_seconds, response)` pairs.
    pub fn arrivals(&self) -> impl Iterator<Item = (f64, Response)> + '_ {
        self.offsets
            .iter()
            .copied()
            .zip(self.responses.iter().copied())
    }

    /// Offset of the last arrival — the trace's nominal duration.
    pub fn duration(&self) -> f64 {
        self.offsets.last().copied().unwrap_or(0.0)
    }

    /// The trace chopped into ingest batches of (at most) `size`
    /// consecutive arrivals, preserving arrival order — the unit a
    /// batching service hands to its router. `size` is clamped to
    /// ≥ 1; the final batch may be short.
    pub fn batches(&self, size: usize) -> impl Iterator<Item = &[Response]> + '_ {
        self.responses.chunks(size.max(1))
    }

    /// An open-loop replay cursor over this trace; see
    /// [`ArrivalCursor`].
    pub fn cursor(&self) -> ArrivalCursor<'_> {
        ArrivalCursor {
            sched: self,
            next: 0,
        }
    }
}

/// Replays an [`ArrivalSchedule`] against a real clock: at each poll
/// the cursor hands over exactly the arrivals whose offsets have come
/// due, preserving order. This is the shape a *wire* driver needs —
/// an in-process driver can afford a fixed chunking
/// ([`ArrivalSchedule::batches`]), but a client pacing requests over
/// a socket must group whatever the schedule says has arrived since
/// the last send, or the measured latency reflects the driver's
/// chunking instead of the offered load.
#[derive(Debug, Clone)]
pub struct ArrivalCursor<'a> {
    sched: &'a ArrivalSchedule,
    next: usize,
}

impl<'a> ArrivalCursor<'a> {
    /// All not-yet-delivered arrivals with `offset <= elapsed`
    /// seconds, capped at `max` (clamped to ≥ 1) per call so one
    /// stalled poll cannot turn into a single giant frame. Advances
    /// the cursor; returns an empty slice when nothing is due yet.
    pub fn due_by(&mut self, elapsed: f64, max: usize) -> &'a [Response] {
        let start = self.next;
        let cap = start.saturating_add(max.max(1)).min(self.sched.len());
        let mut end = start;
        while end < cap && self.sched.offsets[end] <= elapsed {
            end += 1;
        }
        self.next = end;
        &self.sched.responses[start..end]
    }

    /// Offset of the next undelivered arrival (`None` once the trace
    /// is exhausted) — what a driver sleeps until.
    pub fn next_due(&self) -> Option<f64> {
        self.sched.offsets.get(self.next).copied()
    }

    /// Arrivals not yet delivered.
    pub fn remaining(&self) -> usize {
        self.sched.len() - self.next
    }

    /// True once every arrival has been delivered.
    pub fn is_done(&self) -> bool {
        self.next == self.sched.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryScenario, rng};

    fn instance() -> crate::BinaryInstance {
        BinaryScenario::paper_default(6, 50, 0.8).generate(&mut rng(21))
    }

    #[test]
    fn schedule_is_a_permutation_of_the_instance() {
        let inst = instance();
        let sched = ArrivalSchedule::poisson(inst.responses(), 100.0, &mut rng(5));
        assert_eq!(sched.len(), inst.responses().n_responses());
        let mut seen: Vec<(u32, u32)> = sched
            .responses()
            .iter()
            .map(|r| (r.worker.0, r.task.0))
            .collect();
        seen.sort_unstable();
        let mut expect: Vec<(u32, u32)> = inst
            .responses()
            .iter()
            .map(|r| (r.worker.0, r.task.0))
            .collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn offsets_are_monotone_and_rate_scaled() {
        let inst = instance();
        let sched = ArrivalSchedule::poisson(inst.responses(), 200.0, &mut rng(5));
        for i in 1..sched.len() {
            assert!(sched.offset(i) >= sched.offset(i - 1));
        }
        // Mean gap ≈ 1/rate (loose: a few hundred exponential draws).
        let mean = sched.duration() / sched.len() as f64;
        assert!(
            (mean - 1.0 / 200.0).abs() < 2e-3,
            "mean inter-arrival {mean}"
        );
        assert_eq!(sched.arrivals().count(), sched.len());
    }

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        let inst = instance();
        let a = ArrivalSchedule::poisson(inst.responses(), 50.0, &mut rng(9));
        let b = ArrivalSchedule::poisson(inst.responses(), 50.0, &mut rng(9));
        assert_eq!(a.responses(), b.responses());
        for i in 0..a.len() {
            assert_eq!(a.offset(i).to_bits(), b.offset(i).to_bits());
        }
    }

    #[test]
    fn batching_preserves_order_and_covers_everything() {
        let inst = instance();
        let sched = ArrivalSchedule::poisson(inst.responses(), 50.0, &mut rng(3));
        for size in [1usize, 7, 256] {
            let flat: Vec<Response> = sched.batches(size).flatten().copied().collect();
            assert_eq!(flat, sched.responses());
            for batch in sched.batches(size) {
                assert!(!batch.is_empty() && batch.len() <= size);
            }
        }
        // Degenerate batch size clamps instead of panicking.
        assert!(sched.batches(0).next().unwrap().len() == 1);
    }

    #[test]
    fn cursor_replays_the_trace_in_due_time_order() {
        let inst = instance();
        let sched = ArrivalSchedule::poisson(inst.responses(), 50.0, &mut rng(8));
        let mut cur = sched.cursor();
        assert_eq!(cur.remaining(), sched.len());
        assert_eq!(cur.next_due(), Some(sched.offset(0)));
        // Nothing due before the first offset.
        assert!(cur.due_by(sched.offset(0) / 2.0, 1000).is_empty());
        // Poll at coarse time steps; everything delivered exactly
        // once, in order, never before it was due.
        let mut replayed: Vec<Response> = Vec::new();
        let step = sched.duration() / 7.0;
        let mut t = 0.0;
        while !cur.is_done() {
            t += step;
            let start = replayed.len();
            replayed.extend_from_slice(cur.due_by(t, usize::MAX));
            for (k, _) in replayed[start..].iter().enumerate() {
                assert!(sched.offset(start + k) <= t);
            }
        }
        assert_eq!(replayed, sched.responses());
        assert_eq!(cur.next_due(), None);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn cursor_caps_a_stalled_poll() {
        let inst = instance();
        let sched = ArrivalSchedule::poisson(inst.responses(), 50.0, &mut rng(8));
        let mut cur = sched.cursor();
        // A poll far past the end delivers at most `max` per call.
        let late = sched.duration() + 1.0;
        let first = cur.due_by(late, 7).to_vec();
        assert_eq!(first.len(), 7);
        assert_eq!(first, sched.responses()[..7]);
        assert_eq!(cur.remaining(), sched.len() - 7);
        // max is clamped to ≥ 1 so a zero cap cannot stall forever.
        assert_eq!(cur.due_by(late, 0).len(), 1);
    }
}
