//! Open-loop arrival schedules for load-generating the assessment
//! runtime.
//!
//! A batch [`crate::BinaryScenario`] / [`crate::KaryScenario`] instance
//! fixes *what* the crowd answered; an [`ArrivalSchedule`] fixes
//! *when*: a deterministic shuffle of the instance's responses (the
//! ingest order a service would actually see — workers interleave, they
//! don't arrive row by row) plus Poisson arrival offsets at a target
//! rate. The schedule is **open-loop**: offsets are drawn up front,
//! independent of how fast the system under test drains them, which is
//! what makes measured latency meaningful under load (a closed-loop
//! driver self-throttles and hides queueing delay).
//!
//! Everything is reproducible from the scenario seed: the same
//! `(data, rate, rng seed)` always yields the same order and the same
//! offsets.

use crate::Rng;
use crowd_data::{Response, ResponseMatrix};
use rand::RngExt;

/// A fixed arrival trace: every response of one instance, in arrival
/// order, with a monotone arrival offset (seconds from stream start)
/// for each. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    responses: Vec<Response>,
    offsets: Vec<f64>,
}

impl ArrivalSchedule {
    /// Poisson arrivals: a uniform shuffle of `data`'s responses with
    /// Exp(`rate`) inter-arrival gaps (`rate` in responses/second,
    /// must be positive and finite).
    pub fn poisson(data: &ResponseMatrix, rate: f64, rng: &mut Rng) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive"
        );
        let mut responses: Vec<Response> = data.iter().collect();
        // Fisher–Yates over the response list.
        for i in (1..responses.len()).rev() {
            let j = rng.random_range(0..i + 1);
            responses.swap(i, j);
        }
        let mut offsets = Vec::with_capacity(responses.len());
        let mut t = 0.0f64;
        for _ in 0..responses.len() {
            // Inverse-CDF exponential gap; 1 - u keeps ln's argument
            // in (0, 1].
            let u: f64 = rng.random();
            t += -(1.0 - u).ln() / rate;
            offsets.push(t);
        }
        Self { responses, offsets }
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.responses.len()
    }

    /// True when the instance had no responses.
    pub fn is_empty(&self) -> bool {
        self.responses.is_empty()
    }

    /// The responses in arrival order.
    pub fn responses(&self) -> &[Response] {
        &self.responses
    }

    /// Arrival offset (seconds from stream start) of the `i`-th
    /// response; non-decreasing in `i`.
    pub fn offset(&self, i: usize) -> f64 {
        self.offsets[i]
    }

    /// The whole trace as `(offset_seconds, response)` pairs.
    pub fn arrivals(&self) -> impl Iterator<Item = (f64, Response)> + '_ {
        self.offsets
            .iter()
            .copied()
            .zip(self.responses.iter().copied())
    }

    /// Offset of the last arrival — the trace's nominal duration.
    pub fn duration(&self) -> f64 {
        self.offsets.last().copied().unwrap_or(0.0)
    }

    /// The trace chopped into ingest batches of (at most) `size`
    /// consecutive arrivals, preserving arrival order — the unit a
    /// batching service hands to its router. `size` is clamped to
    /// ≥ 1; the final batch may be short.
    pub fn batches(&self, size: usize) -> impl Iterator<Item = &[Response]> + '_ {
        self.responses.chunks(size.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryScenario, rng};

    fn instance() -> crate::BinaryInstance {
        BinaryScenario::paper_default(6, 50, 0.8).generate(&mut rng(21))
    }

    #[test]
    fn schedule_is_a_permutation_of_the_instance() {
        let inst = instance();
        let sched = ArrivalSchedule::poisson(inst.responses(), 100.0, &mut rng(5));
        assert_eq!(sched.len(), inst.responses().n_responses());
        let mut seen: Vec<(u32, u32)> = sched
            .responses()
            .iter()
            .map(|r| (r.worker.0, r.task.0))
            .collect();
        seen.sort_unstable();
        let mut expect: Vec<(u32, u32)> = inst
            .responses()
            .iter()
            .map(|r| (r.worker.0, r.task.0))
            .collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn offsets_are_monotone_and_rate_scaled() {
        let inst = instance();
        let sched = ArrivalSchedule::poisson(inst.responses(), 200.0, &mut rng(5));
        for i in 1..sched.len() {
            assert!(sched.offset(i) >= sched.offset(i - 1));
        }
        // Mean gap ≈ 1/rate (loose: a few hundred exponential draws).
        let mean = sched.duration() / sched.len() as f64;
        assert!(
            (mean - 1.0 / 200.0).abs() < 2e-3,
            "mean inter-arrival {mean}"
        );
        assert_eq!(sched.arrivals().count(), sched.len());
    }

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        let inst = instance();
        let a = ArrivalSchedule::poisson(inst.responses(), 50.0, &mut rng(9));
        let b = ArrivalSchedule::poisson(inst.responses(), 50.0, &mut rng(9));
        assert_eq!(a.responses(), b.responses());
        for i in 0..a.len() {
            assert_eq!(a.offset(i).to_bits(), b.offset(i).to_bits());
        }
    }

    #[test]
    fn batching_preserves_order_and_covers_everything() {
        let inst = instance();
        let sched = ArrivalSchedule::poisson(inst.responses(), 50.0, &mut rng(3));
        for size in [1usize, 7, 256] {
            let flat: Vec<Response> = sched.batches(size).flatten().copied().collect();
            assert_eq!(flat, sched.responses());
            for batch in sched.batches(size) {
                assert!(!batch.is_empty() && batch.len() <= size);
            }
        }
        // Degenerate batch size clamps instead of panicking.
        assert!(sched.batches(0).next().unwrap().len() == 1);
    }
}
