//! The paper's published experiment parameters.

use crowd_linalg::Matrix;

/// The worker error-rate pool of the binary experiments: each worker's
/// `p` is drawn uniformly from {0.1, 0.2, 0.3} (§III-D).
pub fn paper_error_pool() -> Vec<f64> {
    vec![0.1, 0.2, 0.3]
}

/// The per-worker densities of the Figure 2(c) weight-optimization
/// experiment: worker `i` (1-based) attempts each task with probability
/// `(0.5·i + (m − i)) / m`, so densities slope from ≈1 down to 0.5 and
/// triples differ in quality.
pub fn fig2c_densities(m: usize) -> Vec<f64> {
    (1..=m)
        .map(|i| (0.5 * i as f64 + (m - i) as f64) / m as f64)
        .collect()
}

/// Zipf-like per-worker activity densities: worker `i` (0-based)
/// attempts each task with probability
/// `floor + (1 − floor) / (i + 1)^exponent`, clamped to `[0, 1]`.
///
/// A handful of head workers answer almost everything while the long
/// tail hovers near `floor` — the skewed-arrival regime the dirty-set
/// benchmarks use, where a late burst from a few active workers
/// dirties a small neighbourhood instead of the whole fleet. Pass the
/// result to [`crate::AttemptDesign::PerWorkerDensity`].
///
/// # Panics
/// Panics unless `0 ≤ floor ≤ 1` and `exponent ≥ 0`.
pub fn skewed_activity_densities(m: usize, exponent: f64, floor: f64) -> Vec<f64> {
    assert!(
        (0.0..=1.0).contains(&floor),
        "floor must be a probability (got {floor})"
    );
    assert!(
        exponent >= 0.0,
        "exponent must be non-negative (got {exponent})"
    );
    (0..m)
        .map(|i| (floor + (1.0 - floor) / ((i + 1) as f64).powf(exponent)).clamp(0.0, 1.0))
        .collect()
}

/// The paper's §IV-B response-probability matrix pools for arity 2, 3
/// and 4. Each simulated worker is assigned one matrix from the pool
/// uniformly at random.
///
/// # Panics
/// Panics for arities other than 2, 3, 4.
pub fn paper_matrices(arity: u16) -> Vec<Matrix> {
    match arity {
        2 => vec![
            Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]),
            Matrix::from_rows(&[&[0.8, 0.2], &[0.1, 0.9]]),
            Matrix::from_rows(&[&[0.9, 0.1], &[0.1, 0.9]]),
        ],
        3 => vec![
            Matrix::from_rows(&[&[0.6, 0.3, 0.1], &[0.1, 0.6, 0.3], &[0.3, 0.1, 0.6]]),
            Matrix::from_rows(&[&[0.8, 0.1, 0.1], &[0.2, 0.8, 0.0], &[0.0, 0.2, 0.8]]),
            Matrix::from_rows(&[&[0.9, 0.0, 0.1], &[0.1, 0.9, 0.0], &[0.0, 0.2, 0.8]]),
        ],
        4 => vec![
            Matrix::from_rows(&[
                &[0.7, 0.1, 0.1, 0.1],
                &[0.1, 0.6, 0.2, 0.1],
                &[0.0, 0.1, 0.8, 0.1],
                &[0.2, 0.1, 0.0, 0.7],
            ]),
            Matrix::from_rows(&[
                &[0.8, 0.1, 0.0, 0.1],
                &[0.1, 0.8, 0.0, 0.1],
                &[0.1, 0.1, 0.7, 0.1],
                &[0.0, 0.1, 0.2, 0.7],
            ]),
            Matrix::from_rows(&[
                &[0.6, 0.1, 0.2, 0.1],
                &[0.0, 0.7, 0.1, 0.2],
                &[0.1, 0.0, 0.9, 0.0],
                &[0.2, 0.0, 0.0, 0.8],
            ]),
        ],
        other => panic!("the paper publishes matrices only for arity 2, 3, 4 (got {other})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_pool_matches_paper() {
        assert_eq!(paper_error_pool(), vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn all_matrices_are_row_stochastic_and_diagonally_dominant() {
        for arity in [2u16, 3, 4] {
            for (mi, m) in paper_matrices(arity).iter().enumerate() {
                assert_eq!(m.rows(), arity as usize);
                for r in 0..m.rows() {
                    let sum: f64 = m.row(r).iter().sum();
                    assert!(
                        (sum - 1.0).abs() < 1e-12,
                        "arity {arity} matrix {mi} row {r} sums to {sum}"
                    );
                    // The paper assumes P[j,j] > P[j,j'] for j' != j.
                    let diag = m.get(r, r);
                    for c in 0..m.cols() {
                        if c != r {
                            assert!(
                                diag > m.get(r, c),
                                "arity {arity} matrix {mi}: row {r} not diagonally dominant"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fig2c_density_endpoints() {
        let d = fig2c_densities(7);
        assert_eq!(d.len(), 7);
        // i = 1: (0.5 + 6)/7 ≈ 0.9286; i = m: 0.5·m/m = 0.5.
        assert!((d[0] - 6.5 / 7.0).abs() < 1e-12);
        assert!((d[6] - 0.5).abs() < 1e-12);
        // Strictly decreasing.
        assert!(d.windows(2).all(|w| w[0] > w[1]));
        // All valid probabilities.
        assert!(d.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "arity 2, 3, 4")]
    fn unsupported_arity_panics() {
        paper_matrices(5);
    }

    #[test]
    fn skewed_densities_have_hot_head_and_quiet_tail() {
        let d = skewed_activity_densities(1000, 1.0, 0.15);
        assert_eq!(d.len(), 1000);
        // Worker 0 answers everything; the tail settles just above the floor.
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!(
            d[999] < 0.16,
            "tail density {} should hug the floor",
            d[999]
        );
        // Strictly decreasing, all valid probabilities.
        assert!(d.windows(2).all(|w| w[0] > w[1]));
        assert!(d.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // The head dominates: worker 0 is ≥ 6× as active as the median.
        assert!(d[0] / d[500] > 6.0);
    }

    #[test]
    fn skewed_densities_zero_exponent_is_uniform() {
        let d = skewed_activity_densities(5, 0.0, 0.3);
        assert!(d.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn skewed_densities_reject_bad_floor() {
        skewed_activity_densities(4, 1.0, 1.5);
    }
}
