//! Generated experiment instances: responses plus hidden ground truth.

use crate::WorkerModel;
use crowd_data::{GoldStandard, ResponseMatrix, WorkerId};
use crowd_linalg::Matrix;

/// A sampled binary experiment: the observable response matrix plus the
/// hidden truth (task labels and worker abilities) used for scoring.
#[derive(Debug, Clone)]
pub struct BinaryInstance {
    responses: ResponseMatrix,
    gold: GoldStandard,
    workers: Vec<WorkerModel>,
}

impl BinaryInstance {
    pub(crate) fn new(
        responses: ResponseMatrix,
        gold: GoldStandard,
        workers: Vec<WorkerModel>,
    ) -> Self {
        Self {
            responses,
            gold,
            workers,
        }
    }

    /// The observable worker responses.
    pub fn responses(&self) -> &ResponseMatrix {
        &self.responses
    }

    /// The hidden true labels.
    pub fn gold(&self) -> &GoldStandard {
        &self.gold
    }

    /// The true (model) error rate of a worker — the quantity the
    /// estimators' confidence intervals must cover.
    pub fn true_error_rate(&self, worker: WorkerId) -> f64 {
        self.workers[worker.index()].error_rate(&[0.5, 0.5])
    }

    /// The worker noise models (for ablation tooling).
    pub fn worker_models(&self) -> &[WorkerModel] {
        &self.workers
    }
}

/// A sampled k-ary experiment.
#[derive(Debug, Clone)]
pub struct KaryInstance {
    responses: ResponseMatrix,
    gold: GoldStandard,
    workers: Vec<WorkerModel>,
    selectivity: Vec<f64>,
}

impl KaryInstance {
    pub(crate) fn new(
        responses: ResponseMatrix,
        gold: GoldStandard,
        workers: Vec<WorkerModel>,
        selectivity: Vec<f64>,
    ) -> Self {
        Self {
            responses,
            gold,
            workers,
            selectivity,
        }
    }

    /// The observable worker responses.
    pub fn responses(&self) -> &ResponseMatrix {
        &self.responses
    }

    /// The hidden true labels.
    pub fn gold(&self) -> &GoldStandard {
        &self.gold
    }

    /// The true k×k response-probability matrix of a worker.
    pub fn true_confusion(&self, worker: WorkerId) -> Matrix {
        self.workers[worker.index()].confusion_matrix(self.responses.arity())
    }

    /// The true selectivity prior.
    pub fn selectivity(&self) -> &[f64] {
        &self.selectivity
    }

    /// The true overall error rate of a worker under the scenario's
    /// selectivity.
    pub fn true_error_rate(&self, worker: WorkerId) -> f64 {
        self.workers[worker.index()].error_rate(&self.selectivity)
    }

    /// Returns a copy of the instance in which `worker` follows a
    /// different noise model: their responses are regenerated from the
    /// same hidden truths on the same attempted tasks. Used to plant a
    /// known outlier (a biased or adversarial worker) into an otherwise
    /// healthy crowd.
    pub fn with_worker_model(
        mut self,
        worker: WorkerId,
        model: WorkerModel,
        rng: &mut impl rand::RngExt,
    ) -> Self {
        let arity = self.responses.arity();
        let attempted: Vec<u32> = self
            .responses
            .worker_responses(worker)
            .iter()
            .map(|&(t, _)| t)
            .collect();
        let mut builder = crowd_data::ResponseMatrixBuilder::new(
            self.responses.n_workers(),
            self.responses.n_tasks(),
            arity,
        );
        for r in self.responses.iter() {
            if r.worker != worker {
                builder
                    .push(r.worker, r.task, r.label)
                    .expect("existing ids are valid");
            }
        }
        for t in attempted {
            let task = crowd_data::TaskId(t);
            let truth = self.gold.label(task).expect("generated gold is complete");
            let label = model.respond(truth, arity, 0.0, rng);
            builder
                .push(worker, task, label)
                .expect("replayed ids are valid");
        }
        self.responses = builder.build().expect("replayed responses are unique");
        self.workers[worker.index()] = model;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryScenario, KaryScenario, rng};

    #[test]
    fn binary_instance_exposes_truth() {
        let inst = BinaryScenario::paper_default(3, 10, 1.0).generate(&mut rng(2));
        assert_eq!(inst.worker_models().len(), 3);
        assert_eq!(inst.gold().n_tasks(), 10);
        let p = inst.true_error_rate(WorkerId(0));
        assert!(p > 0.0 && p < 0.5);
    }

    #[test]
    fn kary_instance_exposes_truth() {
        let inst = KaryScenario::paper_default(4, 20, 1.0).generate(&mut rng(2));
        let m = inst.true_confusion(WorkerId(1));
        assert_eq!(m.rows(), 4);
        assert_eq!(inst.selectivity().len(), 4);
        let p = inst.true_error_rate(WorkerId(1));
        assert!(p > 0.0 && p < 0.5, "error rate {p}");
    }

    #[test]
    fn with_worker_model_replaces_one_worker() {
        let mut r = rng(5);
        let inst = KaryScenario::paper_default(2, 200, 0.8).generate(&mut r);
        let before = inst.responses().clone();
        let attempted_before: Vec<u32> = before
            .worker_responses(WorkerId(1))
            .iter()
            .map(|&(t, _)| t)
            .collect();
        // A worker that always answers label 0.
        let degenerate = WorkerModel::Confusion(Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]));
        let inst = inst.with_worker_model(WorkerId(1), degenerate, &mut r);
        // Same attempted tasks, all answers now 0.
        let after = inst.responses().worker_responses(WorkerId(1));
        let attempted_after: Vec<u32> = after.iter().map(|&(t, _)| t).collect();
        assert_eq!(attempted_before, attempted_after);
        assert!(after.iter().all(|&(_, l)| l == crowd_data::Label(0)));
        // Other workers untouched.
        assert_eq!(
            before.worker_responses(WorkerId(0)),
            inst.responses().worker_responses(WorkerId(0))
        );
        // Truth accessor reflects the new model.
        assert_eq!(inst.true_confusion(WorkerId(1)).get(1, 0), 1.0);
    }
}
