//! Differential tests: the sharded pipeline must reproduce the
//! single-process `evaluate_all_indexed_parallel` **bit for bit** —
//! across shard counts, estimator families (binary + k-ary),
//! configurations, and the edge cases sharding introduces (empty
//! shards, silent workers, anchors whose peers all live in another
//! shard).

use crowd_core::pairing::reachable_peers;
use crowd_core::{
    EstimatorConfig, KaryMWorkerEstimator, KaryWorkerReport, MWorkerEstimator, WorkerReport,
};
use crowd_data::{
    Label, OverlapIndex, PairBackend, ResponseMatrix, ResponseMatrixBuilder, TaskId, WorkerId,
};
use crowd_shard::{ShardIndex, ShardPlan, ShardRunner, merge_reports};
use crowd_sim::{BinaryScenario, KaryScenario, rng};

/// Bit-exact binary-report comparison.
fn assert_reports_identical(sharded: &WorkerReport, unsharded: &WorkerReport, label: &str) {
    assert_eq!(
        sharded.assessments.len(),
        unsharded.assessments.len(),
        "{label}: assessment count"
    );
    for (s, u) in sharded.assessments.iter().zip(&unsharded.assessments) {
        assert_eq!(s.worker, u.worker, "{label}");
        assert_eq!(
            s.interval.center.to_bits(),
            u.interval.center.to_bits(),
            "{label}: center of {:?}",
            s.worker
        );
        assert_eq!(
            s.interval.half_width.to_bits(),
            u.interval.half_width.to_bits(),
            "{label}: width of {:?}",
            s.worker
        );
        assert_eq!(s.triples_used, u.triples_used, "{label}: {:?}", s.worker);
        assert_eq!(s.weights_fell_back, u.weights_fell_back, "{label}");
    }
    let s_fail: Vec<WorkerId> = sharded.failures.iter().map(|f| f.0).collect();
    let u_fail: Vec<WorkerId> = unsharded.failures.iter().map(|f| f.0).collect();
    assert_eq!(s_fail, u_fail, "{label}: failure rows");
}

/// Bit-exact k-ary-report comparison.
fn assert_kary_identical(sharded: &KaryWorkerReport, unsharded: &KaryWorkerReport, label: &str) {
    assert_eq!(
        sharded.assessments.len(),
        unsharded.assessments.len(),
        "{label}: assessment count"
    );
    for (s, u) in sharded.assessments.iter().zip(&unsharded.assessments) {
        assert_eq!(s.worker, u.worker, "{label}");
        assert_eq!(s.triples_used, u.triples_used, "{label}: {:?}", s.worker);
        for (a, b) in s.intervals.iter().zip(&u.intervals) {
            assert_eq!(
                a.center.to_bits(),
                b.center.to_bits(),
                "{label}: {:?}",
                s.worker
            );
            assert_eq!(
                a.half_width.to_bits(),
                b.half_width.to_bits(),
                "{label}: {:?}",
                s.worker
            );
        }
    }
    let s_fail: Vec<WorkerId> = sharded.failures.iter().map(|f| f.0).collect();
    let u_fail: Vec<WorkerId> = unsharded.failures.iter().map(|f| f.0).collect();
    assert_eq!(s_fail, u_fail, "{label}: failure rows");
}

fn check_binary(data: &ResponseMatrix, config: EstimatorConfig, label: &str) {
    let index = OverlapIndex::from_matrix(data);
    let est = MWorkerEstimator::new(config.clone());
    let unsharded = est
        .evaluate_all_indexed_parallel(&index, 0.9, 2)
        .expect("m >= 3");
    for n_shards in [1usize, 2, 7] {
        let plan = ShardPlan::build(data, n_shards);
        let runner = ShardRunner::new(config.clone()).with_threads(2);
        let sharded = runner.run(data, &plan, 0.9).expect("m >= 3");
        assert_reports_identical(&sharded, &unsharded, &format!("{label}, {n_shards} shards"));
    }
}

fn check_kary(data: &ResponseMatrix, config: EstimatorConfig, label: &str) {
    let index = OverlapIndex::from_matrix(data);
    let est = KaryMWorkerEstimator::new(config.clone());
    let unsharded = est
        .evaluate_all_indexed_parallel(&index, 0.9, 2)
        .expect("m >= 3");
    for n_shards in [1usize, 2, 7] {
        let plan = ShardPlan::build(data, n_shards);
        let runner = ShardRunner::new(config.clone()).with_threads(2);
        let sharded = runner.run_kary(data, &plan, 0.9).expect("m >= 3");
        assert_kary_identical(&sharded, &unsharded, &format!("{label}, {n_shards} shards"));
    }
}

#[test]
fn binary_sharded_equals_unsharded() {
    let inst = BinaryScenario::paper_default(11, 150, 0.7).generate(&mut rng(601));
    check_binary(
        inst.responses(),
        EstimatorConfig::default(),
        "paper default",
    );
    check_binary(inst.responses(), EstimatorConfig::fleet(2), "fleet cap 2");
}

#[test]
fn kary_sharded_equals_unsharded() {
    let inst = KaryScenario::paper_default(3, 200, 0.9)
        .with_workers(8)
        .generate(&mut rng(607));
    check_kary(
        inst.responses(),
        EstimatorConfig::default(),
        "k-ary default",
    );
    check_kary(
        inst.responses(),
        EstimatorConfig::fleet(2),
        "k-ary fleet cap",
    );
}

#[test]
fn sparse_backed_full_index_is_bit_identical_to_dense() {
    // The opt-in sparse backend on an *unscoped* index: same report,
    // pairing candidates served by the co-occurrence fast path.
    let inst = BinaryScenario::paper_default(9, 120, 0.6).generate(&mut rng(613));
    let data = inst.responses();
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let dense = est
        .evaluate_all_indexed(&OverlapIndex::from_matrix(data), 0.9)
        .unwrap();
    let sparse = est
        .evaluate_all_indexed(
            &OverlapIndex::from_matrix_with(data, PairBackend::Sparse),
            0.9,
        )
        .unwrap();
    assert_reports_identical(&sparse, &dense, "sparse backend");
}

#[test]
fn more_shards_than_workers_handles_empty_shards() {
    // m = 5 with 7 shards: two trailing shards have no anchors and an
    // empty closure; their reports are empty and merging still matches.
    let inst = BinaryScenario::paper_default(5, 60, 0.9).generate(&mut rng(617));
    check_binary(inst.responses(), EstimatorConfig::default(), "empty shards");
    let plan = ShardPlan::build(inst.responses(), 7);
    let runner = ShardRunner::new(EstimatorConfig::default());
    let empty_spec = plan.shards().last().unwrap();
    assert!(empty_spec.is_empty());
    let report = runner
        .evaluate_shard(&ShardIndex::build(inst.responses(), empty_spec), 0.9)
        .unwrap();
    assert!(report.assessments.is_empty() && report.failures.is_empty());
}

#[test]
fn silent_worker_fails_identically_in_both_pipelines() {
    // Worker 3 never responds; worker 6 answers a task nobody shares.
    let mut b = ResponseMatrixBuilder::new(7, 31, 2);
    for w in [0u32, 1, 2, 4, 5] {
        for t in 0..30u32 {
            b.push(WorkerId(w), TaskId(t), Label(((w + t) % 2) as u16))
                .unwrap();
        }
    }
    b.push(WorkerId(6), TaskId(30), Label(0)).unwrap();
    let data = b.build().unwrap();
    check_binary(&data, EstimatorConfig::default(), "silent + isolated");
}

#[test]
fn anchor_with_all_peers_in_another_shard() {
    // Workers 2 and 3 work only on community-A tasks (peers 0, 1 —
    // both anchored by shard 0 under a 3-shard plan), workers 4 and 5
    // on community B. Shard 1 evaluates anchors {2, 3} whose peers all
    // live outside its anchor range — the closure must pull them in.
    let mut b = ResponseMatrixBuilder::new(6, 20, 2);
    for w in 0..4u32 {
        for t in 0..10u32 {
            b.push(WorkerId(w), TaskId(t), Label(((w * t) % 2) as u16))
                .unwrap();
        }
    }
    for w in 4..6u32 {
        for t in 10..20u32 {
            b.push(WorkerId(w), TaskId(t), Label((w % 2) as u16))
                .unwrap();
        }
    }
    let data = b.build().unwrap();
    let plan = ShardPlan::build(&data, 3);
    assert_eq!(plan.shards()[1].anchors, [WorkerId(2), WorkerId(3)]);
    let closure: Vec<u32> = plan.shards()[1].closure.iter().map(|w| w.0).collect();
    assert_eq!(closure, vec![0, 1, 2, 3], "peers 0, 1 pulled across shards");
    check_binary(&data, EstimatorConfig::default(), "cross-shard peers");
}

#[test]
fn plan_closure_covers_reachable_peers() {
    // The planner's task-harvest closure must be exactly the pairing
    // oracle: anchors ∪ reachable_peers(anchor) over the full index.
    let inst = BinaryScenario::paper_default(10, 80, 0.4).generate(&mut rng(619));
    let data = inst.responses();
    let index = OverlapIndex::from_matrix(data);
    for n_shards in [2usize, 3, 5] {
        let plan = ShardPlan::build(data, n_shards);
        for spec in plan.shards() {
            let mut expected: Vec<WorkerId> = spec.anchor_ids().collect();
            for anchor in spec.anchor_ids() {
                expected.extend(reachable_peers(&index, anchor));
            }
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(spec.closure, expected, "{n_shards} shards");
        }
    }
}

#[test]
fn merged_report_queries_work_across_shard_boundaries() {
    // The merged report is a plain WorkerReport: lookups and summary
    // statistics behave as if it came from one process.
    let inst = BinaryScenario::paper_default(8, 100, 0.8).generate(&mut rng(631));
    let data = inst.responses();
    let plan = ShardPlan::build(data, 3);
    let runner = ShardRunner::new(EstimatorConfig::default());
    let parts: Vec<WorkerReport> = plan
        .shards()
        .iter()
        .map(|spec| {
            runner
                .evaluate_shard(&ShardIndex::build(data, spec), 0.9)
                .unwrap()
        })
        .collect();
    let merged = merge_reports(parts);
    assert_eq!(
        merged.assessments.len() + merged.failures.len(),
        data.n_workers()
    );
    for w in data.workers() {
        let assessed = merged.get(w).is_some();
        let failed = merged.failures.iter().any(|f| f.0 == w);
        assert!(assessed ^ failed, "worker {w:?} covered exactly once");
    }
    assert!(merged.mean_interval_size() > 0.0);
}

/// A community-structured fleet whose worker ids interleave across
/// communities (`w % communities`), so contiguous anchor ranges drag
/// every community into every closure while a locality-aware plan can
/// keep each community on one shard.
fn interleaved_communities(communities: usize, per: usize, tasks_per: usize) -> ResponseMatrix {
    let m = communities * per;
    let mut b = ResponseMatrixBuilder::new(m, communities * tasks_per, 2);
    for w in 0..m as u32 {
        let community = w as usize % communities;
        for t in 0..tasks_per as u32 {
            if (w / communities as u32 + t).is_multiple_of(5) {
                continue; // leave some attempt sparsity
            }
            b.push(
                WorkerId(w),
                TaskId((community * tasks_per) as u32 + t),
                Label((w.wrapping_mul(2654435761).wrapping_add(t * 97) >> 7) as u16 % 2),
            )
            .unwrap();
        }
    }
    b.build().unwrap()
}

#[test]
fn clustered_plans_shrink_closures_and_stay_bit_identical() {
    // The locality-aware planner must (a) cut the per-shard closure on
    // an id-scrambled community fleet and (b) keep the merged report
    // bit-identical to the unsharded pipeline — the plan/runner split
    // means only the assignment changed, never the arithmetic.
    let data = interleaved_communities(4, 8, 30);
    let index = OverlapIndex::from_matrix(&data);
    let config = EstimatorConfig::default();
    let est = MWorkerEstimator::new(config.clone());
    let unsharded = est
        .evaluate_all_indexed_parallel(&index, 0.9, 2)
        .expect("m >= 3");
    for n_shards in [2usize, 4] {
        let contiguous = ShardPlan::build(&data, n_shards);
        let clustered = ShardPlan::build_clustered(&data, n_shards);
        assert!(
            clustered.max_closure_len() < contiguous.max_closure_len(),
            "{n_shards} shards: clustered closure {} must undercut contiguous {}",
            clustered.max_closure_len(),
            contiguous.max_closure_len()
        );
        let runner = ShardRunner::new(config.clone()).with_threads(2);
        let sharded = runner.run(&data, &clustered, 0.9).expect("m >= 3");
        assert_reports_identical(
            &sharded,
            &unsharded,
            &format!("clustered plan, {n_shards} shards"),
        );
    }
}

#[test]
fn clustered_plans_stay_bit_identical_kary() {
    let inst = KaryScenario::paper_default(3, 200, 0.9)
        .with_workers(8)
        .generate(&mut rng(641));
    let data = inst.responses();
    let index = OverlapIndex::from_matrix(data);
    let config = EstimatorConfig::default();
    let est = KaryMWorkerEstimator::new(config.clone());
    let unsharded = est
        .evaluate_all_indexed_parallel(&index, 0.9, 2)
        .expect("m >= 3");
    for n_shards in [2usize, 3] {
        let plan = ShardPlan::build_clustered(data, n_shards);
        let runner = ShardRunner::new(config.clone()).with_threads(2);
        let sharded = runner.run_kary(data, &plan, 0.9).expect("m >= 3");
        assert_kary_identical(
            &sharded,
            &unsharded,
            &format!("clustered k-ary, {n_shards} shards"),
        );
    }
}
