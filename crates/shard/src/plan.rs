//! Deterministic shard planning: anchor partition + peer closures.
//!
//! A [`ShardPlan`] assigns every worker to exactly one shard as its
//! **anchor** (the shard that evaluates it) and computes each shard's
//! **closure**: the anchors plus every pairing-reachable peer (any
//! worker sharing at least one task with an anchor). The closure is
//! exactly the worker set whose full rows a [`crate::ShardIndex`]
//! must hold for its anchors' evaluations to reproduce the unsharded
//! pipeline bit for bit; see the [crate docs](crate) for the
//! argument.
//!
//! Two planners share that machinery:
//!
//! * [`ShardPlan::build`] — contiguous id ranges of `⌈m / n_shards⌉`
//!   workers: reproducible from `(n_workers, n_shards)` alone, zero
//!   planning cost, and optimal when worker ids already align with
//!   task neighbourhoods.
//! * [`ShardPlan::build_clustered`] — **locality-aware**: a greedy
//!   agglomeration over the worker co-occurrence graph grows each
//!   shard around the most-connected unassigned worker, always
//!   absorbing the candidate with the strongest tie to the shard so
//!   far. On fleets whose ids do *not* align with task
//!   neighbourhoods (imports, hashed ids, interleaved signups) this
//!   keeps co-responding workers on one shard, so closures — and with
//!   them per-process memory — shrink toward the anchor count, while
//!   contiguous ranges would drag in every neighbour of every
//!   scattered anchor. Deterministic: ties break by worker id.
//!
//! The merge step sorts reports into canonical worker order, so *any*
//! assignment — contiguous or clustered — yields bit-identical fleet
//! output; planners only move the memory/balance trade-off.
//!
//! Closure discovery is one pass over the task adjacency
//! (`O(Σ_t r_t²)` — the same order as building any pair table): each
//! task's responder list marks, for every responder's home shard, all
//! co-responders. Clustering additionally harvests the weighted
//! co-occurrence edges (same pass order) and runs a lazy-heap greedy
//! growth, `O(E log E)` in the edge count. The planner is a *central*
//! step — it reads the full data once, cheaply; what sharding removes
//! is the need for any single **evaluation** process to hold
//! fleet-wide state.

use crowd_data::{ResponseMatrix, WorkerId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One shard of a [`ShardPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// The anchor ids this shard evaluates, ascending. May be empty
    /// when there are more shards than workers.
    pub anchors: Vec<WorkerId>,
    /// The workers whose rows the shard's index needs: the anchors
    /// plus every worker sharing at least one task with an anchor.
    /// Sorted ascending, deduplicated.
    pub closure: Vec<WorkerId>,
}

impl ShardSpec {
    /// The shard's anchors as worker ids.
    pub fn anchor_ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.anchors.iter().copied()
    }

    /// Number of anchors.
    pub fn n_anchors(&self) -> usize {
        self.anchors.len()
    }

    /// True when the shard has nothing to evaluate.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }
}

/// A deterministic partition of the fleet into shard anchor sets with
/// per-shard peer closures; see the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n_workers: usize,
    /// `home[w]` = the shard that evaluates worker `w`.
    home: Vec<u32>,
    shards: Vec<ShardSpec>,
    /// CSR worker → subscribing shards: shard `s` subscribes to
    /// worker `w` when `w` is in shard `s`'s closure (its index holds
    /// `w`'s row). `subs[subs_off[w]..subs_off[w + 1]]`, ascending.
    subs_off: Vec<u32>,
    subs: Vec<u32>,
}

impl ShardPlan {
    /// Plans `n_shards` shards over the fleet (clamped to ≥ 1):
    /// contiguous anchor ranges of `⌈m / n_shards⌉` workers, closures
    /// from one pass over the task adjacency. The same
    /// `(data, n_shards)` always produces the same plan.
    pub fn build(data: &ResponseMatrix, n_shards: usize) -> Self {
        let m = data.n_workers();
        let n_shards = n_shards.max(1);
        let chunk = m.div_ceil(n_shards).max(1);
        let home: Vec<u32> = (0..m).map(|w| (w / chunk) as u32).collect();
        Self::from_assignment(data, n_shards, home)
    }

    /// Locality-aware planning: greedy agglomerative clustering over
    /// the worker co-occurrence graph (see the [module docs](self)).
    /// Shards are grown one at a time to a target of `⌈m / n_shards⌉`
    /// anchors: each starts from the highest-degree unassigned worker
    /// and repeatedly absorbs the unassigned worker with the largest
    /// total co-occurrence weight into the shard so far (lazy
    /// max-heap; all ties break by lowest worker id, so the same
    /// `(data, n_shards)` always produces the same plan). Workers
    /// with no co-occurrence edge into the growing shard seed new
    /// components inside it, so silent and isolated workers are still
    /// anchored exactly once.
    pub fn build_clustered(data: &ResponseMatrix, n_shards: usize) -> Self {
        let m = data.n_workers();
        let n_shards = n_shards.max(1);

        // Weighted co-occurrence adjacency, harvested per task and
        // deduplicated by sorting: weight(a, b) = shared-task count.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for task in data.tasks() {
            let responders = data.task_responses(task);
            for (i, &(a, _)) in responders.iter().enumerate() {
                for &(b, _) in &responders[i + 1..] {
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); m];
        let mut run = 0usize;
        while run < edges.len() {
            let (a, b) = edges[run];
            let mut weight = 0u32;
            while run < edges.len() && edges[run] == (a, b) {
                weight += 1;
                run += 1;
            }
            adj[a as usize].push((b, weight));
            adj[b as usize].push((a, weight));
        }

        // Seed order: total co-occurrence weight descending, id
        // ascending — the strongest hub of each remaining component
        // starts its shard.
        let mut seeds: Vec<u32> = (0..m as u32).collect();
        let degree: Vec<u64> = adj
            .iter()
            .map(|row| row.iter().map(|&(_, w)| w as u64).sum())
            .collect();
        seeds.sort_by_key(|&w| (Reverse(degree[w as usize]), w));
        let mut next_seed = 0usize;

        let target = m.div_ceil(n_shards).max(1);
        let mut home = vec![u32::MAX; m];
        // Connection weight of each unassigned worker to the shard
        // currently being grown, plus a lazy max-heap over it: stale
        // entries (assigned workers, superseded weights) are skipped
        // on pop.
        let mut conn = vec![0u64; m];
        let mut touched: Vec<u32> = Vec::new();
        let mut heap: BinaryHeap<(u64, Reverse<u32>)> = BinaryHeap::new();
        for s in 0..n_shards as u32 {
            heap.clear();
            for &t in &touched {
                conn[t as usize] = 0;
            }
            touched.clear();
            let mut size = 0usize;
            while size < target {
                let pick = loop {
                    match heap.pop() {
                        Some((w, Reverse(id))) => {
                            if home[id as usize] == u32::MAX && conn[id as usize] == w {
                                break Some(id);
                            }
                        }
                        None => break None,
                    }
                };
                let pick = match pick {
                    Some(id) => id,
                    None => {
                        // No unassigned worker touches the shard yet
                        // (fresh shard, or a component was exhausted):
                        // seed with the best-connected leftover.
                        while next_seed < m && home[seeds[next_seed] as usize] != u32::MAX {
                            next_seed += 1;
                        }
                        match seeds.get(next_seed) {
                            Some(&id) => id,
                            None => break, // whole fleet assigned
                        }
                    }
                };
                home[pick as usize] = s;
                size += 1;
                for &(peer, weight) in &adj[pick as usize] {
                    if home[peer as usize] == u32::MAX {
                        if conn[peer as usize] == 0 {
                            touched.push(peer);
                        }
                        conn[peer as usize] += weight as u64;
                        heap.push((conn[peer as usize], Reverse(peer)));
                    }
                }
            }
        }
        // More shards than workers leaves trailing shards empty, never
        // workers unassigned: Σ targets ≥ m and the loop above only
        // stops early when every worker is placed.
        debug_assert!(home.iter().all(|&h| h != u32::MAX));
        Self::from_assignment(data, n_shards, home)
    }

    /// The shared back half of every planner: per-shard anchor lists
    /// and closures (one pass over the task adjacency) from a
    /// worker → shard assignment.
    fn from_assignment(data: &ResponseMatrix, n_shards: usize, home: Vec<u32>) -> Self {
        let m = data.n_workers();
        debug_assert_eq!(home.len(), m);

        // Per-shard membership bitmaps: co-responders of each shard's
        // anchors. A worker responding to a task pulls every other
        // responder of that task into its home shard's closure.
        let mut member = vec![vec![false; m]; n_shards];
        for task in data.tasks() {
            let responders = data.task_responses(task);
            for &(w, _) in responders {
                let row = &mut member[home[w as usize] as usize];
                for &(peer, _) in responders {
                    row[peer as usize] = true;
                }
            }
        }

        let shards = (0..n_shards)
            .map(|s| {
                // Anchors are always in their own closure, responses
                // or not — a silent anchor still gets evaluated (and
                // fails gracefully) exactly like the unsharded loop.
                let anchors: Vec<WorkerId> = (0..m as u32)
                    .filter(|&w| home[w as usize] == s as u32)
                    .map(WorkerId)
                    .collect();
                for w in &anchors {
                    member[s][w.index()] = true;
                }
                let closure: Vec<WorkerId> = member[s]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &in_scope)| in_scope)
                    .map(|(w, _)| WorkerId(w as u32))
                    .collect();
                ShardSpec { anchors, closure }
            })
            .collect();

        // Invert the membership bitmaps into the CSR worker →
        // subscribing-shards map (ascending shard order per worker).
        let mut subs_off = Vec::with_capacity(m + 1);
        let mut subs = Vec::new();
        subs_off.push(0u32);
        for w in 0..m {
            for (s, row) in member.iter().enumerate() {
                if row[w] {
                    subs.push(s as u32);
                }
            }
            subs_off.push(subs.len() as u32);
        }

        Self {
            n_workers: m,
            home,
            shards,
            subs_off,
            subs,
        }
    }

    /// Number of workers planned over.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Number of shards (including empty trailing shards).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard specs, in shard order.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// The shard that evaluates `worker` — the request-routing hook of
    /// a sharded service.
    ///
    /// # Panics
    /// Panics if `worker` is outside the planned fleet.
    pub fn shard_of(&self, worker: WorkerId) -> usize {
        self.home[worker.index()] as usize
    }

    /// Every shard whose closure contains `worker` (ascending) — the
    /// **ingest-routing** hook of a sharded service. Each listed
    /// shard's index holds `worker`'s full row, so a new response
    /// from `worker` must be delivered to *all* of them (not just
    /// [`ShardPlan::shard_of`]) for per-shard state to stay
    /// bit-identical to the unsharded substrate. Always contains the
    /// home shard; a worker sharing no tasks with foreign anchors
    /// subscribes to its home shard alone.
    ///
    /// # Panics
    /// Panics if `worker` is outside the planned fleet.
    pub fn closure_shards(&self, worker: WorkerId) -> &[u32] {
        let w = worker.index();
        let (lo, hi) = (self.subs_off[w] as usize, self.subs_off[w + 1] as usize);
        &self.subs[lo..hi]
    }

    /// The largest closure across shards — the per-process row count
    /// a deployment must provision for; the number
    /// [`ShardPlan::build_clustered`] exists to shrink.
    pub fn max_closure_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.closure.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::{Label, ResponseMatrixBuilder, TaskId};

    /// Two disjoint task neighbourhoods: workers 0–2 on tasks 0–9,
    /// workers 3–5 on tasks 10–19. Worker 6 is silent.
    fn clustered() -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(7, 20, 2);
        for w in 0..3u32 {
            for t in 0..10u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        for w in 3..6u32 {
            for t in 10..20u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        b.build().unwrap()
    }

    /// A community-structured fleet whose worker ids do **not** align
    /// with the task neighbourhoods: worker `w` belongs to community
    /// `w % communities` (ids interleave across communities), each
    /// community answering its own task block.
    fn interleaved(communities: usize, per: usize, tasks_per: usize) -> ResponseMatrix {
        let m = communities * per;
        let mut b = ResponseMatrixBuilder::new(m, communities * tasks_per, 2);
        for w in 0..m as u32 {
            let community = w as usize % communities;
            for t in 0..tasks_per as u32 {
                b.push(
                    WorkerId(w),
                    TaskId((community * tasks_per) as u32 + t),
                    Label((w + t) as u16 % 2),
                )
                .unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn anchors_partition_the_fleet() {
        let data = clustered();
        for n_shards in [1usize, 2, 3, 7, 11] {
            for plan in [
                ShardPlan::build(&data, n_shards),
                ShardPlan::build_clustered(&data, n_shards),
            ] {
                let mut seen = [false; 7];
                for (s, spec) in plan.shards().iter().enumerate() {
                    for w in spec.anchor_ids() {
                        assert!(!seen[w.index()], "worker {w:?} anchored twice");
                        seen[w.index()] = true;
                        assert_eq!(plan.shard_of(w), s);
                    }
                }
                assert!(seen.iter().all(|&s| s), "n_shards = {n_shards}");
            }
        }
    }

    #[test]
    fn closure_contains_anchors_and_their_co_responders() {
        let data = clustered();
        let plan = ShardPlan::build(&data, 2);
        // chunk = 4: shard 0 anchors 0..4, shard 1 anchors 4..7.
        let anchors0: Vec<u32> = plan.shards()[0].anchors.iter().map(|w| w.0).collect();
        let anchors1: Vec<u32> = plan.shards()[1].anchors.iter().map(|w| w.0).collect();
        assert_eq!(anchors0, vec![0, 1, 2, 3]);
        assert_eq!(anchors1, vec![4, 5, 6]);
        // Shard 0's anchor 3 co-occurs with 4 and 5 — they must be in
        // the closure; the silent worker 6 appears only as an anchor.
        let closure0: Vec<u32> = plan.shards()[0].closure.iter().map(|w| w.0).collect();
        assert_eq!(closure0, vec![0, 1, 2, 3, 4, 5]);
        // Shard 1's anchors 4, 5 reach only worker 3 beyond themselves.
        let closure1: Vec<u32> = plan.shards()[1].closure.iter().map(|w| w.0).collect();
        assert_eq!(closure1, vec![3, 4, 5, 6]);
    }

    #[test]
    fn more_shards_than_workers_leaves_trailing_shards_empty() {
        let data = clustered();
        for plan in [
            ShardPlan::build(&data, 11),
            ShardPlan::build_clustered(&data, 11),
        ] {
            assert_eq!(plan.n_shards(), 11);
            let non_empty: usize = plan.shards().iter().filter(|s| !s.is_empty()).count();
            assert_eq!(non_empty, 7);
            let total: usize = plan.shards().iter().map(ShardSpec::n_anchors).sum();
            assert_eq!(total, 7);
            for spec in plan.shards().iter().filter(|s| s.is_empty()) {
                assert!(spec.closure.is_empty(), "empty shard needs no rows");
            }
        }
    }

    #[test]
    fn closure_shards_inverts_the_closures() {
        let data = clustered();
        for n_shards in [1usize, 2, 3, 7, 11] {
            for plan in [
                ShardPlan::build(&data, n_shards),
                ShardPlan::build_clustered(&data, n_shards),
            ] {
                for w in 0..data.n_workers() as u32 {
                    let w = WorkerId(w);
                    let subs = plan.closure_shards(w);
                    // Exactly the shards whose closure lists w,
                    // ascending, home always included.
                    let expect: Vec<u32> = plan
                        .shards()
                        .iter()
                        .enumerate()
                        .filter(|(_, spec)| spec.closure.contains(&w))
                        .map(|(s, _)| s as u32)
                        .collect();
                    assert_eq!(subs, expect, "worker {w:?}, n_shards {n_shards}");
                    assert!(
                        subs.contains(&(plan.shard_of(w) as u32)),
                        "home shard must subscribe to its own anchor"
                    );
                }
            }
        }
    }

    #[test]
    fn silent_workers_subscribe_to_home_only() {
        let data = clustered();
        let plan = ShardPlan::build(&data, 2);
        // Worker 6 is silent: its row exists nowhere but its home
        // shard (as an anchor), so ingest routes there alone.
        assert_eq!(plan.closure_shards(WorkerId(6)), &[1]);
        // Worker 3 bridges both neighbourhood closures.
        assert_eq!(plan.closure_shards(WorkerId(3)), &[0, 1]);
    }

    #[test]
    fn plans_are_deterministic() {
        let data = clustered();
        assert_eq!(ShardPlan::build(&data, 3), ShardPlan::build(&data, 3));
        assert_eq!(
            ShardPlan::build_clustered(&data, 3),
            ShardPlan::build_clustered(&data, 3)
        );
    }

    #[test]
    fn clustered_planning_reunites_interleaved_communities() {
        // 4 communities of 8 whose ids interleave (w % 4): contiguous
        // ranges mix all four communities into every shard, so each
        // closure is the whole fleet; clustering recovers the
        // communities and closures collapse to the anchor sets.
        let data = interleaved(4, 8, 12);
        let contiguous = ShardPlan::build(&data, 4);
        let clustered = ShardPlan::build_clustered(&data, 4);
        assert_eq!(contiguous.max_closure_len(), 32, "ids interleave");
        assert_eq!(
            clustered.max_closure_len(),
            8,
            "clustered shards must close over exactly their community"
        );
        for spec in clustered.shards() {
            assert_eq!(spec.n_anchors(), 8);
            // One community per shard: all anchors congruent mod 4.
            let c = spec.anchors[0].0 % 4;
            assert!(spec.anchor_ids().all(|w| w.0 % 4 == c));
            assert_eq!(spec.closure, spec.anchors);
        }
    }

    #[test]
    fn clustered_planning_balances_shard_sizes() {
        // One big community (20) + one small (4), 3 shards of target 8:
        // growth must stop at the target, splitting the big community
        // rather than overfilling a shard.
        let mut b = ResponseMatrixBuilder::new(24, 30, 2);
        for w in 0..20u32 {
            for t in 0..20u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        for w in 20..24u32 {
            for t in 20..30u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        let data = b.build().unwrap();
        let plan = ShardPlan::build_clustered(&data, 3);
        let sizes: Vec<usize> = plan.shards().iter().map(ShardSpec::n_anchors).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 24);
        assert!(
            sizes.iter().all(|&s| s <= 8),
            "no shard may exceed the ⌈m/n⌉ target: {sizes:?}"
        );
    }
}
