//! Deterministic shard planning: anchor partition + peer closures.
//!
//! A [`ShardPlan`] assigns every worker to exactly one shard as its
//! **anchor** (the shard that evaluates it) by contiguous id ranges —
//! the same `div_ceil` chunking as
//! `crowd_core::parallel_index_map`, so the partition is reproducible
//! from `(n_workers, n_shards)` alone — and computes each shard's
//! **closure**: the anchors plus every pairing-reachable peer (any
//! worker sharing at least one task with an anchor). The closure is
//! exactly the worker set whose full rows a [`crate::ShardIndex`]
//! must hold for its anchors' evaluations to reproduce the unsharded
//! pipeline bit for bit; see the [crate docs](crate) for the
//! argument.
//!
//! Closure discovery is one pass over the task adjacency
//! (`O(Σ_t r_t²)` — the same order as building any pair table): each
//! task's responder list marks, for every responder's home shard, all
//! co-responders. The planner is a *central* step — it reads the full
//! data once, cheaply; what sharding removes is the need for any
//! single **evaluation** process to hold fleet-wide state.

use crowd_data::{ResponseMatrix, WorkerId};
use std::ops::Range;

/// One shard of a [`ShardPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Contiguous anchor id range this shard evaluates. May be empty
    /// when there are more shards than workers.
    pub anchors: Range<u32>,
    /// The workers whose rows the shard's index needs: the anchors
    /// plus every worker sharing at least one task with an anchor.
    /// Sorted ascending, deduplicated.
    pub closure: Vec<WorkerId>,
}

impl ShardSpec {
    /// The shard's anchors as worker ids.
    pub fn anchor_ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.anchors.clone().map(WorkerId)
    }

    /// Number of anchors.
    pub fn n_anchors(&self) -> usize {
        self.anchors.len()
    }

    /// True when the shard has nothing to evaluate.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }
}

/// A deterministic partition of the fleet into shard anchor ranges
/// with per-shard peer closures; see the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n_workers: usize,
    chunk: usize,
    shards: Vec<ShardSpec>,
}

impl ShardPlan {
    /// Plans `n_shards` shards over the fleet (clamped to ≥ 1):
    /// contiguous anchor ranges of `⌈m / n_shards⌉` workers, closures
    /// from one pass over the task adjacency. The same
    /// `(data, n_shards)` always produces the same plan.
    pub fn build(data: &ResponseMatrix, n_shards: usize) -> Self {
        let m = data.n_workers();
        let n_shards = n_shards.max(1);
        let chunk = m.div_ceil(n_shards).max(1);
        let shard_of = |w: u32| w as usize / chunk;

        // Per-shard membership bitmaps: co-responders of each shard's
        // anchors. A worker responding to a task pulls every other
        // responder of that task into its home shard's closure.
        let mut member = vec![vec![false; m]; n_shards];
        for task in data.tasks() {
            let responders = data.task_responses(task);
            for &(w, _) in responders {
                let row = &mut member[shard_of(w)];
                for &(peer, _) in responders {
                    row[peer as usize] = true;
                }
            }
        }

        let shards = (0..n_shards)
            .map(|s| {
                let lo = (s * chunk).min(m) as u32;
                let hi = ((s + 1) * chunk).min(m) as u32;
                // Anchors are always in their own closure, responses
                // or not — a silent anchor still gets evaluated (and
                // fails gracefully) exactly like the unsharded loop.
                for w in lo..hi {
                    member[s][w as usize] = true;
                }
                let closure: Vec<WorkerId> = member[s]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &in_scope)| in_scope)
                    .map(|(w, _)| WorkerId(w as u32))
                    .collect();
                ShardSpec {
                    anchors: lo..hi,
                    closure,
                }
            })
            .collect();

        Self {
            n_workers: m,
            chunk,
            shards,
        }
    }

    /// Number of workers planned over.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Number of shards (including empty trailing shards).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard specs, in shard order.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// The shard that evaluates `worker`.
    pub fn shard_of(&self, worker: WorkerId) -> usize {
        worker.index() / self.chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::{Label, ResponseMatrixBuilder, TaskId};

    /// Two disjoint task neighbourhoods: workers 0–2 on tasks 0–9,
    /// workers 3–5 on tasks 10–19. Worker 6 is silent.
    fn clustered() -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(7, 20, 2);
        for w in 0..3u32 {
            for t in 0..10u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        for w in 3..6u32 {
            for t in 10..20u32 {
                b.push(WorkerId(w), TaskId(t), Label(0)).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn anchors_partition_the_fleet() {
        let data = clustered();
        for n_shards in [1usize, 2, 3, 7, 11] {
            let plan = ShardPlan::build(&data, n_shards);
            let mut seen = [false; 7];
            for spec in plan.shards() {
                for w in spec.anchor_ids() {
                    assert!(!seen[w.index()], "worker {w:?} anchored twice");
                    seen[w.index()] = true;
                    assert_eq!(
                        plan.shard_of(w),
                        plan.shards().iter().position(|s| s == spec).unwrap()
                    );
                }
            }
            assert!(seen.iter().all(|&s| s), "n_shards = {n_shards}");
        }
    }

    #[test]
    fn closure_contains_anchors_and_their_co_responders() {
        let data = clustered();
        let plan = ShardPlan::build(&data, 2);
        // chunk = 4: shard 0 anchors 0..4, shard 1 anchors 4..7.
        assert_eq!(plan.shards()[0].anchors, 0..4);
        assert_eq!(plan.shards()[1].anchors, 4..7);
        // Shard 0's anchor 3 co-occurs with 4 and 5 — they must be in
        // the closure; the silent worker 6 appears only as an anchor.
        let closure0: Vec<u32> = plan.shards()[0].closure.iter().map(|w| w.0).collect();
        assert_eq!(closure0, vec![0, 1, 2, 3, 4, 5]);
        // Shard 1's anchors 4, 5 reach only worker 3 beyond themselves.
        let closure1: Vec<u32> = plan.shards()[1].closure.iter().map(|w| w.0).collect();
        assert_eq!(closure1, vec![3, 4, 5, 6]);
    }

    #[test]
    fn more_shards_than_workers_leaves_trailing_shards_empty() {
        let data = clustered();
        let plan = ShardPlan::build(&data, 11);
        assert_eq!(plan.n_shards(), 11);
        let non_empty: usize = plan.shards().iter().filter(|s| !s.is_empty()).count();
        assert_eq!(non_empty, 7);
        let total: usize = plan.shards().iter().map(ShardSpec::n_anchors).sum();
        assert_eq!(total, 7);
        for spec in plan.shards().iter().filter(|s| s.is_empty()) {
            assert!(spec.closure.is_empty(), "empty shard needs no rows");
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let data = clustered();
        assert_eq!(ShardPlan::build(&data, 3), ShardPlan::build(&data, 3));
    }
}
