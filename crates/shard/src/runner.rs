//! Shard indices, shard execution and report merging.
//!
//! [`ShardIndex`] is the state one shard *process* holds: a scoped
//! [`OverlapIndex`] (full rows for the shard's closure, empty rows
//! elsewhere, global id space) backed by the sparse
//! [`crowd_data::PairMap`] — pair state proportional to the
//! co-occurring pairs among the closure, never `O(m²)`.
//! [`ShardRunner`] evaluates a shard's anchors through the same
//! deterministic chunked-parallel machinery as the single-process
//! `evaluate_all_indexed_parallel`, and [`merge_reports`] /
//! [`merge_kary_reports`] recombine the per-shard reports into one
//! fleet report that is **bit-identical** to the unsharded run.

use crowd_core::{
    EstimateError, EstimatorConfig, KaryMWorkerEstimator, KaryWorkerReport, MWorkerEstimator,
    WorkerReport,
};
use crowd_data::{OverlapIndex, ResponseMatrix, WorkerId};

use crate::plan::{ShardPlan, ShardSpec};

/// The per-process substrate of one shard; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct ShardIndex {
    anchors: Vec<WorkerId>,
    closure_len: usize,
    index: OverlapIndex,
}

impl ShardIndex {
    /// Builds the shard's scoped, sparse-pair index from the full
    /// data. In a distributed deployment each shard process would run
    /// exactly this over its slice of the response log; the closure
    /// tells it which workers' responses to retain.
    pub fn build(data: &ResponseMatrix, spec: &ShardSpec) -> Self {
        Self {
            anchors: spec.anchors.clone(),
            closure_len: spec.closure.len(),
            index: OverlapIndex::from_matrix_scoped(data, &spec.closure),
        }
    }

    /// The scoped overlap index (global id space).
    pub fn index(&self) -> &OverlapIndex {
        &self.index
    }

    /// The anchors this shard evaluates.
    pub fn anchor_ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.anchors.iter().copied()
    }

    /// Number of workers whose rows the shard holds.
    pub fn closure_len(&self) -> usize {
        self.closure_len
    }

    /// Responses resident in the shard (closure rows only).
    pub fn n_responses(&self) -> usize {
        self.index.n_responses()
    }

    /// Bytes resident in the shard's sparse pair table — the number
    /// the scaling benchmark compares against the dense fleet-wide
    /// [`crowd_data::PairCache`].
    pub fn pair_table_bytes(&self) -> usize {
        self.index.pair_table_bytes()
    }
}

/// Runs shards and merges their reports; see the [crate docs](crate)
/// for the pipeline shape and the bit-identity argument.
#[derive(Debug, Clone, Default)]
pub struct ShardRunner {
    binary: MWorkerEstimator,
    kary: KaryMWorkerEstimator,
    threads: usize,
}

impl ShardRunner {
    /// A runner evaluating with the given estimator configuration,
    /// serial within each shard.
    pub fn new(config: EstimatorConfig) -> Self {
        Self {
            binary: MWorkerEstimator::new(config.clone()),
            kary: KaryMWorkerEstimator::new(config),
            threads: 1,
        }
    }

    /// Evaluate each shard's anchors across `threads` scoped threads
    /// (the per-process thread budget; chunking is deterministic, so
    /// the thread count never changes outputs).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Evaluates one shard's anchors (binary, Algorithm A2) against
    /// its scoped index. Rows are bit-identical to the corresponding
    /// rows of an unsharded `evaluate_all_indexed_parallel`.
    pub fn evaluate_shard(
        &self,
        shard: &ShardIndex,
        confidence: f64,
    ) -> Result<WorkerReport, EstimateError> {
        let anchors: Vec<WorkerId> = shard.anchor_ids().collect();
        self.binary.evaluate_workers_indexed_parallel(
            shard.index(),
            &anchors,
            confidence,
            self.threads,
        )
    }

    /// Evaluates one shard's anchors (k-ary, the m-worker A3
    /// extension).
    pub fn evaluate_shard_kary(
        &self,
        shard: &ShardIndex,
        confidence: f64,
    ) -> Result<KaryWorkerReport, EstimateError> {
        let anchors: Vec<WorkerId> = shard.anchor_ids().collect();
        self.kary.evaluate_workers_indexed_parallel(
            shard.index(),
            &anchors,
            confidence,
            self.threads,
        )
    }

    /// The whole pipeline in one call — build every shard index,
    /// evaluate its anchors, merge: the single-machine driver and the
    /// reference the differential tests pin against
    /// `evaluate_all_indexed_parallel`. Shards are built and dropped
    /// one at a time, so peak pair-state memory is one shard's, not
    /// the fleet's.
    pub fn run(
        &self,
        data: &ResponseMatrix,
        plan: &ShardPlan,
        confidence: f64,
    ) -> Result<WorkerReport, EstimateError> {
        let mut parts = Vec::with_capacity(plan.n_shards());
        for spec in plan.shards() {
            let shard = ShardIndex::build(data, spec);
            parts.push(self.evaluate_shard(&shard, confidence)?);
        }
        Ok(merge_reports(parts))
    }

    /// [`ShardRunner::run`] for k-ary data.
    pub fn run_kary(
        &self,
        data: &ResponseMatrix,
        plan: &ShardPlan,
        confidence: f64,
    ) -> Result<KaryWorkerReport, EstimateError> {
        let mut parts = Vec::with_capacity(plan.n_shards());
        for spec in plan.shards() {
            let shard = ShardIndex::build(data, spec);
            parts.push(self.evaluate_shard_kary(&shard, confidence)?);
        }
        Ok(merge_kary_reports(parts))
    }
}

/// Recombines per-shard binary reports into one fleet report in
/// canonical worker order; rows are kept verbatim, so the merged
/// report is bit-identical to a single-process run (see
/// [`crowd_core::WorkerReport::merge`]). Shard order is irrelevant.
pub fn merge_reports(parts: impl IntoIterator<Item = WorkerReport>) -> WorkerReport {
    WorkerReport::merge(parts)
}

/// [`merge_reports`] for k-ary reports.
pub fn merge_kary_reports(parts: impl IntoIterator<Item = KaryWorkerReport>) -> KaryWorkerReport {
    KaryWorkerReport::merge(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_data::{Label, ResponseMatrixBuilder, TaskId};

    fn two_neighbourhoods() -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::new(6, 24, 2);
        for w in 0..3u32 {
            for t in 0..12u32 {
                b.push(WorkerId(w), TaskId(t), Label(((w + t) % 2) as u16))
                    .unwrap();
            }
        }
        for w in 3..6u32 {
            for t in 12..24u32 {
                b.push(WorkerId(w), TaskId(t), Label((w % 2) as u16))
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn shard_index_holds_only_closure_rows() {
        let data = two_neighbourhoods();
        let plan = ShardPlan::build(&data, 2);
        let shard = ShardIndex::build(&data, &plan.shards()[0]);
        assert_eq!(shard.closure_len(), 3, "disjoint neighbourhoods");
        assert_eq!(shard.anchor_ids().count(), 3);
        // Closure rows are complete, out-of-closure rows are empty.
        assert_eq!(
            shard.index().worker_responses(WorkerId(0)),
            data.worker_responses(WorkerId(0))
        );
        assert!(shard.index().worker_responses(WorkerId(4)).is_empty());
        assert_eq!(shard.n_responses(), 36);
        assert!(shard.pair_table_bytes() > 0);
    }

    #[test]
    fn merge_is_shard_order_invariant() {
        let data = two_neighbourhoods();
        let plan = ShardPlan::build(&data, 2);
        let runner = ShardRunner::new(EstimatorConfig::default());
        let parts: Vec<WorkerReport> = plan
            .shards()
            .iter()
            .map(|spec| {
                runner
                    .evaluate_shard(&ShardIndex::build(&data, spec), 0.9)
                    .unwrap()
            })
            .collect();
        let forward = merge_reports(parts.clone());
        let backward = merge_reports(parts.into_iter().rev());
        assert_eq!(forward.assessments.len(), backward.assessments.len());
        for (f, b) in forward.assessments.iter().zip(&backward.assessments) {
            assert_eq!(f.worker, b.worker);
            assert_eq!(f.interval, b.interval);
        }
        let f_fail: Vec<WorkerId> = forward.failures.iter().map(|f| f.0).collect();
        let b_fail: Vec<WorkerId> = backward.failures.iter().map(|f| f.0).collect();
        assert_eq!(f_fail, b_fail);
    }
}
