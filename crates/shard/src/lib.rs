//! Sharded assessment: fleet-scale `evaluate_all` as a
//! shard-per-process pipeline with **bit-identical** merged output.
//!
//! The m-worker estimators are embarrassingly parallel per evaluated
//! worker, and peer-scoped views already made each evaluation's
//! working set `O(l)` — but a single process still had to hold the
//! whole fleet's pair table and one monolithic
//! [`crowd_data::OverlapIndex`]. This crate removes that last
//! per-process `O(m²)` obstacle by partitioning the *state*, not just
//! the loop:
//!
//! ```text
//!            ┌──────────────────────────────────────────────────┐
//!            │                 ShardPlan::build                 │
//!            │  anchors: contiguous worker ranges (deterministic)│
//!            │  closure: anchors ∪ pairing-reachable peers      │
//!            └──────┬───────────────┬───────────────┬───────────┘
//!                   ▼               ▼               ▼
//!            ┌────────────┐  ┌────────────┐  ┌────────────┐
//!   build    │ ShardIndex │  │ ShardIndex │  │ ShardIndex │
//!  (sparse   │ rows(closure)│ │ rows(closure)│ │ rows(closure)│
//!   PairMap) │ pairs: O(co-occurring within closure)        │
//!            └──────┬─────┘  └──────┬─────┘  └──────┬─────┘
//!                   ▼               ▼               ▼
//!   evaluate  WorkerReport    WorkerReport    WorkerReport
//!   (anchors    (anchors₀)      (anchors₁)      (anchors₂)
//!    only)          └───────────────┼───────────────┘
//!                                   ▼
//!                            merge_reports
//!                 == evaluate_all_indexed_parallel, bit for bit
//! ```
//!
//! # Why the closure makes sharding exact
//!
//! Evaluating worker `w` touches statistics about `w` and the peers
//! its pairing can reach — and nothing else. Concretely, every
//! statistic of an evaluation of `w` involves only workers in
//! `{w} ∪ reachable_peers(w)` (the workers sharing ≥ 1 task with `w`;
//! see [`crowd_core::pairing::reachable_peers`]):
//!
//! * the candidate scan filters on `pair(w, ·) ≥ min_overlap ≥ 1`,
//! * the greedy partner checks and Lemma 4 / `n₅` cross terms pair up
//!   *selected* peers with each other,
//! * the per-triple estimates read `pair` among `{w, a, b}` and the
//!   anchored view over `w`'s tasks.
//!
//! A [`ShardIndex`] therefore holds the **full rows** of its closure
//! members inside the *global* id space: pair statistics among closure
//! members equal the full-fleet values exactly (both endpoints'
//! complete response lists are present), and everything downstream is
//! the same arithmetic on the same integers — so per-anchor outputs
//! are bit-identical to the unsharded path, which the differential
//! tests in `tests/shard_equivalence.rs` pin for 1/2/7 shards, binary
//! and k-ary, including empty shards, silent workers and anchors whose
//! peers all live in other shards.
//!
//! # Why a shard is small
//!
//! The shard's pair state rides the sparse [`crowd_data::PairMap`]
//! (co-occurring pairs only) rather than the dense `O(m²)`
//! [`crowd_data::PairCache`], and its adjacency rows cover only the
//! closure. On clustered fleets — the production shape: workers answer
//! task neighbourhoods, not the whole corpus — closure size tracks the
//! anchors' co-occurrence neighbourhood, so per-process memory is
//! governed by the data's overlap structure and the shard count, not
//! by the fleet size (`scaling_pr4` measures ≥ 10× pair-state
//! reduction at m = 10000 with 8 shards). One process can also run
//! every shard in sequence and never materialize fleet-wide pair
//! state at all.
//!
//! # Example
//!
//! ```
//! use crowd_core::EstimatorConfig;
//! use crowd_shard::{ShardPlan, ShardRunner};
//! use crowd_sim::BinaryScenario;
//!
//! let instance = BinaryScenario::paper_default(9, 120, 0.7)
//!     .generate(&mut crowd_sim::rng(11));
//! let data = instance.responses();
//!
//! let plan = ShardPlan::build(data, 3);
//! let runner = ShardRunner::new(EstimatorConfig::default());
//! let report = runner.run(data, &plan, 0.9)?;
//! // Same rows a single-process evaluate_all would produce.
//! assert_eq!(report.assessments.len() + report.failures.len(), 9);
//! # Ok::<(), crowd_core::EstimateError>(())
//! ```

pub mod plan;
pub mod runner;

pub use plan::{ShardPlan, ShardSpec};
pub use runner::{ShardIndex, ShardRunner, merge_kary_reports, merge_reports};
