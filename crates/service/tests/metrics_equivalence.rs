//! Differential tests pinning the instrumented service
//! **bit-identical** to a metrics-disabled twin at every drain point
//! — the "provably free" contract of `crowd_obs`: stage timing and
//! the flight recorder observe evaluation, they never participate in
//! it. The reference is the same runtime spawned with
//! [`ServiceConfig::with_metrics`]`(false)`, fed exactly the same
//! responses in exactly the same order, compared bit for bit
//! (interval bits, triple counts, failure taxonomy) at randomized
//! drain points, binary and k-ary — while the instrumented twin's
//! stage histograms prove the timers actually ran.

use crowd_core::{KaryWorkerReport, WorkerReport};
use crowd_data::{Response, ResponseMatrix, WorkerId};
use crowd_obs::EventKind;
use crowd_service::{AssessmentService, ServiceConfig};
use crowd_shard::ShardPlan;
use crowd_sim::{ArrivalSchedule, BinaryScenario, KaryScenario, rng};
use rand::RngExt;

fn reports_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.weights_fell_back == y.weights_fell_back
                && x.interval.center.to_bits() == y.interval.center.to_bits()
                && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
        })
        && a.failures
            .iter()
            .zip(&b.failures)
            .all(|(x, y)| x.0 == y.0 && x.1 == y.1)
}

fn kary_reports_identical(a: &KaryWorkerReport, b: &KaryWorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.intervals.len() == y.intervals.len()
                && x.intervals.iter().zip(&y.intervals).all(|(p, q)| {
                    p.center.to_bits() == q.center.to_bits()
                        && p.half_width.to_bits() == q.half_width.to_bits()
                })
        })
        && a.failures
            .iter()
            .zip(&b.failures)
            .all(|(x, y)| x.0 == y.0 && x.1 == y.1)
}

/// Spawns the instrumented service and its metrics-disabled twin over
/// the same shard plan.
fn spawn_pair(data: &ResponseMatrix, n_shards: usize) -> (AssessmentService, AssessmentService) {
    assert!(
        ServiceConfig::default().metrics,
        "instrumentation is the default service mode"
    );
    let on = AssessmentService::spawn(
        ShardPlan::build_clustered(data, n_shards),
        data.n_tasks(),
        data.arity(),
        ServiceConfig::default(),
    );
    let off = AssessmentService::spawn(
        ShardPlan::build_clustered(data, n_shards),
        data.n_tasks(),
        data.arity(),
        ServiceConfig::default().with_metrics(false),
    );
    (on, off)
}

#[test]
fn instrumented_service_is_bit_identical_binary() {
    let inst = BinaryScenario::paper_default(12, 60, 0.85).generate(&mut rng(3121));
    let data = inst.responses();
    for &n_shards in &[1usize, 2, 8] {
        let (mut on, mut off) = spawn_pair(data, n_shards);
        let mut dice = rng(4400 + n_shards as u64);
        let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(91));
        let batches: Vec<&[Response]> = sched.batches(16).collect();
        for (i, group) in batches.iter().enumerate() {
            on.ingest_batch(group).unwrap();
            off.ingest_batch(group).unwrap();
            if dice.random::<f64>() < 0.35 {
                let a = on.snapshot(0.9).unwrap();
                let b = off.snapshot(0.9).unwrap();
                assert!(
                    reports_identical(&a, &b),
                    "drain-point divergence: shards={n_shards} batch={i}"
                );
            }
            if dice.random::<f64>() < 0.3 {
                let w = WorkerId(dice.random_range(0..12) as u32);
                let a = on.assess_worker(w, 0.9);
                let b = off.assess_worker(w, 0.9);
                match (a, b) {
                    (Ok(x), Ok(y)) => assert!(
                        x.interval.center.to_bits() == y.interval.center.to_bits()
                            && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
                            && x.triples_used == y.triples_used
                    ),
                    (Err(_), Err(_)) => {}
                    other => panic!("Ok/Err divergence: {other:?}"),
                }
            }
        }
        let a = on.snapshot(0.9).unwrap();
        let b = off.snapshot(0.9).unwrap();
        assert!(reports_identical(&a, &b), "final divergence");

        // The twins' counter stats agree too; only the stage timers
        // and journal differ.
        let ma = on.metrics().unwrap();
        let mb = off.metrics().unwrap();
        assert!(ma.enabled);
        assert!(!mb.enabled);
        assert_eq!(ma.stats.submitted, mb.stats.submitted);
        assert_eq!(
            ma.stats.shards.iter().map(|s| s.responses).sum::<u64>(),
            mb.stats.shards.iter().map(|s| s.responses).sum::<u64>()
        );
        let merged = ma.merged_stages();
        assert!(merged.queue_wait.count() > 0, "queue-wait timer ran");
        assert!(merged.batch_apply.count() > 0, "batch-apply timer ran");
        assert!(merged.drain_eval.count() > 0, "drain-eval timer ran");
        assert_eq!(
            mb.merged_stages().queue_wait.count(),
            0,
            "disabled twin recorded nothing"
        );
        assert!(mb.events.is_empty());
        // render_text round-trips the numbers ServiceStats shows.
        let text = ma.render_text();
        assert!(text.contains(&format!(
            "crowd_submitted_responses_total {}",
            ma.stats.submitted
        )));
        for s in &ma.stats.shards {
            assert!(text.contains(&format!(
                "crowd_shard_responses_total{{shard=\"{}\"}} {}",
                s.shard, s.responses
            )));
        }
        on.shutdown().unwrap();
        off.shutdown().unwrap();
    }
}

#[test]
fn instrumented_service_is_bit_identical_kary() {
    let inst = KaryScenario::paper_default(4, 50, 0.8)
        .with_workers(10)
        .generate(&mut rng(555));
    let data = inst.responses();
    for &n_shards in &[1usize, 4] {
        let (mut on, mut off) = spawn_pair(data, n_shards);
        let mut dice = rng(7100 + n_shards as u64);
        let all: Vec<Response> = data.iter().collect();
        for (i, group) in all.chunks(24).enumerate() {
            on.ingest_batch(group).unwrap();
            off.ingest_batch(group).unwrap();
            if dice.random::<f64>() < 0.4 {
                let a = on.snapshot_kary(0.9).unwrap();
                let b = off.snapshot_kary(0.9).unwrap();
                assert!(
                    kary_reports_identical(&a, &b),
                    "k-ary drain-point divergence: shards={n_shards} batch={i}"
                );
            }
        }
        let a = on.snapshot_kary(0.95).unwrap();
        let b = off.snapshot_kary(0.95).unwrap();
        assert!(kary_reports_identical(&a, &b), "k-ary final divergence");
        on.shutdown().unwrap();
        off.shutdown().unwrap();
    }
}

#[test]
fn slow_op_threshold_zero_journals_every_stage() {
    // With a zero threshold every timed operation is "slow", so the
    // journal must capture SlowOp events with stage labels — the
    // capture path the bench also exercises with injected slow ops.
    let inst = BinaryScenario::paper_default(8, 40, 0.9).generate(&mut rng(17));
    let data = inst.responses();
    let mut svc = AssessmentService::spawn(
        ShardPlan::build_clustered(data, 2),
        data.n_tasks(),
        data.arity(),
        ServiceConfig::default().with_slow_op_threshold(std::time::Duration::ZERO),
    );
    let all: Vec<Response> = data.iter().collect();
    for chunk in all.chunks(16) {
        svc.ingest_batch(chunk).unwrap();
    }
    svc.snapshot(0.9).unwrap();
    let m = svc.metrics().unwrap();
    let slow: Vec<_> = m.events_of(EventKind::SlowOp).collect();
    assert!(!slow.is_empty(), "zero threshold must journal slow ops");
    assert!(slow.iter().any(|e| e.label == "batch_apply"));
    assert!(slow.iter().any(|e| e.label == "drain_eval"));
    for e in &slow {
        assert_eq!(e.b, 0, "event carries the configured threshold");
        assert!((e.shard as usize) < 2);
    }
    // Timestamps are monotone within the journal.
    assert!(m.events.windows(2).all(|w| w[0].seq < w[1].seq));
}
