//! Differential tests pinning the pipelined runtime **bit-identical**
//! to single-threaded streaming evaluation at every snapshot, under
//! randomized arrival orders, batch sizes (1, 7, 256) and shard
//! counts (1, 2, 8), with mid-stream snapshots — binary and k-ary —
//! plus the runtime's edge cases (ingest-after-drain, empty-shard
//! routing, invalid requests).
//!
//! The reference is [`crowd_core::IncrementalEvaluator`] /
//! [`crowd_core::KaryIncrementalEvaluator`] fed exactly the same
//! responses in exactly the same order; the service's merged
//! snapshots must reproduce its reports bit for bit (interval bits,
//! triple counts, failure taxonomy) at every drain point.

use crowd_core::{
    EstimatorConfig, IncrementalEvaluator, KaryIncrementalEvaluator, KaryWorkerReport, WorkerReport,
};
use crowd_data::{Response, ResponseMatrix, WorkerId};
use crowd_service::{AssessmentService, ServiceConfig, ServiceError};
use crowd_shard::ShardPlan;
use crowd_sim::{ArrivalSchedule, BinaryScenario, KaryScenario, rng};

const CONFIDENCE: f64 = 0.9;

fn reports_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.weights_fell_back == y.weights_fell_back
                && x.interval.center.to_bits() == y.interval.center.to_bits()
                && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
        })
        && a.failures
            .iter()
            .zip(&b.failures)
            .all(|(x, y)| x.0 == y.0 && x.1 == y.1)
}

fn kary_reports_identical(a: &KaryWorkerReport, b: &KaryWorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.intervals.len() == y.intervals.len()
                && x.intervals.iter().zip(&y.intervals).all(|(p, q)| {
                    p.center.to_bits() == q.center.to_bits()
                        && p.half_width.to_bits() == q.half_width.to_bits()
                })
        })
        && a.failures
            .iter()
            .zip(&b.failures)
            .all(|(x, y)| x.0 == y.0 && x.1 == y.1)
}

/// Streams one arrival schedule into both the service (batched) and
/// the serial reference, snapshotting mid-stream and at the end;
/// panics on any divergence. Returns the service for post-checks.
fn run_binary_differential(
    data: &ResponseMatrix,
    n_shards: usize,
    batch: usize,
    seed: u64,
) -> AssessmentService {
    let plan = ShardPlan::build_clustered(data, n_shards);
    let mut service =
        AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
    let mut serial = IncrementalEvaluator::new(
        data.n_workers(),
        data.n_tasks(),
        data.arity(),
        EstimatorConfig::default(),
    );
    let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(seed));
    let batches: Vec<&[Response]> = sched.batches(batch).collect();
    let mid = batches.len() / 2;
    for (i, group) in batches.iter().enumerate() {
        service.ingest_batch(group).unwrap();
        for r in *group {
            serial.ingest(*r).unwrap();
        }
        if i + 1 == mid {
            // Mid-stream drain point: the snapshot rides the same
            // FIFO queues as the ingests, so it observes exactly this
            // prefix.
            let snap = service.snapshot(CONFIDENCE).unwrap();
            let reference = serial.evaluate_all(CONFIDENCE).unwrap();
            assert!(
                reports_identical(&snap, &reference),
                "mid-stream divergence: shards={n_shards} batch={batch} seed={seed}"
            );
            // Per-worker requests agree with the serial per-worker
            // path, including the failure taxonomy.
            for w in (0..data.n_workers() as u32).step_by(3) {
                let worker = WorkerId(w);
                match (
                    service.assess_worker(worker, CONFIDENCE),
                    serial.evaluate_worker(worker, CONFIDENCE),
                ) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.interval.center.to_bits(), b.interval.center.to_bits());
                        assert_eq!(
                            a.interval.half_width.to_bits(),
                            b.interval.half_width.to_bits()
                        );
                        assert_eq!(a.triples_used, b.triples_used);
                    }
                    (Err(ServiceError::Estimate(a)), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!("outcome mismatch for {worker:?}: {a:?} vs {b:?}"),
                }
            }
        }
    }
    let snap = service.snapshot(CONFIDENCE).unwrap();
    let reference = serial.evaluate_all(CONFIDENCE).unwrap();
    assert!(
        reports_identical(&snap, &reference),
        "final divergence: shards={n_shards} batch={batch} seed={seed}"
    );
    service
}

#[test]
fn binary_pipeline_is_bit_identical_to_serial_streaming() {
    let inst = BinaryScenario::paper_default(12, 60, 0.85).generate(&mut rng(501));
    let data = inst.responses();
    for &n_shards in &[1usize, 2, 8] {
        for &batch in &[1usize, 7, 256] {
            run_binary_differential(data, n_shards, batch, 1000 + n_shards as u64 * 10);
        }
    }
}

#[test]
fn binary_pipeline_is_arrival_order_invariant() {
    // Same fleet, three different arrival shuffles: every one must
    // land on the same (serial-reference) reports.
    let inst = BinaryScenario::paper_default(10, 50, 0.8).generate(&mut rng(503));
    let data = inst.responses();
    for seed in [7u64, 77, 777] {
        run_binary_differential(data, 2, 7, seed);
    }
}

#[test]
fn kary_pipeline_is_bit_identical_to_serial_streaming() {
    let inst = KaryScenario::paper_default(3, 60, 0.85)
        .with_workers(9)
        .generate(&mut rng(505));
    let data = inst.responses();
    for &(n_shards, batch) in &[(1usize, 7usize), (2, 1), (2, 256), (8, 7)] {
        let plan = ShardPlan::build_clustered(data, n_shards);
        let mut service =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let mut serial = KaryIncrementalEvaluator::new(
            data.n_workers(),
            data.n_tasks(),
            data.arity(),
            EstimatorConfig::default(),
        );
        let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(42 + batch as u64));
        let batches: Vec<&[Response]> = sched.batches(batch).collect();
        let mid = batches.len() / 2;
        for (i, group) in batches.iter().enumerate() {
            service.ingest_batch(group).unwrap();
            for r in *group {
                serial.ingest(*r).unwrap();
            }
            if i + 1 == mid {
                let snap = service.snapshot_kary(CONFIDENCE).unwrap();
                let reference = serial.evaluate_all(CONFIDENCE).unwrap();
                assert!(
                    kary_reports_identical(&snap, &reference),
                    "mid-stream k-ary divergence: shards={n_shards} batch={batch}"
                );
                let worker = WorkerId(1);
                match (
                    service.assess_worker_kary(worker, CONFIDENCE),
                    serial.evaluate_worker(worker, CONFIDENCE),
                ) {
                    (Ok(a), Ok(b)) => {
                        for (p, q) in a.intervals.iter().zip(&b.intervals) {
                            assert_eq!(p.center.to_bits(), q.center.to_bits());
                            assert_eq!(p.half_width.to_bits(), q.half_width.to_bits());
                        }
                    }
                    (Err(ServiceError::Estimate(a)), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!("k-ary outcome mismatch: {a:?} vs {b:?}"),
                }
            }
        }
        let snap = service.snapshot_kary(CONFIDENCE).unwrap();
        let reference = serial.evaluate_all(CONFIDENCE).unwrap();
        assert!(
            kary_reports_identical(&snap, &reference),
            "final k-ary divergence: shards={n_shards} batch={batch}"
        );
    }
}

#[test]
fn ingest_continues_after_drain() {
    // Drain is a checkpoint, not shutdown: ingest before and after a
    // drain barrier, and the final snapshot still matches a serial
    // reference over everything.
    let inst = BinaryScenario::paper_default(8, 40, 0.9).generate(&mut rng(507));
    let data = inst.responses();
    let plan = ShardPlan::build_clustered(data, 2);
    let mut service =
        AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
    let mut serial = IncrementalEvaluator::new(
        data.n_workers(),
        data.n_tasks(),
        data.arity(),
        EstimatorConfig::default(),
    );
    let all: Vec<Response> = data.iter().collect();
    let cut = all.len() / 2;
    for chunk in all[..cut].chunks(16) {
        service.ingest_batch(chunk).unwrap();
    }
    service.drain().unwrap();
    // At the drain point the resident counts are settled and exact.
    let stats = service.stats().unwrap();
    let expect_routed: u64 = all[..cut]
        .iter()
        .map(|r| service.plan().closure_shards(r.worker).len() as u64)
        .sum();
    assert_eq!(
        stats.shards.iter().map(|s| s.responses).sum::<u64>(),
        expect_routed
    );
    for chunk in all[cut..].chunks(16) {
        service.ingest_batch(chunk).unwrap();
    }
    for r in &all {
        serial.ingest(*r).unwrap();
    }
    let snap = service.snapshot(CONFIDENCE).unwrap();
    let reference = serial.evaluate_all(CONFIDENCE).unwrap();
    assert!(reports_identical(&snap, &reference));
}

#[test]
fn empty_shards_route_and_snapshot_cleanly() {
    // More shards than workers: trailing shards have no anchors, no
    // closure and receive no ingest, yet the fleet snapshot and
    // per-worker requests behave exactly like the serial reference.
    let inst = BinaryScenario::paper_default(5, 30, 0.9).generate(&mut rng(509));
    let data = inst.responses();
    let plan = ShardPlan::build_clustered(data, 9);
    assert!(plan.shards().iter().any(|s| s.is_empty()));
    let mut service =
        AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
    let mut serial = IncrementalEvaluator::new(
        data.n_workers(),
        data.n_tasks(),
        data.arity(),
        EstimatorConfig::default(),
    );
    for r in data.iter() {
        service.ingest(r).unwrap();
        serial.ingest(r).unwrap();
    }
    let snap = service.snapshot(CONFIDENCE).unwrap();
    let reference = serial.evaluate_all(CONFIDENCE).unwrap();
    assert!(reports_identical(&snap, &reference));
    let stats = service.stats().unwrap();
    for shard in &stats.shards {
        let spec = &service.plan().shards()[shard.shard];
        if spec.is_empty() {
            assert_eq!(shard.responses, 0, "empty shards must see no ingest");
        }
    }
}

#[test]
fn invalid_requests_surface_the_data_taxonomy() {
    use crowd_data::{DataError, Label, TaskId};
    let inst = BinaryScenario::paper_default(6, 30, 0.9).generate(&mut rng(511));
    let data = inst.responses();
    let plan = ShardPlan::build_clustered(data, 2);
    let mut service =
        AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
    // Out-of-fleet worker: rejected before routing, nothing enqueued.
    let bogus = Response {
        worker: WorkerId(99),
        task: TaskId(0),
        label: Label(0),
    };
    assert!(matches!(
        service.ingest(bogus),
        Err(ServiceError::Data(DataError::UnknownId {
            kind: "worker",
            id: 99
        }))
    ));
    assert!(matches!(
        service.assess_worker(WorkerId(99), CONFIDENCE),
        Err(ServiceError::Data(DataError::UnknownId {
            kind: "worker",
            id: 99
        }))
    ));
    let stats = service.stats().unwrap();
    assert_eq!(stats.shards.iter().map(|s| s.responses).sum::<u64>(), 0);
    // A duplicate response is rejected by the substrate on every
    // subscribing shard but counted once fleet-wide (home shard).
    let first = data.iter().next().unwrap();
    service.ingest(first).unwrap();
    service.ingest(first).unwrap();
    service.drain().unwrap();
    let stats = service.stats().unwrap();
    assert_eq!(stats.total_rejected(), 1);
    // The resident copy is intact: snapshot still works.
    for r in data.iter().skip(1) {
        service.ingest(r).unwrap();
    }
    let mut serial = IncrementalEvaluator::new(
        data.n_workers(),
        data.n_tasks(),
        data.arity(),
        EstimatorConfig::default(),
    );
    for r in data.iter() {
        serial.ingest(r).unwrap();
    }
    let snap = service.snapshot(CONFIDENCE).unwrap();
    let reference = serial.evaluate_all(CONFIDENCE).unwrap();
    assert!(reports_identical(&snap, &reference));
}

#[test]
fn runtime_counters_reflect_the_stream() {
    // After a full stream + snapshot, the surfaced diagnostics are
    // live: batches counted, batch-size histogram populated, and the
    // substrate's gram/reanchor counters visible through the service.
    let inst = BinaryScenario::paper_default(10, 50, 0.9).generate(&mut rng(513));
    let data = inst.responses();
    let plan = ShardPlan::build_clustered(data, 2);
    let mut service =
        AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
    let all: Vec<Response> = data.iter().collect();
    let cut = all.len() / 2;
    for chunk in all[..cut].chunks(7) {
        service.ingest_batch(chunk).unwrap();
    }
    // First snapshot anchors every view; the second, after more
    // ingest, must have patched grams in place.
    service.snapshot(CONFIDENCE).unwrap();
    let before = service.stats().unwrap();
    for chunk in all[cut..].chunks(7) {
        service.ingest_batch(chunk).unwrap();
    }
    service.snapshot(CONFIDENCE).unwrap();
    let after = service.stats().unwrap();
    assert_eq!(after.submitted, all.len() as u64);
    assert!(after.batch_sizes.total() > 0);
    assert!(after.batch_sizes.counts()[3] > 0, "size-7 batches bucket");
    assert!(after.max_queue_high_water() >= 1);
    assert!(
        after.total_gram_patches() > before.total_gram_patches(),
        "second half of the stream must patch materialized grams in place"
    );
    assert!(after.total_reanchors() >= before.total_reanchors());
    // Shutdown serves the same counters from the joined threads.
    let finals = service.shutdown().unwrap();
    assert_eq!(finals.submitted, after.submitted);
    assert_eq!(
        finals.shards.iter().map(|s| s.responses).sum::<u64>(),
        after.shards.iter().map(|s| s.responses).sum::<u64>()
    );
}
