//! Differential tests pinning the incremental (report-cache) service
//! **bit-identical** to a cache-disabled twin at every drain point,
//! under randomized ingest/assess/drain interleavings, shard counts
//! (1, 2, 8), binary and k-ary — including mid-stream confidence
//! switches (the wholesale-invalidation path) and streams long enough
//! that views re-anchor between snapshots, so cached rows survive
//! substrate maintenance, not just quiet appends.
//!
//! The reference is the same runtime with
//! [`ServiceConfig::with_incremental`]`(false)`, fed exactly the same
//! responses in exactly the same order. The cached service must
//! reproduce its reports bit for bit (interval bits, triple counts,
//! failure taxonomy) at every comparison, while its cache counters
//! prove the fast path actually ran.

use crowd_core::{KaryWorkerReport, WorkerReport};
use crowd_data::{Response, ResponseMatrix, WorkerId};
use crowd_service::{AssessmentService, ServiceConfig, ServiceError};
use crowd_shard::ShardPlan;
use crowd_sim::{ArrivalSchedule, BinaryScenario, KaryScenario, rng};
use rand::RngExt;

fn reports_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.weights_fell_back == y.weights_fell_back
                && x.interval.center.to_bits() == y.interval.center.to_bits()
                && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
        })
        && a.failures
            .iter()
            .zip(&b.failures)
            .all(|(x, y)| x.0 == y.0 && x.1 == y.1)
}

fn kary_reports_identical(a: &KaryWorkerReport, b: &KaryWorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.intervals.len() == y.intervals.len()
                && x.intervals.iter().zip(&y.intervals).all(|(p, q)| {
                    p.center.to_bits() == q.center.to_bits()
                        && p.half_width.to_bits() == q.half_width.to_bits()
                })
        })
        && a.failures
            .iter()
            .zip(&b.failures)
            .all(|(x, y)| x.0 == y.0 && x.1 == y.1)
}

/// Spawns the cached service and its cache-disabled twin over the
/// same shard plan.
fn spawn_pair(data: &ResponseMatrix, n_shards: usize) -> (AssessmentService, AssessmentService) {
    assert!(
        ServiceConfig::default().incremental,
        "the report cache is the default service mode"
    );
    let cached = AssessmentService::spawn(
        ShardPlan::build_clustered(data, n_shards),
        data.n_tasks(),
        data.arity(),
        ServiceConfig::default(),
    );
    let full = AssessmentService::spawn(
        ShardPlan::build_clustered(data, n_shards),
        data.n_tasks(),
        data.arity(),
        ServiceConfig::default().with_incremental(false),
    );
    (cached, full)
}

#[test]
fn cached_service_is_bit_identical_to_uncached_binary() {
    let inst = BinaryScenario::paper_default(12, 60, 0.85).generate(&mut rng(821));
    let data = inst.responses();
    for &n_shards in &[1usize, 2, 8] {
        let (mut cached, mut full) = spawn_pair(data, n_shards);
        let mut dice = rng(900 + n_shards as u64);
        let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(77));
        let batches: Vec<&[Response]> = sched.batches(16).collect();
        let mid = batches.len() / 2;
        let mut confidence = 0.9;
        for (i, group) in batches.iter().enumerate() {
            cached.ingest_batch(group).unwrap();
            full.ingest_batch(group).unwrap();
            if i + 1 == mid {
                // Guarantee live cached rows, then switch confidence:
                // the next request must take the wholesale-invalidation
                // path and still agree bit for bit.
                let a = cached.snapshot(confidence).unwrap();
                let b = full.snapshot(confidence).unwrap();
                assert!(reports_identical(&a, &b), "pre-switch divergence");
                confidence = 0.95;
            }
            if dice.random::<f64>() < 0.35 {
                let a = cached.snapshot(confidence).unwrap();
                let b = full.snapshot(confidence).unwrap();
                assert!(
                    reports_identical(&a, &b),
                    "drain-point divergence: shards={n_shards} batch={i}"
                );
            }
            if dice.random::<f64>() < 0.3 {
                let w = WorkerId(dice.random::<u32>() % data.n_workers() as u32);
                match (
                    cached.assess_worker(w, confidence),
                    full.assess_worker(w, confidence),
                ) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.interval.center.to_bits(), b.interval.center.to_bits());
                        assert_eq!(
                            a.interval.half_width.to_bits(),
                            b.interval.half_width.to_bits()
                        );
                        assert_eq!(a.triples_used, b.triples_used);
                    }
                    (Err(ServiceError::Estimate(a)), Err(ServiceError::Estimate(b))) => {
                        assert_eq!(a, b)
                    }
                    (a, b) => panic!("outcome mismatch for {w:?}: {a:?} vs {b:?}"),
                }
            }
        }
        // Final drain point, then a quiet repeat: no ingest between
        // them, so the second snapshot must be served entirely from
        // cache — identical bits, zero new misses.
        let a = cached.snapshot(confidence).unwrap();
        let b = full.snapshot(confidence).unwrap();
        assert!(
            reports_identical(&a, &b),
            "final divergence shards={n_shards}"
        );
        let before = cached.stats().unwrap();
        let a2 = cached.snapshot(confidence).unwrap();
        assert!(reports_identical(&a2, &b), "quiet-drain divergence");
        let after = cached.stats().unwrap();
        assert_eq!(
            after.total_cache_misses(),
            before.total_cache_misses(),
            "a quiet snapshot must not re-evaluate anyone"
        );
        assert!(after.total_cache_hits() > before.total_cache_hits());
        assert!(
            after.total_cache_full_refreshes() > 0,
            "the confidence switch must have invalidated wholesale"
        );
        assert!(
            after.total_reanchors() > 0,
            "the stream must be long enough to re-anchor views mid-stream"
        );
        // The uncached twin never touches a cache.
        let fs = full.stats().unwrap();
        assert_eq!(
            fs.total_cache_hits() + fs.total_cache_misses() + fs.total_cache_full_refreshes(),
            0,
            "with_incremental(false) must bypass the cache entirely"
        );
    }
}

#[test]
fn cached_service_is_bit_identical_to_uncached_kary() {
    let inst = KaryScenario::paper_default(3, 60, 0.85)
        .with_workers(9)
        .generate(&mut rng(823));
    let data = inst.responses();
    for &n_shards in &[1usize, 2, 8] {
        let (mut cached, mut full) = spawn_pair(data, n_shards);
        let mut dice = rng(1100 + n_shards as u64);
        let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(78));
        let batches: Vec<&[Response]> = sched.batches(16).collect();
        let mid = batches.len() / 2;
        let mut confidence = 0.9;
        for (i, group) in batches.iter().enumerate() {
            cached.ingest_batch(group).unwrap();
            full.ingest_batch(group).unwrap();
            if i + 1 == mid {
                let a = cached.snapshot_kary(confidence).unwrap();
                let b = full.snapshot_kary(confidence).unwrap();
                assert!(
                    kary_reports_identical(&a, &b),
                    "pre-switch k-ary divergence"
                );
                confidence = 0.95;
            }
            if dice.random::<f64>() < 0.35 {
                let a = cached.snapshot_kary(confidence).unwrap();
                let b = full.snapshot_kary(confidence).unwrap();
                assert!(
                    kary_reports_identical(&a, &b),
                    "k-ary drain-point divergence: shards={n_shards} batch={i}"
                );
            }
            if dice.random::<f64>() < 0.3 {
                let w = WorkerId(dice.random::<u32>() % data.n_workers() as u32);
                match (
                    cached.assess_worker_kary(w, confidence),
                    full.assess_worker_kary(w, confidence),
                ) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.triples_used, b.triples_used);
                        for (p, q) in a.intervals.iter().zip(&b.intervals) {
                            assert_eq!(p.center.to_bits(), q.center.to_bits());
                            assert_eq!(p.half_width.to_bits(), q.half_width.to_bits());
                        }
                    }
                    (Err(ServiceError::Estimate(a)), Err(ServiceError::Estimate(b))) => {
                        assert_eq!(a, b)
                    }
                    (a, b) => panic!("k-ary outcome mismatch for {w:?}: {a:?} vs {b:?}"),
                }
            }
        }
        let a = cached.snapshot_kary(confidence).unwrap();
        let b = full.snapshot_kary(confidence).unwrap();
        assert!(
            kary_reports_identical(&a, &b),
            "final k-ary divergence shards={n_shards}"
        );
        let stats = cached.stats().unwrap();
        assert!(stats.total_cache_misses() > 0);
        assert!(
            stats.total_cache_full_refreshes() > 0,
            "the k-ary confidence switch must have invalidated wholesale"
        );
    }
}

#[test]
fn explicit_worker_sets_share_cache_rows_with_snapshots() {
    // assess_workers rides the same per-anchor cache as snapshot: a
    // snapshot primes the rows, and a quiet explicit-set request is
    // then all hits while agreeing with the uncached twin bit for bit.
    let inst = BinaryScenario::paper_default(10, 50, 0.9).generate(&mut rng(829));
    let data = inst.responses();
    let (mut cached, mut full) = spawn_pair(data, 2);
    let all: Vec<Response> = data.iter().collect();
    for chunk in all.chunks(32) {
        cached.ingest_batch(chunk).unwrap();
        full.ingest_batch(chunk).unwrap();
    }
    let a = cached.snapshot(0.9).unwrap();
    let b = full.snapshot(0.9).unwrap();
    assert!(reports_identical(&a, &b));
    let before = cached.stats().unwrap();
    let set: Vec<WorkerId> = (0..data.n_workers() as u32)
        .step_by(2)
        .map(WorkerId)
        .collect();
    let a = cached.assess_workers(&set, 0.9).unwrap();
    let b = full.assess_workers(&set, 0.9).unwrap();
    assert!(reports_identical(&a, &b));
    let after = cached.stats().unwrap();
    assert_eq!(
        after.total_cache_misses(),
        before.total_cache_misses(),
        "a quiet explicit-set request after a snapshot must be all hits"
    );
    assert!(after.total_cache_hits() > before.total_cache_hits());
}
