//! Differential tests pinning crash recovery **bit-identical**: a
//! service with deterministic injected shard panics
//! ([`crowd_service::FaultPlan`]) must, after checkpoint-restore and
//! WAL replay, produce drain-point reports bit-for-bit equal to a
//! never-crashed twin fed exactly the same batches — across shard
//! counts (1, 2, 8), crash points (mid-batch, at the drain barrier,
//! during drain-point evaluation), binary and k-ary.
//!
//! Fault visibility contract exercised here:
//!
//! * [`CrashPoint::MidBatch`] is invisible to callers — ingest uses
//!   the blocking policy, so submissions just wait out the recovery.
//! * [`CrashPoint::AtDrain`] / [`CrashPoint::DuringReanchor`] fail the
//!   one call whose reply died with the shard
//!   ([`ServiceError::ShardUnavailable`]); a bounded retry of that
//!   call lands after recovery and must succeed with correct results.

use std::sync::Arc;

use crowd_core::{KaryWorkerReport, WorkerReport};
use crowd_data::{Response, ResponseMatrix};
use crowd_service::{AssessmentService, CrashPoint, FaultPlan, ServiceConfig, ServiceError};
use crowd_shard::ShardPlan;
use crowd_sim::{ArrivalSchedule, BinaryScenario, KaryScenario, rng};

const CONFIDENCE: f64 = 0.9;

fn reports_identical(a: &WorkerReport, b: &WorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.weights_fell_back == y.weights_fell_back
                && x.interval.center.to_bits() == y.interval.center.to_bits()
                && x.interval.half_width.to_bits() == y.interval.half_width.to_bits()
        })
        && a.failures
            .iter()
            .zip(&b.failures)
            .all(|(x, y)| x.0 == y.0 && x.1 == y.1)
}

fn kary_reports_identical(a: &KaryWorkerReport, b: &KaryWorkerReport) -> bool {
    a.assessments.len() == b.assessments.len()
        && a.failures.len() == b.failures.len()
        && a.assessments.iter().zip(&b.assessments).all(|(x, y)| {
            x.worker == y.worker
                && x.triples_used == y.triples_used
                && x.intervals.len() == y.intervals.len()
                && x.intervals.iter().zip(&y.intervals).all(|(p, q)| {
                    p.center.to_bits() == q.center.to_bits()
                        && p.half_width.to_bits() == q.half_width.to_bits()
                })
        })
        && a.failures
            .iter()
            .zip(&b.failures)
            .all(|(x, y)| x.0 == y.0 && x.1 == y.1)
}

/// Calls `f`, retrying (bounded) the typed one-call failure an armed
/// crash point inflicts on the in-flight request. Anything else is a
/// test failure.
fn with_crash_retry<T>(mut f: impl FnMut() -> Result<T, ServiceError>) -> T {
    for _ in 0..8 {
        match f() {
            Ok(v) => return v,
            // The call whose reply channel died with the crashing
            // shard; recovery keeps the queue alive, so the retry
            // simply waits its turn behind the respawn.
            Err(ServiceError::ShardUnavailable { .. }) => continue,
            Err(other) => panic!("unexpected service error: {other:?}"),
        }
    }
    panic!("call did not succeed within the retry budget");
}

/// One binary differential run: stream identical batches into a
/// faulted service and a never-crashed twin, compare mid-stream and
/// final snapshots bit for bit, and require the fault to have actually
/// fired (recoveries counted).
fn run_binary(data: &ResponseMatrix, n_shards: usize, crash: CrashPoint, seed: u64) {
    let fault = Arc::new(
        FaultPlan::seeded(seed)
            .with_panic_at(0, 2)
            .with_panic_at(0, 5)
            .with_crash_point(crash),
    );
    let base = ServiceConfig::default().with_checkpoint_interval(3);
    let mut faulted = AssessmentService::spawn(
        ShardPlan::build_clustered(data, n_shards),
        data.n_tasks(),
        data.arity(),
        base.clone().with_fault(fault),
    );
    let mut twin = AssessmentService::spawn(
        ShardPlan::build_clustered(data, n_shards),
        data.n_tasks(),
        data.arity(),
        base,
    );
    let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(seed));
    let batches: Vec<&[Response]> = sched.batches(16).collect();
    let mid = batches.len() / 2;
    for (i, group) in batches.iter().enumerate() {
        faulted.ingest_batch(group).unwrap();
        twin.ingest_batch(group).unwrap();
        if i + 1 == mid {
            with_crash_retry(|| faulted.drain());
            let a = with_crash_retry(|| faulted.snapshot(CONFIDENCE));
            let b = twin.snapshot(CONFIDENCE).unwrap();
            assert!(
                reports_identical(&a, &b),
                "mid-stream snapshot diverged ({n_shards} shards, {crash:?})"
            );
        }
    }
    with_crash_retry(|| faulted.drain());
    let a = with_crash_retry(|| faulted.snapshot(CONFIDENCE));
    let b = twin.snapshot(CONFIDENCE).unwrap();
    assert!(
        reports_identical(&a, &b),
        "final snapshot diverged ({n_shards} shards, {crash:?})"
    );
    let stats = with_crash_retry(|| faulted.stats());
    assert!(
        stats.total_recoveries() >= 1,
        "the injected fault never fired ({n_shards} shards, {crash:?})"
    );
    assert_eq!(
        twin.stats().unwrap().total_recoveries(),
        0,
        "the twin must never crash"
    );
    // Response totals agree too: WAL replay delivered every response
    // exactly once.
    assert_eq!(
        stats.shards.iter().map(|s| s.responses).sum::<u64>(),
        twin.stats()
            .unwrap()
            .shards
            .iter()
            .map(|s| s.responses)
            .sum::<u64>(),
    );
    faulted.shutdown().unwrap();
    twin.shutdown().unwrap();
}

/// The k-ary twin of [`run_binary`].
fn run_kary(data: &ResponseMatrix, n_shards: usize, crash: CrashPoint, seed: u64) {
    let fault = Arc::new(
        FaultPlan::seeded(seed)
            .with_panic_at(0, 3)
            .with_crash_point(crash),
    );
    let base = ServiceConfig::default().with_checkpoint_interval(2);
    let mut faulted = AssessmentService::spawn(
        ShardPlan::build_clustered(data, n_shards),
        data.n_tasks(),
        data.arity(),
        base.clone().with_fault(fault),
    );
    let mut twin = AssessmentService::spawn(
        ShardPlan::build_clustered(data, n_shards),
        data.n_tasks(),
        data.arity(),
        base,
    );
    let sched = ArrivalSchedule::poisson(data, 1000.0, &mut rng(seed));
    for group in sched.batches(16) {
        faulted.ingest_batch(group).unwrap();
        twin.ingest_batch(group).unwrap();
    }
    with_crash_retry(|| faulted.drain());
    let a = with_crash_retry(|| faulted.snapshot_kary(CONFIDENCE));
    let b = twin.snapshot_kary(CONFIDENCE).unwrap();
    assert!(
        kary_reports_identical(&a, &b),
        "k-ary snapshot diverged ({n_shards} shards, {crash:?})"
    );
    assert!(with_crash_retry(|| faulted.stats()).total_recoveries() >= 1);
    faulted.shutdown().unwrap();
    twin.shutdown().unwrap();
}

fn binary_data() -> ResponseMatrix {
    BinaryScenario::paper_default(12, 80, 0.9)
        .generate(&mut rng(17))
        .responses()
        .clone()
}

fn kary_data() -> ResponseMatrix {
    KaryScenario::paper_default(3, 90, 0.9)
        .with_workers(12)
        .generate(&mut rng(19))
        .responses()
        .clone()
}

#[test]
fn recovered_reports_match_never_crashed_twin_mid_batch() {
    let data = binary_data();
    for n_shards in [1usize, 2, 8] {
        run_binary(&data, n_shards, CrashPoint::MidBatch, 101 + n_shards as u64);
    }
}

#[test]
fn recovered_reports_match_never_crashed_twin_at_drain() {
    let data = binary_data();
    for n_shards in [1usize, 2, 8] {
        run_binary(&data, n_shards, CrashPoint::AtDrain, 201 + n_shards as u64);
    }
}

#[test]
fn recovered_reports_match_never_crashed_twin_during_reanchor() {
    let data = binary_data();
    for n_shards in [1usize, 2, 8] {
        run_binary(
            &data,
            n_shards,
            CrashPoint::DuringReanchor,
            301 + n_shards as u64,
        );
    }
}

#[test]
fn recovered_kary_reports_match_never_crashed_twin() {
    let data = kary_data();
    for n_shards in [1usize, 2, 8] {
        for crash in [
            CrashPoint::MidBatch,
            CrashPoint::AtDrain,
            CrashPoint::DuringReanchor,
        ] {
            run_kary(&data, n_shards, crash, 401 + n_shards as u64);
        }
    }
}

/// A panic *rate* (rather than explicit sites) across a longer stream:
/// multiple recoveries, reports still bit-identical.
#[test]
fn repeated_random_crashes_stay_bit_identical() {
    let data = binary_data();
    let fault = Arc::new(FaultPlan::seeded(777).with_panic_rate(0.08));
    let base = ServiceConfig::default()
        .with_checkpoint_interval(4)
        .with_max_recoveries(64);
    let mut faulted = AssessmentService::spawn(
        ShardPlan::build_clustered(&data, 2),
        data.n_tasks(),
        data.arity(),
        base.clone().with_fault(fault),
    );
    let mut twin = AssessmentService::spawn(
        ShardPlan::build_clustered(&data, 2),
        data.n_tasks(),
        data.arity(),
        base,
    );
    let sched = ArrivalSchedule::poisson(&data, 1000.0, &mut rng(23));
    for group in sched.batches(8) {
        faulted.ingest_batch(group).unwrap();
        twin.ingest_batch(group).unwrap();
    }
    with_crash_retry(|| faulted.drain());
    let a = with_crash_retry(|| faulted.snapshot(CONFIDENCE));
    let b = twin.snapshot(CONFIDENCE).unwrap();
    assert!(reports_identical(&a, &b));
    let recoveries = with_crash_retry(|| faulted.stats()).total_recoveries();
    assert!(
        recoveries >= 2,
        "rate 0.08 over the stream: got {recoveries}"
    );
    faulted.shutdown().unwrap();
    twin.shutdown().unwrap();
}
