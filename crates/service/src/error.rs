//! The service-level error taxonomy.
//!
//! Everything a caller can see folds the workspace's existing error
//! types in rather than inventing parallel ones: data validation
//! failures surface as [`crowd_data::DataError`] and estimation
//! failures as [`crowd_core::EstimateError`], with only the
//! runtime-specific conditions (full queues, shutdown, lost shards)
//! added on top.

use crowd_core::EstimateError;
use crowd_data::DataError;

/// Why a service call failed; see the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A shard's bounded queue was full under
    /// [`crate::BackpressurePolicy::Reject`]. Earlier shard groups of
    /// the same batch may already be enqueued; `dropped` counts the
    /// per-shard deliveries that were not.
    QueueFull {
        /// The shard whose queue was full.
        shard: usize,
        /// Per-shard response deliveries not enqueued.
        dropped: usize,
    },
    /// The service has been shut down; no further ingest or
    /// assessment is possible.
    ShuttingDown,
    /// A shard thread is gone (its queue disconnected) — the runtime
    /// invariant is that this only happens after a panic in shard
    /// code, never as part of normal shutdown.
    ShardUnavailable {
        /// The unreachable shard.
        shard: usize,
    },
    /// A shard thread panicked; discovered when its thread is joined
    /// at shutdown. Its counters are unrecoverable, so
    /// [`crate::ServiceHandle::stats`] and
    /// [`crate::ServiceHandle::shutdown`] report the dead shard
    /// instead of fabricating zeroed stats for it.
    ShardPanicked {
        /// The shard whose thread died.
        shard: usize,
    },
    /// The wire protocol layer rejected a frame (truncated, oversized,
    /// unknown opcode, malformed payload) or an unexpected reply. The
    /// message carries the decoder's diagnosis.
    Wire(String),
    /// A transport (socket) error between a wire client and server;
    /// the message carries the underlying `std::io::Error` rendering.
    Io(String),
    /// Request validation failed before routing (unknown worker id,
    /// …).
    Data(DataError),
    /// The estimator itself failed (not enough workers, no usable
    /// triples, …) — the same taxonomy the library calls return.
    Estimate(EstimateError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { shard, dropped } => {
                write!(f, "shard {shard} queue full; {dropped} deliveries dropped")
            }
            Self::ShuttingDown => write!(f, "assessment service is shutting down"),
            Self::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is unavailable")
            }
            Self::ShardPanicked { shard } => {
                write!(
                    f,
                    "shard {shard}'s thread panicked; its final stats are lost"
                )
            }
            Self::Wire(msg) => write!(f, "wire protocol error: {msg}"),
            Self::Io(msg) => write!(f, "transport error: {msg}"),
            Self::Data(e) => write!(f, "invalid request: {e}"),
            Self::Estimate(e) => write!(f, "estimation failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Data(e) => Some(e),
            Self::Estimate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for ServiceError {
    fn from(e: DataError) -> Self {
        Self::Data(e)
    }
}

impl From<EstimateError> for ServiceError {
    fn from(e: EstimateError) -> Self {
        Self::Estimate(e)
    }
}
