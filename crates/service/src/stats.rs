//! Runtime counters: queue health, batching shape and the streaming
//! substrate's maintenance diagnostics, aggregated fleet-wide.

/// Counters one shard thread maintains and reports (via
/// [`crate::AssessmentService::stats`], and finally when it exits).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard id (position in the plan).
    pub shard: usize,
    /// Ingest batches this shard processed.
    pub batches: u64,
    /// Responses recorded into this shard's index (a response routed
    /// to several subscribing shards counts once in each).
    pub responses: u64,
    /// Invalid responses rejected by the substrate
    /// ([`crowd_data::DataError`]), counted at the worker's home
    /// shard only so the fleet total is exact.
    pub rejected: u64,
    /// Assessment requests (per-worker and anchor-set) answered.
    pub assess_requests: u64,
    /// Lazy view re-anchors in the shard's streaming substrate
    /// ([`crowd_data::StreamingIndex::reanchor_count`]).
    pub reanchors: usize,
    /// In-place gram patch operations
    /// ([`crowd_data::StreamingIndex::gram_patch_count`]).
    pub gram_patches: usize,
    /// Full gram materializations
    /// ([`crowd_data::StreamingIndex::gram_rebuild_count`]).
    pub gram_rebuilds: usize,
    /// High-water mark of the shard's bounded queue, in messages.
    pub queue_high_water: usize,
    /// Report-cache rows served without re-evaluation (binary + k-ary
    /// caches combined; see `crowd_core::cached`). Zero when the
    /// service runs with [`crate::ServiceConfig::incremental`] off.
    pub cache_hits: u64,
    /// Report-cache rows (re-)evaluated because they were absent or
    /// dirtied by ingest since their cached version — the dirty-set
    /// work drains actually paid for.
    pub cache_misses: u64,
    /// Wholesale cache invalidations (requests switched confidence
    /// level).
    pub cache_full_refreshes: u64,
    /// Times this shard was respawned from its last checkpoint after a
    /// panic (see [`crate::ServiceConfig::checkpoint_interval`]).
    /// Survives the recovery itself: the counter is authoritative in
    /// the supervisor, not the discarded worker state.
    pub recoveries: u64,
    /// Periodic checkpoints taken (the spawn-time checkpoint of the
    /// empty substrate is not counted).
    pub checkpoints: u64,
    /// Responses replayed from the write-ahead log across all
    /// recoveries of this shard.
    pub wal_replayed: u64,
}

/// Power-of-two histogram of ingest batch sizes, built on the shared
/// `crowd_obs` log₂ bucket rule ([`crowd_obs::bucket_index`]): bucket
/// 0 counts **empty batches only**, bucket `i ≥ 1` counts batches
/// with `2^(i-1) ≤ size < 2^i` responses, and the last bucket is
/// open-ended. (Before `crowd_obs`, size 0 was silently folded into
/// the size-1 bucket; the zero bucket keeps degenerate empty submits
/// visible.)
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchHistogram {
    buckets: [u64; Self::BUCKETS],
}

impl BatchHistogram {
    /// Number of buckets (size 0, then 1 … ≥ 2¹⁰).
    pub const BUCKETS: usize = 12;

    /// Records one batch of `size` responses.
    pub fn record(&mut self, size: usize) {
        let bucket = crowd_obs::bucket_index(size as u64).min(Self::BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// The bucket counts, smallest sizes first.
    pub fn counts(&self) -> &[u64; Self::BUCKETS] {
        &self.buckets
    }

    /// Rebuilds a histogram from previously-reported bucket counts —
    /// the constructor wire decoding uses to carry a histogram across
    /// a connection losslessly.
    pub fn from_counts(counts: [u64; Self::BUCKETS]) -> Self {
        Self { buckets: counts }
    }

    /// Inclusive lower bound of bucket `i`
    /// ([`crowd_obs::bucket_lower_bound`]): 0, then `2^(i-1)`.
    pub fn lower_bound(i: usize) -> usize {
        crowd_obs::bucket_lower_bound(i) as usize
    }

    /// Total batches recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// A fleet-wide stats snapshot; see
/// [`crate::AssessmentService::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardStats>,
    /// Responses submitted through the handle (before routing
    /// fan-out; shed responses included).
    pub submitted: u64,
    /// Shard-bound groups shed under
    /// [`crate::BackpressurePolicy::Shed`].
    pub dropped_batches: u64,
    /// Per-shard response deliveries lost to shedding or rejection.
    pub dropped_responses: u64,
    /// Ingest batch sizes, as submitted by callers.
    pub batch_sizes: BatchHistogram,
}

impl ServiceStats {
    /// Fleet total of lazy view re-anchors.
    pub fn total_reanchors(&self) -> usize {
        self.shards.iter().map(|s| s.reanchors).sum()
    }

    /// Fleet total of in-place gram patches.
    pub fn total_gram_patches(&self) -> usize {
        self.shards.iter().map(|s| s.gram_patches).sum()
    }

    /// Fleet total of full gram materializations.
    pub fn total_gram_rebuilds(&self) -> usize {
        self.shards.iter().map(|s| s.gram_rebuilds).sum()
    }

    /// Fleet total of invalid responses rejected (home-shard
    /// accounting, so each bad response counts once).
    pub fn total_rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Fleet total of report-cache rows served without re-evaluation.
    pub fn total_cache_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_hits).sum()
    }

    /// Fleet total of report-cache rows (re-)evaluated.
    pub fn total_cache_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_misses).sum()
    }

    /// Fleet total of wholesale cache invalidations.
    pub fn total_cache_full_refreshes(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_full_refreshes).sum()
    }

    /// Fleet total of shard respawns from checkpoint.
    pub fn total_recoveries(&self) -> u64 {
        self.shards.iter().map(|s| s.recoveries).sum()
    }

    /// Fleet total of periodic checkpoints taken.
    pub fn total_checkpoints(&self) -> u64 {
        self.shards.iter().map(|s| s.checkpoints).sum()
    }

    /// Fleet total of WAL responses replayed during recoveries.
    pub fn total_wal_replayed(&self) -> u64 {
        self.shards.iter().map(|s| s.wal_replayed).sum()
    }

    /// The deepest any shard queue ever got, in messages.
    pub fn max_queue_high_water(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.queue_high_water)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = BatchHistogram::default();
        for size in [0usize, 1, 1, 2, 3, 4, 7, 8, 256, 4096, 1 << 20] {
            h.record(size);
        }
        let c = h.counts();
        assert_eq!(c[0], 1, "empty batches get their own bucket");
        assert_eq!(c[1], 2, "sizes 1, 1");
        assert_eq!(c[2], 2, "sizes 2, 3");
        assert_eq!(c[3], 2, "sizes 4, 7");
        assert_eq!(c[4], 1, "size 8");
        assert_eq!(c[9], 1, "size 256");
        assert_eq!(c[11], 2, "sizes ≥ 1024 share the open bucket");
        assert_eq!(h.total(), 11);
        assert_eq!(BatchHistogram::lower_bound(9), 256);
        assert_eq!(BatchHistogram::lower_bound(0), 0);
    }
}
