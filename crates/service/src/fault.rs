//! Deterministic seeded fault injection — the harness the recovery
//! tests, the wire retry tests and the `scaling_pr10` bench all share.
//!
//! A [`FaultPlan`] decides, purely as a function of its seed and the
//! operation's coordinates (shard + batch ordinal for panics,
//! connection + frame ordinal for drops), whether a fault fires. The
//! same plan therefore injects the same faults on every run, which is
//! what lets the differential suites pin recovered state bit-identical
//! to a never-crashed twin: both sides see the same deterministic
//! workload, only one sees the faults.
//!
//! Three fault families:
//!
//! * **Shard panics** ([`FaultPlan::panic_for`]) — consumed by the
//!   shard supervision loop. Where the panic lands is a
//!   [`CrashPoint`]: mid-batch (half the batch applied, then death),
//!   at the next drain barrier, or during drain-point evaluation
//!   right after a view re-anchor.
//! * **Connection drops** ([`FaultPlan::should_drop`]) — consumed by
//!   the wire server, which severs the connection after applying a
//!   request but before replying: the ambiguous-outcome window the
//!   retrying client's sequence-id dedup exists for.
//! * **Delayed replies** ([`FaultPlan::reply_delay`]) — a fixed
//!   server-side stall before every reply write, for timeout-path
//!   testing.

use std::time::Duration;

/// Where an injected shard panic lands; see [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPoint {
    /// Die halfway through applying the ingest batch: the recovery
    /// path must discard the half-applied suffix state and replay the
    /// whole batch from the WAL.
    #[default]
    MidBatch,
    /// Arm the fault at the batch, fire it when the shard handles its
    /// next drain barrier: the caller's drain fails once, recovery
    /// runs, a retried drain succeeds.
    AtDrain,
    /// Arm the fault at the batch, fire it at the shard's next
    /// assessment message — after forcing a view re-anchor, so the
    /// panic interrupts evaluation state mid-mutation.
    DuringReanchor,
}

/// A deterministic seeded fault schedule; see the [module docs](self).
/// Cheap to share (`Arc`) between a service config, a wire config and
/// the test driving both.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Per-(shard, batch) panic probability in `[0, 1]`.
    panic_rate: f64,
    /// Explicit (shard, 1-based batch ordinal) panic sites.
    panic_at: Vec<(usize, u64)>,
    crash_point: CrashPoint,
    /// Per-(connection, frame) drop probability in `[0, 1]`.
    drop_rate: f64,
    /// Explicit (connection ordinal, 1-based frame ordinal) drop
    /// sites.
    drop_at: Vec<(u64, u64)>,
    reply_delay: Option<Duration>,
}

/// `splitmix64` — the same tiny deterministic mixer the workspace's
/// vendored `rand` builds on; good avalanche, no state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic Bernoulli: true with probability `rate`, decided by
/// hashing the coordinates under `seed`.
fn decide(seed: u64, domain: u64, a: u64, b: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let h = splitmix64(seed ^ splitmix64(domain ^ splitmix64(a ^ splitmix64(b))));
    // Compare in the integer domain: rate · 2⁶⁴ as a threshold.
    (h as f64) < rate * (u64::MAX as f64)
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Sets the per-(shard, batch) panic probability.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Adds an explicit panic site: shard `shard`'s `batch`-th ingest
    /// batch (1-based).
    pub fn with_panic_at(mut self, shard: usize, batch: u64) -> Self {
        self.panic_at.push((shard, batch));
        self
    }

    /// Sets where injected panics land (default
    /// [`CrashPoint::MidBatch`]).
    pub fn with_crash_point(mut self, point: CrashPoint) -> Self {
        self.crash_point = point;
        self
    }

    /// Sets the per-(connection, frame) drop probability.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Adds an explicit drop site: connection `conn`'s `frame`-th
    /// request frame (both 1-based; connections are numbered in accept
    /// order).
    pub fn with_drop_at(mut self, conn: u64, frame: u64) -> Self {
        self.drop_at.push((conn, frame));
        self
    }

    /// Stalls every server reply by `delay`.
    pub fn with_reply_delay(mut self, delay: Duration) -> Self {
        self.reply_delay = Some(delay);
        self
    }

    /// Whether (and where) shard `shard` panics while handling its
    /// `batch`-th ingest batch (1-based, monotone across recoveries).
    pub fn panic_for(&self, shard: usize, batch: u64) -> Option<CrashPoint> {
        let hit = self.panic_at.contains(&(shard, batch))
            || decide(self.seed, 0x50414e49, shard as u64, batch, self.panic_rate);
        hit.then_some(self.crash_point)
    }

    /// Whether the server severs connection `conn` after handling its
    /// `frame`-th request (1-based) instead of replying.
    pub fn should_drop(&self, conn: u64, frame: u64) -> bool {
        self.drop_at.contains(&(conn, frame))
            || decide(self.seed, 0x44524f50, conn, frame, self.drop_rate)
    }

    /// The configured reply stall, if any.
    pub fn reply_delay(&self) -> Option<Duration> {
        self.reply_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_sites_fire_exactly() {
        let plan = FaultPlan::seeded(7)
            .with_panic_at(1, 3)
            .with_crash_point(CrashPoint::AtDrain)
            .with_drop_at(2, 5);
        assert_eq!(plan.panic_for(1, 3), Some(CrashPoint::AtDrain));
        assert_eq!(plan.panic_for(1, 2), None);
        assert_eq!(plan.panic_for(0, 3), None);
        assert!(plan.should_drop(2, 5));
        assert!(!plan.should_drop(2, 4));
    }

    #[test]
    fn rates_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::seeded(42).with_panic_rate(0.01);
        let twin = FaultPlan::seeded(42).with_panic_rate(0.01);
        let mut hits = 0u32;
        for batch in 1..=10_000u64 {
            let a = plan.panic_for(0, batch).is_some();
            assert_eq!(a, twin.panic_for(0, batch).is_some(), "determinism");
            hits += u32::from(a);
        }
        // 1% of 10k with generous slack: the decision is a hash, not a
        // statistical RNG, but it should not be wildly off.
        assert!((30..=300).contains(&hits), "got {hits} hits");
        // A different seed explores a different schedule.
        let other = FaultPlan::seeded(43).with_panic_rate(0.01);
        let diverges = (1..=1000u64)
            .any(|b| plan.panic_for(0, b).is_some() != other.panic_for(0, b).is_some());
        assert!(diverges);
    }

    #[test]
    fn zero_and_one_rates_short_circuit() {
        let never = FaultPlan::seeded(1);
        assert_eq!(never.panic_for(0, 1), None);
        assert!(!never.should_drop(0, 1));
        let always = FaultPlan::seeded(1).with_drop_rate(1.0);
        assert!(always.should_drop(9, 9));
    }
}
