//! Pipelined assessment runtime: thread-per-shard ingest and
//! assessment over the streaming substrate.
//!
//! The estimators are fast as library calls; this crate is the
//! concurrent front that turns them into a *service*. One OS thread
//! per [`crowd_shard::ShardPlan`] shard owns that shard's
//! [`crowd_data::StreamingIndex`] (sparse pair backend, rows only for
//! the shard's closure) and drains a bounded MPSC queue of messages:
//!
//! ```text
//!                    ┌─ bounded queue ─ shard thread 0 ─ StreamingIndex₀
//!  ingest batch ──►  │
//!  (grouped by   ──► ├─ bounded queue ─ shard thread 1 ─ StreamingIndex₁
//!   closure_shards)  │
//!  assess/snapshot ► └─ bounded queue ─ shard thread 2 ─ StreamingIndex₂
//!                                │
//!                     replies / merged reports (merge_reports)
//! ```
//!
//! * **Routing** — a response from worker `w` is delivered to every
//!   shard in [`crowd_shard::ShardPlan::closure_shards`]`(w)`: each
//!   such shard's index holds `w`'s full row, so all of them must see
//!   the response for per-shard state to stay bit-identical to the
//!   unsharded substrate. Assessment requests route to the home shard
//!   ([`crowd_shard::ShardPlan::shard_of`]) alone.
//! * **Batching** — [`AssessmentService::ingest_batch`] groups a batch
//!   by subscribing shard and hands each shard one contiguous
//!   [`Vec`], so queue traffic and wakeups are per *batch*, not per
//!   response.
//! * **Backpressure** — queues are bounded
//!   ([`ServiceConfig::queue_capacity`]); a full queue blocks the
//!   caller, sheds the batch with accounting, or fails the call with
//!   [`ServiceError::QueueFull`], per [`BackpressurePolicy`].
//! * **Ordering** — each shard processes its queue in FIFO order, so
//!   any assessment enqueued after an ingest observes it, and a
//!   [`AssessmentService::drain`] barrier (or a snapshot, which rides
//!   the same queues) observes *all* prior ingests.
//! * **Bit-identity** — per-shard snapshot reports recombine through
//!   [`crowd_shard::merge_reports`] /
//!   [`crowd_shard::merge_kary_reports`]; at every drain point the
//!   merged report is bit-identical to a single-threaded
//!   [`crowd_core::IncrementalEvaluator`] /
//!   [`crowd_core::KaryIncrementalEvaluator`] fed the same responses,
//!   in any arrival order (`tests/pipeline_equivalence.rs`).
//!
//! # Per-request cost
//!
//! | Request                    | Queue traffic        | Shard-side cost |
//! |----------------------------|----------------------|-----------------|
//! | `ingest_batch` (size `B`)  | ≤ shards msgs        | `O(log r + r_t)` per response (index insert + pair/view patches) |
//! | `assess_worker` (binary)   | 1 msg + 1 reply      | pairing + triple pipeline over maintained views (no rescan) |
//! | `assess_worker_kary`       | 1 msg + 1 reply      | A3 pipelines + `n₅` popcounts on maintained views |
//! | `assess_workers` (`W` ids) | `W` msgs + `W` replies | per-worker pipelines, home shards evaluate concurrently |
//! | `snapshot` / `snapshot_kary` | 1 msg + reply per shard | anchors-only evaluation, merged in canonical order |
//! | `drain`                    | 1 msg + reply per shard | none (FIFO barrier) |
//!
//! [`AssessmentService`] uniquely owns the fleet (drop = graceful
//! shutdown); [`AssessmentService::handle`] yields cloneable
//! [`ServiceHandle`]s — the `Send + Sync` dispatch seam concurrent
//! front-ends (such as `crowd_wire`'s per-connection threads) share.
//! Failure reporting is typed end to end: a shard thread that panics
//! surfaces as [`ServiceError::ShardPanicked`] from `shutdown()` and
//! `stats()` (never fabricated zeroed counters), and no public method
//! can panic on malformed input, a dead shard, or a post-shutdown
//! call.
//!
//! Runtime health is observable, not vibes: per-shard queue-depth
//! high-water marks, a batch-size histogram, and the streaming
//! substrate's re-anchor / gram-patch / gram-rebuild diagnostics are
//! all surfaced through [`AssessmentService::stats`] (see
//! [`ServiceStats`]) and land in the `scaling_pr6` bench JSON.

mod config;
mod error;
mod fault;
mod metrics;
mod runtime;
mod stats;

pub use config::{BackpressurePolicy, ServiceConfig};
pub use error::ServiceError;
pub use fault::{CrashPoint, FaultPlan};
pub use metrics::{ServiceMetrics, StageTimings};
pub use runtime::{
    AssessmentService, DegradedKarySnapshot, DegradedSnapshot, IngestReceipt, ServiceHandle,
    ShardOutage,
};
pub use stats::{BatchHistogram, ServiceStats, ShardStats};
