//! The thread-per-shard runtime; see the [crate docs](crate) for the
//! architecture and guarantees.

use std::panic::{AssertUnwindSafe, catch_unwind, resume_unwind};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError, channel, sync_channel};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use crowd_core::{
    EstimatorConfig, KaryMWorkerEstimator, KaryReportCache, KaryWorkerAssessment, KaryWorkerReport,
    MWorkerEstimator, ReportCache, WorkerAssessment, WorkerReport,
};
use crowd_data::{DataError, PairBackend, Response, StreamingIndex, WorkerId};
use crowd_obs::{EventJournal, EventKind};
use crowd_shard::{ShardPlan, merge_kary_reports, merge_reports};

use crate::config::{BackpressurePolicy, ServiceConfig};
use crate::error::ServiceError;
use crate::fault::{CrashPoint, FaultPlan};
use crate::metrics::{ServiceMetrics, StageTimers, StageTimings};
use crate::stats::{BatchHistogram, ServiceStats, ShardStats};

/// What travels on a shard queue: the message plus its enqueue stamp.
/// The stamp is `None` when the fleet runs with metrics off — taking
/// (or not taking) it is the *only* per-message ingest-path cost of
/// the instrumentation switch, which is how reports stay bit-identical
/// and throughput stays within noise of the uninstrumented baseline.
type Envelope = (Option<Instant>, ShardMsg);

/// Shared queue-depth gauge: the handle increments on enqueue, the
/// shard thread decrements on dequeue, and the high-water mark is
/// taken on the enqueue side.
#[derive(Debug, Default)]
struct QueueDepth {
    depth: AtomicUsize,
    high: AtomicUsize,
}

impl QueueDepth {
    fn on_push(&self) {
        let now = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    fn on_pop(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn high_water(&self) -> usize {
        self.high.load(Ordering::Relaxed)
    }
}

/// One message on a shard's bounded queue. Replies are sent
/// best-effort (`let _ =`): a caller that dropped its receiver —
/// e.g. during teardown — must never panic the shard thread.
enum ShardMsg {
    /// A contiguous group of responses subscribed to this shard.
    Ingest(Vec<Response>),
    /// Evaluate one worker (binary, Algorithm A2).
    AssessWorker {
        worker: WorkerId,
        confidence: f64,
        reply: Sender<Result<WorkerAssessment, ServiceError>>,
    },
    /// Evaluate one worker (k-ary, the m-worker A3 extension).
    AssessWorkerKary {
        worker: WorkerId,
        confidence: f64,
        reply: Sender<Result<KaryWorkerAssessment, ServiceError>>,
    },
    /// Evaluate all of this shard's anchors (binary).
    AssessAnchors {
        confidence: f64,
        reply: Sender<Result<WorkerReport, ServiceError>>,
    },
    /// Evaluate all of this shard's anchors (k-ary).
    AssessAnchorsKary {
        confidence: f64,
        reply: Sender<Result<KaryWorkerReport, ServiceError>>,
    },
    /// Report the shard's counters.
    Stats { reply: Sender<ShardStats> },
    /// FIFO barrier: reply once everything enqueued earlier has been
    /// processed.
    Drain { reply: Sender<()> },
    /// Test-only: park the shard until the gate sender drops, so
    /// backpressure tests can fill the bounded queue deterministically.
    #[cfg(test)]
    Stall(Receiver<()>),
    /// Test-only: panic the shard thread, so the dead-shard reporting
    /// paths ([`ServiceError::ShardPanicked`]) can be pinned by tests.
    #[cfg(test)]
    Panic,
}

/// The state one shard thread owns.
struct ShardWorker {
    stream: StreamingIndex,
    binary: MWorkerEstimator,
    kary: KaryMWorkerEstimator,
    anchors: Vec<WorkerId>,
    /// `is_home[w]`: this shard evaluates `w`, so it is the one shard
    /// that counts `w`'s rejected responses (exact fleet totals).
    is_home: Vec<bool>,
    depth: Arc<QueueDepth>,
    stats: ShardStats,
    /// Whether assessment requests go through the epoch-versioned
    /// report caches below ([`ServiceConfig::incremental`]); off means
    /// every request recomputes from scratch.
    incremental: bool,
    /// Epoch-versioned rows of the last binary assessments, keyed to
    /// this shard's `stream` — drain-point snapshots re-evaluate only
    /// anchors dirtied since their cached rows, bit-identically (see
    /// `crowd_core::cached`).
    binary_cache: ReportCache,
    /// The k-ary twin.
    kary_cache: KaryReportCache,
    /// Stage timers + journal wiring; `None` when spawned with
    /// [`ServiceConfig::metrics`] off. Nothing behind this Option is
    /// ever consulted by evaluation — only timed around it.
    obs: Option<ShardObs>,
}

/// One shard thread's recording side: timers shared (`Arc`) with the
/// handle so scrapes never cross the shard queue, plus last-seen
/// substrate maintenance counters for delta-based journaling.
struct ShardObs {
    timers: Arc<StageTimers>,
    journal: Arc<EventJournal>,
    /// [`ServiceConfig::slow_op_threshold`], in nanoseconds.
    slow_ns: u64,
    prev_reanchors: usize,
    prev_rebuilds: usize,
    prev_full_refreshes: u64,
}

/// Which per-shard stage histogram a timed section lands in.
#[derive(Clone, Copy)]
enum Stage {
    BatchApply,
    DrainEval,
}

/// Per-shard supervision state that lives **outside** the
/// unwind boundary: the recovery sources (checkpoint + WAL), the
/// authoritative fault-tolerance counters, and the armed crash points.
/// Everything a panic could corrupt lives in the discarded
/// [`ShardWorker`]; everything here is only mutated at well-defined
/// non-panicking points (see the field docs), which is what justifies
/// the `AssertUnwindSafe` in [`ShardRuntime::run`].
#[derive(Default)]
struct RecoveryGuard {
    /// The substrate as of the last checkpoint
    /// ([`StreamingIndex::checkpoint`] bytes; the spawn-time
    /// checkpoint of the empty substrate seeds it).
    checkpoint: Vec<u8>,
    /// The persistent shard counters as of that checkpoint.
    stats_at_checkpoint: ShardStats,
    /// Write-ahead log: every ingest batch accepted since the last
    /// checkpoint, appended **before** it is applied, so a crash mid-
    /// application replays the whole batch onto the restored
    /// substrate. Truncated at every checkpoint — bounded by
    /// [`crate::ServiceConfig::checkpoint_interval`] batches.
    wal: Vec<Vec<Response>>,
    /// Batches applied since the last checkpoint.
    since_checkpoint: usize,
    /// Monotone 1-based ingest-batch ordinal, across recoveries —
    /// the coordinate fault decisions key on. Incremented before the
    /// fault check so an injected crash cannot re-fire on replay.
    batch_ordinal: u64,
    recoveries: u64,
    checkpoints: u64,
    wal_replayed: u64,
    /// An [`CrashPoint::AtDrain`] fault armed by an earlier batch;
    /// cleared *before* the panic fires so recovery does not loop.
    armed_drain: bool,
    /// The [`CrashPoint::DuringReanchor`] twin.
    armed_assess: bool,
}

/// The immutable spawn-time inputs of one shard, kept by the
/// supervisor so a crashed worker can be rebuilt from scratch.
struct ShardSeed {
    shard: usize,
    n_workers: usize,
    n_tasks: usize,
    arity: u16,
    estimator: EstimatorConfig,
    anchors: Vec<WorkerId>,
    is_home: Vec<bool>,
    depth: Arc<QueueDepth>,
    incremental: bool,
    slow_ns: u64,
    timers: Option<Arc<StageTimers>>,
    journal: Option<Arc<EventJournal>>,
}

impl ShardSeed {
    /// A fresh worker in the exact state a newly spawned shard starts
    /// in: empty substrate, dormant views, cold caches.
    fn build(&self) -> ShardWorker {
        ShardWorker {
            stream: StreamingIndex::new_with(
                self.n_workers,
                self.n_tasks,
                self.arity,
                PairBackend::Sparse,
            ),
            binary: MWorkerEstimator::new(self.estimator.clone()),
            kary: KaryMWorkerEstimator::new(self.estimator.clone()),
            anchors: self.anchors.clone(),
            is_home: self.is_home.clone(),
            depth: Arc::clone(&self.depth),
            stats: ShardStats {
                shard: self.shard,
                ..ShardStats::default()
            },
            incremental: self.incremental,
            binary_cache: ReportCache::new(),
            kary_cache: KaryReportCache::new(),
            obs: self.timers.as_ref().map(|timers| ShardObs {
                timers: Arc::clone(timers),
                journal: Arc::clone(self.journal.as_ref().expect("timers imply journal")),
                slow_ns: self.slow_ns,
                prev_reanchors: 0,
                prev_rebuilds: 0,
                prev_full_refreshes: 0,
            }),
        }
    }
}

/// One shard's supervised thread body: runs the message loop inside
/// `catch_unwind`; on a panic, respawns the worker from the last
/// checkpoint, replays the WAL, and keeps serving the *same* queue —
/// callers blocked on the bounded channel never observe the crash
/// except as latency. Gives up (sets the dead flag and re-raises the
/// panic so `join()` reports it) when recovery is disabled
/// (`checkpoint_interval == 0`) or the budget is exhausted.
struct ShardRuntime {
    seed: ShardSeed,
    interval: usize,
    max_recoveries: u64,
    fault: Option<Arc<FaultPlan>>,
    dead: Arc<AtomicBool>,
}

impl ShardRuntime {
    fn run(self, rx: Receiver<Envelope>) -> ShardStats {
        let supervised = self.interval > 0;
        let mut worker = self.seed.build();
        let mut guard = RecoveryGuard::default();
        if supervised {
            guard.checkpoint = worker.stream.checkpoint();
            guard.stats_at_checkpoint = worker.stats.clone();
        }
        loop {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                worker.serve(&rx, &mut guard, self.interval, self.fault.as_deref())
            }));
            let payload = match outcome {
                // Queue disconnected: graceful shutdown, final stats.
                Ok(finals) => return finals,
                Err(payload) => payload,
            };
            let give_up = !supervised || guard.recoveries >= self.max_recoveries;
            if let Some(journal) = &self.seed.journal {
                journal.record(
                    EventKind::ShardPanic,
                    self.seed.shard as u32,
                    guard.batch_ordinal,
                    guard.recoveries,
                    if give_up { "dead" } else { "recovering" },
                );
            }
            if give_up {
                // Flag first, then unwind: by the time the receiver
                // drops (failing senders), the flag is already
                // readable, so callers see `ShardPanicked`, not a
                // generic unavailability.
                self.dead.store(true, Ordering::Release);
                resume_unwind(payload);
            }
            let t0 = Instant::now();
            // The recovery itself runs inside its own unwind guard: a
            // checkpoint that fails to restore (impossible for bytes we
            // produced, but this is the crash path — assume nothing)
            // must surface as a dead shard, not a thread abort.
            let rebuilt = catch_unwind(AssertUnwindSafe(|| self.recover(&guard)));
            match rebuilt {
                Ok((w, replayed)) => {
                    guard.recoveries += 1;
                    guard.wal_replayed += replayed;
                    worker = w;
                    worker.stats.recoveries = guard.recoveries;
                    worker.stats.checkpoints = guard.checkpoints;
                    worker.stats.wal_replayed = guard.wal_replayed;
                    if let Some(journal) = &self.seed.journal {
                        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        journal.record(
                            EventKind::ShardRecovered,
                            self.seed.shard as u32,
                            guard.recoveries,
                            ns,
                            "",
                        );
                    }
                }
                Err(_) => {
                    self.dead.store(true, Ordering::Release);
                    resume_unwind(payload);
                }
            }
        }
    }

    /// Rebuilds a worker from the last checkpoint and replays the WAL
    /// through the ordinary ingest path (no fault checks — the batch
    /// ordinals already passed them). Returns the worker and how many
    /// responses were replayed.
    fn recover(&self, guard: &RecoveryGuard) -> (ShardWorker, u64) {
        let mut w = self.seed.build();
        w.stream = StreamingIndex::restore(&guard.checkpoint)
            .expect("restoring a checkpoint this shard itself produced");
        w.stats = guard.stats_at_checkpoint.clone();
        let mut replayed = 0u64;
        for batch in &guard.wal {
            replayed += batch.len() as u64;
            w.apply_batch(batch);
        }
        (w, replayed)
    }
}

impl ShardWorker {
    /// Applies one ingest batch to the substrate with the standard
    /// accounting — shared verbatim by live ingest and WAL replay, so
    /// replayed state (counters included) is bit-identical to a
    /// never-crashed application of the same batches.
    fn apply_batch(&mut self, batch: &[Response]) {
        self.stats.batches += 1;
        for r in batch {
            match self.stream.record_response(*r) {
                Ok(()) => self.stats.responses += 1,
                // Every subscribing shard sees the same row state, so
                // they reject identically; count only at home to keep
                // the fleet total exact.
                Err(_) => {
                    if self.is_home[r.worker.index()] {
                        self.stats.rejected += 1;
                    }
                }
            }
        }
    }

    /// Fires an armed assessment-point crash: forces a view re-anchor
    /// first so the panic lands mid-evaluation-state-mutation, the
    /// worst case recovery must handle.
    fn fire_assess_crash(&mut self, guard: &mut RecoveryGuard) {
        if !guard.armed_assess {
            return;
        }
        guard.armed_assess = false;
        if let Some(&anchor) = self.anchors.first() {
            let _ = self.stream.view(anchor);
        }
        panic!("injected fault: crash during drain-point evaluation (re-anchor)");
    }

    fn serve(
        &mut self,
        rx: &Receiver<Envelope>,
        guard: &mut RecoveryGuard,
        interval: usize,
        fault: Option<&FaultPlan>,
    ) -> ShardStats {
        while let Ok((enqueued, msg)) = rx.recv() {
            self.depth.on_pop();
            if let (Some(obs), Some(t0)) = (&self.obs, enqueued) {
                obs.timers.queue_wait.record_duration(t0.elapsed());
            }
            match msg {
                ShardMsg::Ingest(batch) => {
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    guard.batch_ordinal += 1;
                    let crash =
                        fault.and_then(|f| f.panic_for(self.stats.shard, guard.batch_ordinal));
                    if interval > 0 {
                        // Write-ahead: the batch is in the log before
                        // any of it touches the substrate.
                        guard.wal.push(batch.clone());
                    }
                    match crash {
                        Some(CrashPoint::MidBatch) => {
                            // Half the batch lands, then the thread
                            // dies with the substrate mid-batch.
                            for r in &batch[..batch.len() / 2] {
                                let _ = self.stream.record_response(*r);
                            }
                            panic!(
                                "injected fault: mid-batch crash at batch {}",
                                guard.batch_ordinal
                            );
                        }
                        Some(CrashPoint::AtDrain) => guard.armed_drain = true,
                        Some(CrashPoint::DuringReanchor) => guard.armed_assess = true,
                        None => {}
                    }
                    self.apply_batch(&batch);
                    if interval > 0 {
                        guard.since_checkpoint += 1;
                        if guard.since_checkpoint >= interval {
                            guard.checkpoint = self.stream.checkpoint();
                            guard.checkpoints += 1;
                            self.stats.checkpoints = guard.checkpoints;
                            guard.stats_at_checkpoint = self.stats.clone();
                            guard.wal.clear();
                            guard.since_checkpoint = 0;
                        }
                    }
                    self.observe_stage(Stage::BatchApply, t0);
                }
                ShardMsg::AssessWorker {
                    worker,
                    confidence,
                    reply,
                } => {
                    self.fire_assess_crash(guard);
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    self.stats.assess_requests += 1;
                    let out = if self.incremental {
                        self.binary_cache
                            .assess(&self.binary, &self.stream, worker, confidence)
                    } else {
                        self.binary
                            .evaluate_worker_on(&self.stream, worker, confidence)
                    }
                    .map_err(ServiceError::Estimate);
                    self.observe_stage(Stage::DrainEval, t0);
                    let _ = reply.send(out);
                }
                ShardMsg::AssessWorkerKary {
                    worker,
                    confidence,
                    reply,
                } => {
                    self.fire_assess_crash(guard);
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    self.stats.assess_requests += 1;
                    let out = if self.incremental {
                        self.kary_cache
                            .assess(&self.kary, &self.stream, worker, confidence)
                    } else {
                        self.kary
                            .evaluate_worker_streaming(&self.stream, worker, confidence)
                    }
                    .map_err(ServiceError::Estimate);
                    self.observe_stage(Stage::DrainEval, t0);
                    let _ = reply.send(out);
                }
                ShardMsg::AssessAnchors { confidence, reply } => {
                    self.fire_assess_crash(guard);
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    self.stats.assess_requests += 1;
                    let out = if self.incremental {
                        self.binary_cache.refresh(
                            &self.binary,
                            &self.stream,
                            &self.anchors,
                            confidence,
                        )
                    } else {
                        self.binary
                            .evaluate_workers_on(&self.stream, &self.anchors, confidence)
                    }
                    .map_err(ServiceError::Estimate);
                    self.observe_stage(Stage::DrainEval, t0);
                    let _ = reply.send(out);
                }
                ShardMsg::AssessAnchorsKary { confidence, reply } => {
                    self.fire_assess_crash(guard);
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    self.stats.assess_requests += 1;
                    let out = if self.incremental {
                        self.kary_cache
                            .refresh(&self.kary, &self.stream, &self.anchors, confidence)
                    } else {
                        self.kary.evaluate_workers_streaming(
                            &self.stream,
                            &self.anchors,
                            confidence,
                        )
                    }
                    .map_err(ServiceError::Estimate);
                    self.observe_stage(Stage::DrainEval, t0);
                    let _ = reply.send(out);
                }
                ShardMsg::Stats { reply } => {
                    let _ = reply.send(self.snapshot_stats());
                }
                ShardMsg::Drain { reply } => {
                    if guard.armed_drain {
                        // The reply sender drops with the panic, so
                        // the caller's one pending drain fails typed
                        // (`ShardUnavailable`); a retried drain lands
                        // after recovery and succeeds.
                        guard.armed_drain = false;
                        panic!("injected fault: crash at drain barrier");
                    }
                    let _ = reply.send(());
                }
                #[cfg(test)]
                ShardMsg::Stall(gate) => {
                    // Blocks until the test drops its sender.
                    let _ = gate.recv();
                }
                #[cfg(test)]
                ShardMsg::Panic => panic!("injected shard panic (test)"),
            }
            self.journal_maintenance();
        }
        // Queue disconnected: the handle dropped its senders
        // (graceful shutdown). Everything enqueued before the drop
        // has been processed above.
        self.snapshot_stats()
    }

    /// Closes one timed stage: records the elapsed time into the
    /// stage histogram and journals a [`EventKind::SlowOp`] when it
    /// crossed the configured threshold. A no-op (and `started` is
    /// `None`) with metrics off.
    fn observe_stage(&self, stage: Stage, started: Option<Instant>) {
        let (Some(obs), Some(t0)) = (&self.obs, started) else {
            return;
        };
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let (hist, name) = match stage {
            Stage::BatchApply => (&obs.timers.batch_apply, "batch_apply"),
            Stage::DrainEval => (&obs.timers.drain_eval, "drain_eval"),
        };
        hist.record(ns);
        if ns >= obs.slow_ns {
            obs.journal.record(
                EventKind::SlowOp,
                self.stats.shard as u32,
                ns,
                obs.slow_ns,
                name,
            );
        }
    }

    /// Journals substrate maintenance that happened while handling
    /// the last message, by counter delta: re-anchors, full gram
    /// rebuilds and wholesale cache refreshes (`a` = how many). Three
    /// counter reads per message when metrics are on; nothing at all
    /// when off.
    fn journal_maintenance(&mut self) {
        let Some(obs) = &mut self.obs else { return };
        let shard = self.stats.shard as u32;
        let reanchors = self.stream.reanchor_count();
        if reanchors > obs.prev_reanchors {
            let delta = (reanchors - obs.prev_reanchors) as u64;
            obs.journal.record(EventKind::Reanchor, shard, delta, 0, "");
            obs.prev_reanchors = reanchors;
        }
        let rebuilds = self.stream.gram_rebuild_count();
        if rebuilds > obs.prev_rebuilds {
            let delta = (rebuilds - obs.prev_rebuilds) as u64;
            obs.journal
                .record(EventKind::GramRebuild, shard, delta, 0, "");
            obs.prev_rebuilds = rebuilds;
        }
        let refreshes =
            self.binary_cache.stats().full_refreshes + self.kary_cache.stats().full_refreshes;
        if refreshes > obs.prev_full_refreshes {
            let delta = refreshes - obs.prev_full_refreshes;
            obs.journal
                .record(EventKind::CacheFullRefresh, shard, delta, 0, "");
            obs.prev_full_refreshes = refreshes;
        }
    }

    fn snapshot_stats(&self) -> ShardStats {
        let mut s = self.stats.clone();
        s.reanchors = self.stream.reanchor_count();
        s.gram_patches = self.stream.gram_patch_count();
        s.gram_rebuilds = self.stream.gram_rebuild_count();
        s.queue_high_water = self.depth.high_water();
        let (b, k) = (self.binary_cache.stats(), self.kary_cache.stats());
        s.cache_hits = b.hits + k.hits;
        s.cache_misses = b.misses + k.misses;
        s.cache_full_refreshes = b.full_refreshes + k.full_refreshes;
        s
    }
}

/// Accounting for one [`AssessmentService::ingest_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Per-shard response deliveries enqueued (a response subscribed
    /// by `k` shards counts `k` times).
    pub routed: usize,
    /// Shard-bound groups shed because a queue was full
    /// ([`BackpressurePolicy::Shed`] only).
    pub shed_batches: usize,
    /// Per-shard response deliveries lost with those groups.
    pub shed_responses: usize,
}

/// One shard that could not contribute to a degraded snapshot, and
/// why; see [`ServiceHandle::snapshot_degraded`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutage {
    /// The unavailable shard.
    pub shard: usize,
    /// The typed failure ([`ServiceError::ShardPanicked`] for a dead
    /// shard, [`ServiceError::ShardUnavailable`] for one mid-teardown,
    /// or the estimation error its evaluation returned).
    pub error: ServiceError,
}

/// A fleet snapshot that tolerates unavailable shards: the merged
/// report over every shard that answered, plus a typed outage per
/// shard that did not. `outages` empty ⇔ the report is the same one
/// [`ServiceHandle::snapshot`] would have returned.
#[derive(Debug, Clone)]
pub struct DegradedSnapshot {
    /// Merged assessments from the responsive shards, canonical
    /// worker order.
    pub report: WorkerReport,
    /// The shards missing from `report`, in shard order.
    pub outages: Vec<ShardOutage>,
}

/// The k-ary twin of [`DegradedSnapshot`]; see
/// [`ServiceHandle::snapshot_kary_degraded`].
#[derive(Debug, Clone)]
pub struct DegradedKarySnapshot {
    /// Merged assessments from the responsive shards, canonical
    /// worker order.
    pub report: KaryWorkerReport,
    /// The shards missing from `report`, in shard order.
    pub outages: Vec<ShardOutage>,
}

/// The mutable routing state behind [`ServiceHandle::ingest_batch`]:
/// one lock serializes routing (batches must land on the FIFO queues
/// in submission order for drain points to be well-defined) and owns
/// the handle-side counters.
#[derive(Debug, Default)]
struct IngestState {
    /// Reusable per-shard grouping buffers.
    route_buf: Vec<Vec<Response>>,
    submitted: u64,
    dropped_batches: u64,
    dropped_responses: u64,
    batch_sizes: BatchHistogram,
}

/// Shard-thread ownership: join handles while live, the per-shard
/// final counters after shutdown (`None` for a shard whose thread
/// panicked — surfaced as [`ServiceError::ShardPanicked`], never
/// fabricated as zeros).
#[derive(Debug, Default)]
struct Lifecycle {
    handles: Vec<JoinHandle<ShardStats>>,
    final_stats: Option<Vec<Option<ShardStats>>>,
}

/// The handle-visible observability wiring: one stage-timer set per
/// shard (shared with the shard thread) and the fleet journal.
/// `None` when the fleet runs with [`ServiceConfig::metrics`] off.
#[derive(Debug)]
struct FleetObs {
    timers: Vec<Arc<StageTimers>>,
    journal: Arc<EventJournal>,
}

/// State shared by every [`ServiceHandle`] clone.
#[derive(Debug)]
struct Shared {
    plan: ShardPlan,
    n_tasks: usize,
    arity: u16,
    policy: BackpressurePolicy,
    depths: Vec<Arc<QueueDepth>>,
    /// `dead[s]`: shard `s`'s supervisor gave up (recovery disabled or
    /// budget exhausted) and let the panic kill the thread. Set by the
    /// shard thread *before* its receiver drops, so callers that see a
    /// disconnected queue can distinguish a crashed shard
    /// ([`ServiceError::ShardPanicked`]) from a mid-shutdown one
    /// ([`ServiceError::ShardUnavailable`]) — and ingest can refuse
    /// promptly instead of buffering into a queue nobody drains.
    dead: Vec<Arc<AtomicBool>>,
    /// `Some` while live; taken (dropped) at shutdown so the shard
    /// queues disconnect and the threads drain and exit.
    senders: RwLock<Option<Vec<SyncSender<Envelope>>>>,
    ingest: Mutex<IngestState>,
    lifecycle: Mutex<Lifecycle>,
    obs: Option<FleetObs>,
}

/// Ignore lock poisoning: a poisoned lock means some thread panicked
/// while holding it; the state it guards (routing buffers, counters,
/// join handles) stays structurally valid, and the panic itself is
/// surfaced through [`ServiceError::ShardPanicked`] /
/// [`ServiceError::ShardUnavailable`] — never as a second panic from
/// a public method.
fn lock_ignore_poison<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// A cloneable, thread-safe handle to a running [`AssessmentService`]
/// fleet: the dispatch seam the wire server fans its connection
/// threads into.
///
/// Every method takes `&self`; clones share the same shard threads,
/// queues and counters. Ingest is serialized by an internal lock (the
/// FIFO drain-point contract needs a single routing order); assessment
/// and control requests from different threads proceed concurrently.
/// Unlike [`AssessmentService`], dropping a `ServiceHandle` does *not*
/// shut the fleet down.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

// The message enum holds reply senders; keep its Debug noise out of
// the public type by formatting the handle fields only.
impl std::fmt::Debug for ShardMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::Ingest(b) => return write!(f, "Ingest({} responses)", b.len()),
            Self::AssessWorker { .. } => "AssessWorker",
            Self::AssessWorkerKary { .. } => "AssessWorkerKary",
            Self::AssessAnchors { .. } => "AssessAnchors",
            Self::AssessAnchorsKary { .. } => "AssessAnchorsKary",
            Self::Stats { .. } => "Stats",
            Self::Drain { .. } => "Drain",
            #[cfg(test)]
            Self::Stall(_) => "Stall",
            #[cfg(test)]
            Self::Panic => "Panic",
        };
        f.write_str(name)
    }
}

impl ServiceHandle {
    /// The plan the service routes by.
    pub fn plan(&self) -> &ShardPlan {
        &self.shared.plan
    }

    /// Number of shard threads.
    pub fn n_shards(&self) -> usize {
        self.shared.plan.n_shards()
    }

    /// Task-id space the fleet was spawned over.
    pub fn n_tasks(&self) -> usize {
        self.shared.n_tasks
    }

    /// Label arity the fleet was spawned over.
    pub fn arity(&self) -> u16 {
        self.shared.arity
    }

    /// Enqueues one batch of responses: validates ids, groups the
    /// batch by subscribing shard ([`ShardPlan::closure_shards`]) and
    /// hands each shard one contiguous group. Full queues behave per
    /// the configured [`BackpressurePolicy`]. Ingest is asynchronous;
    /// substrate-level rejects (duplicates, bad labels) are counted in
    /// [`ShardStats::rejected`], not returned here.
    ///
    /// Worker ids are validated against [`ShardPlan::n_workers`] (as
    /// widths, no truncating casts) **before** any routing state is
    /// touched: a batch containing one out-of-range id fails whole —
    /// no shard queue sees any part of it, and no counter moves.
    pub fn ingest_batch(&self, batch: &[Response]) -> Result<IngestReceipt, ServiceError> {
        // Routing needs in-range worker ids; reject up front so a bad
        // id fails the call instead of poisoning per-shard accounting
        // or partially applying the batch's valid prefix.
        let m = self.shared.plan.n_workers();
        for r in batch {
            if r.worker.index() >= m {
                return Err(ServiceError::Data(DataError::UnknownId {
                    kind: "worker",
                    id: r.worker.0,
                }));
            }
        }
        // Hold the senders read-guard for the whole routing pass so a
        // concurrent shutdown (which takes the write side) cannot
        // disconnect the queues under a half-routed batch.
        let senders_guard = self
            .shared
            .senders
            .read()
            .unwrap_or_else(|e| e.into_inner());
        let Some(senders) = senders_guard.as_ref() else {
            return Err(ServiceError::ShuttingDown);
        };
        let mut ing = lock_ignore_poison(&self.shared.ingest);
        for r in batch {
            for &s in self.shared.plan.closure_shards(r.worker) {
                ing.route_buf[s as usize].push(*r);
            }
        }
        // A supervisor that exhausted its recovery budget marks its
        // shard dead; refuse the batch *now*, before any counter moves
        // or any queue sees a group — buffering into a queue nobody
        // will ever drain would surface the crash only when the queue
        // finally filled (as a misleading `QueueFull`), batches later.
        for s in 0..ing.route_buf.len() {
            if !ing.route_buf[s].is_empty() && self.shared.dead[s].load(Ordering::Acquire) {
                for buf in &mut ing.route_buf {
                    buf.clear();
                }
                return Err(ServiceError::ShardPanicked { shard: s });
            }
        }
        ing.batch_sizes.record(batch.len());
        ing.submitted += batch.len() as u64;
        let mut receipt = IngestReceipt::default();
        let mut rejected: Option<(usize, usize)> = None;
        for s in 0..ing.route_buf.len() {
            let group = std::mem::take(&mut ing.route_buf[s]);
            if group.is_empty() {
                continue;
            }
            let len = group.len();
            if let Some((_, dropped)) = &mut rejected {
                // A Reject already fired: drain the remaining groups
                // into the dropped count without sending.
                *dropped += len;
                continue;
            }
            self.shared.depths[s].on_push();
            let stamp = self.shared.obs.as_ref().map(|_| Instant::now());
            match self.shared.policy {
                BackpressurePolicy::Block => {
                    match senders[s].send((stamp, ShardMsg::Ingest(group))) {
                        Ok(()) => receipt.routed += len,
                        Err(_) => {
                            self.shared.depths[s].on_pop();
                            // Clear the still-pending groups so they
                            // cannot leak into the next call's routing.
                            for buf in &mut ing.route_buf {
                                buf.clear();
                            }
                            return Err(self.shard_down(s));
                        }
                    }
                }
                BackpressurePolicy::Shed | BackpressurePolicy::Reject => {
                    match senders[s].try_send((stamp, ShardMsg::Ingest(group))) {
                        Ok(()) => receipt.routed += len,
                        Err(TrySendError::Full(_)) => {
                            self.shared.depths[s].on_pop();
                            if self.shared.policy == BackpressurePolicy::Shed {
                                receipt.shed_batches += 1;
                                receipt.shed_responses += len;
                                ing.dropped_batches += 1;
                                ing.dropped_responses += len as u64;
                                if let Some(obs) = &self.shared.obs {
                                    obs.journal.record(
                                        EventKind::Shed,
                                        s as u32,
                                        len as u64,
                                        0,
                                        "queue_full",
                                    );
                                }
                            } else {
                                rejected = Some((s, len));
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.shared.depths[s].on_pop();
                            for buf in &mut ing.route_buf {
                                buf.clear();
                            }
                            return Err(self.shard_down(s));
                        }
                    }
                }
            }
        }
        if let Some((shard, dropped)) = rejected {
            ing.dropped_responses += dropped as u64;
            if let Some(obs) = &self.shared.obs {
                obs.journal.record(
                    EventKind::Reject,
                    shard as u32,
                    dropped as u64,
                    0,
                    "queue_full",
                );
            }
            return Err(ServiceError::QueueFull { shard, dropped });
        }
        Ok(receipt)
    }

    /// [`ServiceHandle::ingest_batch`] for a single response — the
    /// request-at-a-time floor the batching benchmark compares
    /// against.
    pub fn ingest(&self, response: Response) -> Result<IngestReceipt, ServiceError> {
        self.ingest_batch(std::slice::from_ref(&response))
    }

    /// Evaluates one worker (binary) on its home shard's maintained
    /// substrate. FIFO queues mean the evaluation observes every
    /// ingest enqueued before this call.
    pub fn assess_worker(
        &self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<WorkerAssessment, ServiceError> {
        let shard = self.home_shard_of(worker)?;
        let (reply, rx) = channel();
        self.send_to(
            shard,
            ShardMsg::AssessWorker {
                worker,
                confidence,
                reply,
            },
        )?;
        rx.recv().map_err(|_| self.shard_down(shard))?
    }

    /// Evaluates one worker's k×k response-probability matrix on its
    /// home shard's maintained substrate.
    pub fn assess_worker_kary(
        &self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<KaryWorkerAssessment, ServiceError> {
        let shard = self.home_shard_of(worker)?;
        let (reply, rx) = channel();
        self.send_to(
            shard,
            ShardMsg::AssessWorkerKary {
                worker,
                confidence,
                reply,
            },
        )?;
        rx.recv().map_err(|_| self.shard_down(shard))?
    }

    /// Evaluates an explicit set of workers (binary), each on its home
    /// shard's maintained substrate, returning one report in canonical
    /// worker order. Per-worker estimation failures land in the
    /// report's `failures` (the same partial-result contract as
    /// [`ServiceHandle::snapshot`]); runtime failures (shutdown, dead
    /// shard) fail the call.
    pub fn assess_workers(
        &self,
        workers: &[WorkerId],
        confidence: f64,
    ) -> Result<WorkerReport, ServiceError> {
        // Enqueue all requests before awaiting any reply so distinct
        // home shards evaluate concurrently.
        let mut rxs = Vec::with_capacity(workers.len());
        for &worker in workers {
            let shard = self.home_shard_of(worker)?;
            let (reply, rx) = channel();
            self.send_to(
                shard,
                ShardMsg::AssessWorker {
                    worker,
                    confidence,
                    reply,
                },
            )?;
            rxs.push((worker, shard, rx));
        }
        let mut report = WorkerReport::default();
        for (worker, shard, rx) in rxs {
            match rx.recv().map_err(|_| self.shard_down(shard))? {
                Ok(a) => report.assessments.push(a),
                Err(ServiceError::Estimate(e)) => report.failures.push((worker, e)),
                Err(other) => return Err(other),
            }
        }
        report.assessments.sort_by_key(|a| a.worker);
        report.failures.sort_by_key(|f| f.0);
        Ok(report)
    }

    /// Fleet snapshot (binary): every shard evaluates its anchors
    /// against its maintained substrate, and the per-shard reports
    /// merge in canonical worker order ([`merge_reports`]) —
    /// bit-identical to a serial
    /// [`crowd_core::IncrementalEvaluator::evaluate_all`] over the
    /// same responses. Requests are enqueued on all shards before any
    /// reply is awaited, so shards evaluate concurrently.
    pub fn snapshot(&self, confidence: f64) -> Result<WorkerReport, ServiceError> {
        let m = self.shared.plan.n_workers();
        if m < 3 {
            return Err(ServiceError::Estimate(
                crowd_core::EstimateError::NotEnoughWorkers { got: m, need: 3 },
            ));
        }
        let mut rxs = Vec::with_capacity(self.n_shards());
        for s in 0..self.n_shards() {
            let (reply, rx) = channel();
            self.send_to(s, ShardMsg::AssessAnchors { confidence, reply })?;
            rxs.push(rx);
        }
        let mut parts = Vec::with_capacity(rxs.len());
        for (s, rx) in rxs.into_iter().enumerate() {
            parts.push(rx.recv().map_err(|_| self.shard_down(s))??);
        }
        Ok(merge_reports(parts))
    }

    /// Fleet snapshot (k-ary); see [`ServiceHandle::snapshot`].
    pub fn snapshot_kary(&self, confidence: f64) -> Result<KaryWorkerReport, ServiceError> {
        let m = self.shared.plan.n_workers();
        if m < 3 {
            return Err(ServiceError::Estimate(
                crowd_core::EstimateError::NotEnoughWorkers { got: m, need: 3 },
            ));
        }
        let mut rxs = Vec::with_capacity(self.n_shards());
        for s in 0..self.n_shards() {
            let (reply, rx) = channel();
            self.send_to(s, ShardMsg::AssessAnchorsKary { confidence, reply })?;
            rxs.push(rx);
        }
        let mut parts = Vec::with_capacity(rxs.len());
        for (s, rx) in rxs.into_iter().enumerate() {
            parts.push(rx.recv().map_err(|_| self.shard_down(s))??);
        }
        Ok(merge_kary_reports(parts))
    }

    /// [`ServiceHandle::snapshot`] with graceful degradation: shards
    /// that cannot answer — dead after exhausting their recovery
    /// budget, mid-teardown, or failing estimation — become typed
    /// [`ShardOutage`]s instead of failing the whole call, and the
    /// report merges what the responsive shards returned. Workers
    /// homed on an out shard are simply absent from the report (their
    /// ids are recoverable from `plan().shards()[outage.shard]`).
    ///
    /// Fleet-wide failures still fail the call: fewer than 3 workers
    /// can never be assessed, and [`ServiceError::ShuttingDown`]
    /// means there is no fleet left to degrade.
    pub fn snapshot_degraded(&self, confidence: f64) -> Result<DegradedSnapshot, ServiceError> {
        let m = self.shared.plan.n_workers();
        if m < 3 {
            return Err(ServiceError::Estimate(
                crowd_core::EstimateError::NotEnoughWorkers { got: m, need: 3 },
            ));
        }
        let mut rxs = Vec::with_capacity(self.n_shards());
        for s in 0..self.n_shards() {
            let (reply, rx) = channel();
            match self.send_to(s, ShardMsg::AssessAnchors { confidence, reply }) {
                Ok(()) => rxs.push((s, Ok(rx))),
                Err(ServiceError::ShuttingDown) => return Err(ServiceError::ShuttingDown),
                Err(e) => rxs.push((s, Err(e))),
            }
        }
        let mut parts = Vec::new();
        let mut outages = Vec::new();
        for (s, rx) in rxs {
            let outcome = match rx {
                Ok(rx) => rx.recv().map_err(|_| self.shard_down(s)).and_then(|r| r),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(part) => parts.push(part),
                Err(error) => outages.push(ShardOutage { shard: s, error }),
            }
        }
        Ok(DegradedSnapshot {
            report: merge_reports(parts),
            outages,
        })
    }

    /// The k-ary twin of [`ServiceHandle::snapshot_degraded`].
    pub fn snapshot_kary_degraded(
        &self,
        confidence: f64,
    ) -> Result<DegradedKarySnapshot, ServiceError> {
        let m = self.shared.plan.n_workers();
        if m < 3 {
            return Err(ServiceError::Estimate(
                crowd_core::EstimateError::NotEnoughWorkers { got: m, need: 3 },
            ));
        }
        let mut rxs = Vec::with_capacity(self.n_shards());
        for s in 0..self.n_shards() {
            let (reply, rx) = channel();
            match self.send_to(s, ShardMsg::AssessAnchorsKary { confidence, reply }) {
                Ok(()) => rxs.push((s, Ok(rx))),
                Err(ServiceError::ShuttingDown) => return Err(ServiceError::ShuttingDown),
                Err(e) => rxs.push((s, Err(e))),
            }
        }
        let mut parts = Vec::new();
        let mut outages = Vec::new();
        for (s, rx) in rxs {
            let outcome = match rx {
                Ok(rx) => rx.recv().map_err(|_| self.shard_down(s)).and_then(|r| r),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(part) => parts.push(part),
                Err(error) => outages.push(ShardOutage { shard: s, error }),
            }
        }
        Ok(DegradedKarySnapshot {
            report: merge_kary_reports(parts),
            outages,
        })
    }

    /// FIFO barrier: returns once every shard has processed
    /// everything enqueued before this call. Ingest may continue
    /// afterwards — draining is a checkpoint, not shutdown.
    pub fn drain(&self) -> Result<(), ServiceError> {
        let mut rxs = Vec::with_capacity(self.n_shards());
        for s in 0..self.n_shards() {
            let (reply, rx) = channel();
            self.send_to(s, ShardMsg::Drain { reply })?;
            rxs.push(rx);
        }
        for (s, rx) in rxs.into_iter().enumerate() {
            rx.recv().map_err(|_| self.shard_down(s))?;
        }
        Ok(())
    }

    /// A fleet-wide counters snapshot. Live services answer through
    /// the shard queues (so the numbers reflect a drain point); after
    /// [`ServiceHandle::shutdown`] the final counters are served from
    /// the joined threads. If any shard thread panicked, this returns
    /// [`ServiceError::ShardPanicked`] instead of fabricating zeroed
    /// counters for the dead shard; a call racing an in-flight
    /// shutdown returns [`ServiceError::ShuttingDown`]. No path
    /// through here can panic.
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        {
            let lc = lock_ignore_poison(&self.shared.lifecycle);
            if let Some(finals) = &lc.final_stats {
                return self.finals_to_stats(finals);
            }
            // Not shut down at the time of the check: fall through to
            // the live path. If a shutdown lands between here and the
            // sends below, `send_to` reports `ShuttingDown` — a typed
            // error, never a panic.
        }
        let mut rxs = Vec::with_capacity(self.n_shards());
        for s in 0..self.n_shards() {
            let (reply, rx) = channel();
            self.send_to(s, ShardMsg::Stats { reply })?;
            rxs.push(rx);
        }
        let mut shards = Vec::with_capacity(rxs.len());
        for (s, rx) in rxs.into_iter().enumerate() {
            shards.push(rx.recv().map_err(|_| self.shard_down(s))?);
        }
        Ok(self.with_handle_counters(shards))
    }

    /// A full metrics scrape: the [`ServiceHandle::stats`] counter
    /// snapshot (so both always agree), per-shard stage timing
    /// histograms, and the flight-recorder tail. The stage timers and
    /// journal are read directly from shared memory — only the
    /// counter snapshot rides the shard queues — so a scrape costs
    /// the fleet a handful of atomic loads on top of a `stats()`
    /// call, and keeps working after shutdown. With
    /// [`ServiceConfig::metrics`] off, `enabled` is `false`, the
    /// stage histograms are empty and the journal is silent.
    pub fn metrics(&self) -> Result<ServiceMetrics, ServiceError> {
        let stats = self.stats()?;
        let (enabled, stages, events, events_dropped) = match &self.shared.obs {
            Some(obs) => (
                true,
                obs.timers.iter().map(|t| t.snapshot()).collect(),
                obs.journal.snapshot(),
                obs.journal.dropped(),
            ),
            None => (
                false,
                vec![StageTimings::default(); self.n_shards()],
                Vec::new(),
                0,
            ),
        };
        Ok(ServiceMetrics {
            enabled,
            stats,
            stages,
            events,
            events_dropped,
        })
    }

    /// Graceful shutdown: closes every shard queue (all enqueued work
    /// is still processed), joins the threads and captures their
    /// final counters. Idempotent and race-safe across handle clones;
    /// after shutdown, ingest and assessment return
    /// [`ServiceError::ShuttingDown`] and [`ServiceHandle::stats`]
    /// serves the captured counters. If a shard thread panicked, the
    /// panic is surfaced as [`ServiceError::ShardPanicked`] — from
    /// this call and from every later `stats()`/`shutdown()` — instead
    /// of being swallowed into fabricated zeroed stats.
    pub fn shutdown(&self) -> Result<ServiceStats, ServiceError> {
        let mut lc = lock_ignore_poison(&self.shared.lifecycle);
        if lc.final_stats.is_none() {
            // Dropping the senders disconnects the queues; each shard
            // thread finishes everything already enqueued, then exits.
            drop(
                self.shared
                    .senders
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .take(),
            );
            let finals = lc
                .handles
                .drain(..)
                .enumerate()
                .map(|(s, h)| {
                    let joined = h.join().ok();
                    if joined.is_none()
                        && let Some(obs) = &self.shared.obs
                    {
                        obs.journal
                            .record(EventKind::ShardPanic, s as u32, 0, 0, "joined dead");
                    }
                    joined
                })
                .collect();
            lc.final_stats = Some(finals);
        }
        match &lc.final_stats {
            Some(finals) => self.finals_to_stats(finals),
            // Unreachable (set just above), but a typed error keeps
            // this path panic-free by construction.
            None => Err(ServiceError::ShuttingDown),
        }
    }

    /// Builds the post-shutdown stats view: the captured per-shard
    /// counters, or [`ServiceError::ShardPanicked`] for the first
    /// shard whose thread died.
    fn finals_to_stats(&self, finals: &[Option<ShardStats>]) -> Result<ServiceStats, ServiceError> {
        let mut shards = Vec::with_capacity(finals.len());
        for (s, f) in finals.iter().enumerate() {
            match f {
                Some(stats) => shards.push(stats.clone()),
                None => return Err(ServiceError::ShardPanicked { shard: s }),
            }
        }
        Ok(self.with_handle_counters(shards))
    }

    /// Attaches the handle-side counters to a per-shard set.
    fn with_handle_counters(&self, shards: Vec<ShardStats>) -> ServiceStats {
        let ing = lock_ignore_poison(&self.shared.ingest);
        ServiceStats {
            shards,
            submitted: ing.submitted,
            dropped_batches: ing.dropped_batches,
            dropped_responses: ing.dropped_responses,
            batch_sizes: ing.batch_sizes.clone(),
        }
    }

    fn home_shard_of(&self, worker: WorkerId) -> Result<usize, ServiceError> {
        if worker.index() >= self.shared.plan.n_workers() {
            return Err(ServiceError::Data(DataError::UnknownId {
                kind: "worker",
                id: worker.0,
            }));
        }
        Ok(self.shared.plan.shard_of(worker))
    }

    /// The typed error for a shard that stopped serving its queue:
    /// [`ServiceError::ShardPanicked`] when its supervisor declared it
    /// dead, otherwise [`ServiceError::ShardUnavailable`] (e.g. a
    /// shutdown racing this call).
    fn shard_down(&self, shard: usize) -> ServiceError {
        if self.shared.dead[shard].load(Ordering::Acquire) {
            ServiceError::ShardPanicked { shard }
        } else {
            ServiceError::ShardUnavailable { shard }
        }
    }

    /// Blocking send for assessment/control messages (backpressure
    /// policies govern ingest only).
    fn send_to(&self, shard: usize, msg: ShardMsg) -> Result<(), ServiceError> {
        if self.shared.dead[shard].load(Ordering::Acquire) {
            return Err(ServiceError::ShardPanicked { shard });
        }
        let guard = self
            .shared
            .senders
            .read()
            .unwrap_or_else(|e| e.into_inner());
        let Some(senders) = guard.as_ref() else {
            return Err(ServiceError::ShuttingDown);
        };
        self.shared.depths[shard].on_push();
        let stamp = self.shared.obs.as_ref().map(|_| Instant::now());
        senders[shard].send((stamp, msg)).map_err(|_| {
            self.shared.depths[shard].on_pop();
            self.shard_down(shard)
        })
    }
}

/// The thread-per-shard assessment runtime; see the
/// [crate docs](crate). This type uniquely owns the fleet (dropping it
/// shuts the shard threads down); [`AssessmentService::handle`] yields
/// cloneable [`ServiceHandle`]s for concurrent callers such as wire
/// connection threads.
///
/// # Example
///
/// ```
/// use crowd_service::{AssessmentService, ServiceConfig};
/// use crowd_shard::ShardPlan;
/// use crowd_sim::BinaryScenario;
///
/// let instance =
///     BinaryScenario::paper_default(6, 80, 0.9).generate(&mut crowd_sim::rng(11));
/// let data = instance.responses();
/// let plan = ShardPlan::build_clustered(data, 2);
/// let mut service =
///     AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
/// for batch in data.iter().collect::<Vec<_>>().chunks(16) {
///     service.ingest_batch(batch)?;
/// }
/// let report = service.snapshot(0.9)?;
/// assert_eq!(report.assessments.len() + report.failures.len(), 6);
/// service.shutdown()?;
/// # Ok::<(), crowd_service::ServiceError>(())
/// ```
#[derive(Debug)]
pub struct AssessmentService {
    handle: ServiceHandle,
}

impl AssessmentService {
    /// Spawns one shard thread per plan shard, each owning a fresh
    /// sparse-backed [`StreamingIndex`] over the global
    /// `plan.n_workers() × n_tasks` id space (rows materialize only
    /// for responses routed to the shard, i.e. its closure).
    pub fn spawn(plan: ShardPlan, n_tasks: usize, arity: u16, config: ServiceConfig) -> Self {
        let n_shards = plan.n_shards();
        let m = plan.n_workers();
        let capacity = config.queue_capacity.max(1);
        let mut senders = Vec::with_capacity(n_shards);
        let mut handles = Vec::with_capacity(n_shards);
        let mut depths = Vec::with_capacity(n_shards);
        let fleet_obs = config.metrics.then(|| FleetObs {
            timers: (0..n_shards)
                .map(|_| Arc::new(StageTimers::default()))
                .collect(),
            journal: Arc::new(EventJournal::new(config.journal_capacity)),
        });
        let slow_ns = u64::try_from(config.slow_op_threshold.as_nanos()).unwrap_or(u64::MAX);
        let mut dead = Vec::with_capacity(n_shards);
        for (s, spec) in plan.shards().iter().enumerate() {
            let (tx, rx) = sync_channel::<Envelope>(capacity);
            let depth = Arc::new(QueueDepth::default());
            let dead_flag = Arc::new(AtomicBool::new(false));
            let runtime = ShardRuntime {
                seed: ShardSeed {
                    shard: s,
                    n_workers: m,
                    n_tasks,
                    arity,
                    estimator: config.estimator.clone(),
                    anchors: spec.anchors.clone(),
                    is_home: (0..m)
                        .map(|w| plan.shard_of(WorkerId(w as u32)) == s)
                        .collect(),
                    depth: Arc::clone(&depth),
                    incremental: config.incremental,
                    slow_ns,
                    timers: fleet_obs.as_ref().map(|o| Arc::clone(&o.timers[s])),
                    journal: fleet_obs.as_ref().map(|o| Arc::clone(&o.journal)),
                },
                interval: config.checkpoint_interval,
                max_recoveries: config.max_recoveries,
                fault: config.fault.clone(),
                dead: Arc::clone(&dead_flag),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("crowd-shard-{s}"))
                    .spawn(move || runtime.run(rx))
                    .expect("spawning a shard thread"),
            );
            senders.push(tx);
            depths.push(depth);
            dead.push(dead_flag);
        }
        Self {
            handle: ServiceHandle {
                shared: Arc::new(Shared {
                    plan,
                    n_tasks,
                    arity,
                    policy: config.policy,
                    depths,
                    dead,
                    senders: RwLock::new(Some(senders)),
                    ingest: Mutex::new(IngestState {
                        route_buf: vec![Vec::new(); n_shards],
                        ..IngestState::default()
                    }),
                    lifecycle: Mutex::new(Lifecycle {
                        handles,
                        final_stats: None,
                    }),
                    obs: fleet_obs,
                }),
            },
        }
    }

    /// A cloneable, `Send + Sync` handle sharing this fleet — the
    /// dispatch seam concurrent callers (e.g. wire connection
    /// threads) operate through. Handle clones never shut the fleet
    /// down on drop; this owner does.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// The plan the service routes by.
    pub fn plan(&self) -> &ShardPlan {
        self.handle.plan()
    }

    /// Number of shard threads.
    pub fn n_shards(&self) -> usize {
        self.handle.n_shards()
    }

    /// See [`ServiceHandle::ingest_batch`].
    pub fn ingest_batch(&mut self, batch: &[Response]) -> Result<IngestReceipt, ServiceError> {
        self.handle.ingest_batch(batch)
    }

    /// See [`ServiceHandle::ingest`].
    pub fn ingest(&mut self, response: Response) -> Result<IngestReceipt, ServiceError> {
        self.handle.ingest(response)
    }

    /// See [`ServiceHandle::assess_worker`].
    pub fn assess_worker(
        &self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<WorkerAssessment, ServiceError> {
        self.handle.assess_worker(worker, confidence)
    }

    /// See [`ServiceHandle::assess_worker_kary`].
    pub fn assess_worker_kary(
        &self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<KaryWorkerAssessment, ServiceError> {
        self.handle.assess_worker_kary(worker, confidence)
    }

    /// See [`ServiceHandle::assess_workers`].
    pub fn assess_workers(
        &self,
        workers: &[WorkerId],
        confidence: f64,
    ) -> Result<WorkerReport, ServiceError> {
        self.handle.assess_workers(workers, confidence)
    }

    /// See [`ServiceHandle::snapshot`].
    pub fn snapshot(&self, confidence: f64) -> Result<WorkerReport, ServiceError> {
        self.handle.snapshot(confidence)
    }

    /// See [`ServiceHandle::snapshot_kary`].
    pub fn snapshot_kary(&self, confidence: f64) -> Result<KaryWorkerReport, ServiceError> {
        self.handle.snapshot_kary(confidence)
    }

    /// See [`ServiceHandle::snapshot_degraded`].
    pub fn snapshot_degraded(&self, confidence: f64) -> Result<DegradedSnapshot, ServiceError> {
        self.handle.snapshot_degraded(confidence)
    }

    /// See [`ServiceHandle::snapshot_kary_degraded`].
    pub fn snapshot_kary_degraded(
        &self,
        confidence: f64,
    ) -> Result<DegradedKarySnapshot, ServiceError> {
        self.handle.snapshot_kary_degraded(confidence)
    }

    /// See [`ServiceHandle::drain`].
    pub fn drain(&self) -> Result<(), ServiceError> {
        self.handle.drain()
    }

    /// See [`ServiceHandle::stats`].
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        self.handle.stats()
    }

    /// See [`ServiceHandle::metrics`].
    pub fn metrics(&self) -> Result<ServiceMetrics, ServiceError> {
        self.handle.metrics()
    }

    /// See [`ServiceHandle::shutdown`].
    pub fn shutdown(&mut self) -> Result<ServiceStats, ServiceError> {
        self.handle.shutdown()
    }
}

impl Drop for AssessmentService {
    /// Dropping the owner shuts the fleet down gracefully (queues
    /// close, threads drain and join) so tests and callers cannot
    /// leak detached shard threads. A shard panic surfaced here is
    /// already reported through the typed shutdown/stats paths; Drop
    /// must not double-panic.
    fn drop(&mut self) {
        let _ = self.handle.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint task neighbourhoods (workers 0–2 on tasks 0–11,
    /// workers 3–5 on tasks 12–23), so the two clustered shards have
    /// disjoint closures and every response subscribes to exactly one
    /// shard — the deterministic substrate the backpressure tests
    /// need.
    fn small_fleet() -> (crowd_data::ResponseMatrix, ShardPlan) {
        use crowd_data::{Label, ResponseMatrixBuilder, TaskId};
        let mut b = ResponseMatrixBuilder::new(6, 24, 2);
        for w in 0..3u32 {
            for t in 0..12u32 {
                b.push(WorkerId(w), TaskId(t), Label(((w + t) % 2) as u16))
                    .unwrap();
            }
        }
        for w in 3..6u32 {
            for t in 12..24u32 {
                b.push(WorkerId(w), TaskId(t), Label((w % 2) as u16))
                    .unwrap();
            }
        }
        let data = b.build().unwrap();
        let plan = ShardPlan::build_clustered(&data, 2);
        (data, plan)
    }

    fn send_raw(svc: &AssessmentService, s: usize, msg: ShardMsg) {
        svc.handle.shared.depths[s].on_push();
        svc.handle.shared.senders.read().unwrap().as_ref().unwrap()[s]
            .send((None, msg))
            .unwrap();
    }

    /// Parks shard `s` and returns the gate; dropping the gate
    /// releases the shard. While parked the shard consumes exactly
    /// the Stall message, so `queue_capacity` further messages fill
    /// the queue deterministically.
    fn stall(svc: &AssessmentService, s: usize) -> Sender<()> {
        let (gate, gate_rx) = channel();
        send_raw(svc, s, ShardMsg::Stall(gate_rx));
        // Wait until the shard has actually dequeued the stall
        // message, so the whole queue capacity is ours to fill.
        while svc.handle.shared.depths[s].depth.load(Ordering::Relaxed) != 0 {
            std::thread::yield_now();
        }
        gate
    }

    #[test]
    fn shed_policy_drops_with_accounting() {
        let (data, plan) = small_fleet();
        let mut svc = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default()
                .with_queue_capacity(1)
                .with_policy(BackpressurePolicy::Shed),
        );
        let all: Vec<Response> = data.iter().collect();
        let home0: Vec<Response> = all
            .iter()
            .filter(|r| svc.plan().closure_shards(r.worker) == [0])
            .take(4)
            .copied()
            .collect();
        assert!(home0.len() >= 2, "need shard-0-only responses");
        let gate = stall(&svc, 0);
        // First batch occupies the single queue slot...
        let first = svc.ingest_batch(&home0[..1]).unwrap();
        assert_eq!((first.routed, first.shed_batches), (1, 0));
        // ...the second is shed, with accounting on receipt and stats.
        let second = svc.ingest_batch(&home0[1..2]).unwrap();
        assert_eq!(second.routed, 0);
        assert_eq!((second.shed_batches, second.shed_responses), (1, 1));
        drop(gate);
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(stats.dropped_batches, 1);
        assert_eq!(stats.dropped_responses, 1);
        assert_eq!(stats.submitted, 2);
        assert!(stats.max_queue_high_water() >= 1);
        // The shard recorded only the delivered response.
        assert_eq!(stats.shards[0].responses, 1);
    }

    #[test]
    fn reject_policy_fails_with_queue_full() {
        let (data, plan) = small_fleet();
        let mut svc = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default()
                .with_queue_capacity(1)
                .with_policy(BackpressurePolicy::Reject),
        );
        let all: Vec<Response> = data.iter().collect();
        let home0: Vec<Response> = all
            .iter()
            .filter(|r| svc.plan().closure_shards(r.worker) == [0])
            .take(2)
            .copied()
            .collect();
        let gate = stall(&svc, 0);
        svc.ingest_batch(&home0[..1]).unwrap();
        match svc.ingest_batch(&home0[1..2]) {
            Err(ServiceError::QueueFull {
                shard: 0,
                dropped: 1,
            }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        drop(gate);
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(stats.dropped_responses, 1);
        assert_eq!(stats.shards[0].responses, 1);
    }

    #[test]
    fn block_policy_waits_out_a_full_queue() {
        let (data, plan) = small_fleet();
        let mut svc = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default().with_queue_capacity(1),
        );
        let all: Vec<Response> = data.iter().collect();
        let gate = stall(&svc, 0);
        // Release the gate shortly after; the blocked send below must
        // then complete instead of erroring or dropping.
        let release = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(gate);
        });
        let mut routed = 0;
        for chunk in all.chunks(8) {
            routed += svc.ingest_batch(chunk).unwrap().routed;
        }
        release.join().unwrap();
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(stats.dropped_batches, 0);
        assert_eq!(
            stats.shards.iter().map(|s| s.responses).sum::<u64>(),
            routed as u64
        );
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let (data, plan) = small_fleet();
        let mut svc =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let all: Vec<Response> = data.iter().collect();
        let mut routed = 0;
        for chunk in all.chunks(16) {
            routed += svc.ingest_batch(chunk).unwrap().routed;
        }
        // Shutdown with ingests possibly still queued: all of them
        // must be processed before the threads exit.
        let final_stats = svc.shutdown().unwrap();
        assert_eq!(
            final_stats.shards.iter().map(|s| s.responses).sum::<u64>(),
            routed as u64
        );
        assert_eq!(final_stats.total_rejected(), 0);
        // Idempotent, and post-shutdown calls fail cleanly.
        let again = svc.shutdown().unwrap();
        assert_eq!(again.shards, final_stats.shards);
        assert!(matches!(
            svc.ingest(all[0]),
            Err(ServiceError::ShuttingDown)
        ));
        assert!(matches!(
            svc.assess_worker(WorkerId(0), 0.9),
            Err(ServiceError::ShuttingDown)
        ));
        assert!(matches!(svc.snapshot(0.9), Err(ServiceError::ShuttingDown)));
        assert!(svc.stats().is_ok(), "stats served from captured finals");
    }

    /// Regression (PR 7): a dead shard thread must surface as
    /// [`ServiceError::ShardPanicked`] from `shutdown()` and `stats()`
    /// — never as silently fabricated zeroed counters. Supervision is
    /// disabled (`checkpoint_interval == 0`) to pin the unrecovered
    /// path.
    #[test]
    fn shard_panic_is_reported_not_swallowed() {
        let (data, plan) = small_fleet();
        let mut svc = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default().with_checkpoint_interval(0),
        );
        let all: Vec<Response> = data.iter().collect();
        for chunk in all.chunks(16) {
            svc.ingest_batch(chunk).unwrap();
        }
        send_raw(&svc, 1, ShardMsg::Panic);
        match svc.shutdown() {
            Err(ServiceError::ShardPanicked { shard: 1 }) => {}
            other => panic!("expected ShardPanicked for shard 1, got {other:?}"),
        }
        // The panic stays visible on every later stats()/shutdown().
        assert!(matches!(
            svc.stats(),
            Err(ServiceError::ShardPanicked { shard: 1 })
        ));
        assert!(matches!(
            svc.shutdown(),
            Err(ServiceError::ShardPanicked { shard: 1 })
        ));
    }

    /// With supervision on (the default), an injected panic is
    /// recovered transparently: the fleet keeps serving, the final
    /// counters match a clean run, and the recovery is counted.
    #[test]
    fn injected_panic_recovers_by_default() {
        let (data, plan) = small_fleet();
        let mut svc = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default().with_checkpoint_interval(4),
        );
        let all: Vec<Response> = data.iter().collect();
        let mut routed = 0;
        for chunk in all.chunks(8) {
            routed += svc.ingest_batch(chunk).unwrap().routed;
        }
        send_raw(&svc, 1, ShardMsg::Panic);
        // The crash is invisible to callers: further ingest works and
        // the drain barrier waits out the recovery.
        for chunk in all.chunks(8).take(1) {
            // Re-ingest one chunk's worth of duplicates: rejected by
            // the substrate, but they exercise the recovered queue.
            svc.ingest_batch(chunk).unwrap();
        }
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(stats.total_recoveries(), 1, "exactly one respawn");
        assert!(stats.total_checkpoints() >= 1, "periodic checkpoints ran");
        assert_eq!(
            stats.shards.iter().map(|s| s.responses).sum::<u64>(),
            routed as u64,
            "WAL replay restored every pre-crash response exactly once"
        );
        svc.shutdown().unwrap();
    }

    /// When the recovery budget is exhausted the shard dies for real:
    /// the *next* ingest routed to it fails promptly with
    /// [`ServiceError::ShardPanicked`] — not by buffering into a queue
    /// nobody drains until `QueueFull` lies about the cause.
    #[test]
    fn exhausted_recoveries_fail_ingest_promptly() {
        let (data, plan) = small_fleet();
        let mut svc = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default()
                .with_checkpoint_interval(4)
                .with_max_recoveries(1),
        );
        let all: Vec<Response> = data.iter().collect();
        for chunk in all.chunks(8) {
            svc.ingest_batch(chunk).unwrap();
        }
        send_raw(&svc, 0, ShardMsg::Panic); // recovered (budget 1)
        svc.drain().unwrap();
        send_raw(&svc, 0, ShardMsg::Panic); // budget exhausted: dies
        // Wait until the supervisor has marked the shard dead (the
        // panic propagates asynchronously on the shard thread).
        while !svc.handle.shared.dead[0].load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let home0: Vec<Response> = all
            .iter()
            .filter(|r| svc.plan().closure_shards(r.worker) == [0])
            .take(1)
            .copied()
            .collect();
        match svc.ingest_batch(&home0) {
            Err(ServiceError::ShardPanicked { shard: 0 }) => {}
            other => panic!("expected prompt ShardPanicked, got {other:?}"),
        }
        let stats = svc.stats();
        assert!(
            matches!(stats, Err(ServiceError::ShardPanicked { shard: 0 })),
            "stats reports the dead shard: {stats:?}"
        );
        // Degraded snapshot still serves the surviving shard.
        let degraded = svc.snapshot_degraded(0.9).unwrap();
        assert_eq!(degraded.outages.len(), 1);
        assert_eq!(degraded.outages[0].shard, 0);
        assert!(matches!(
            degraded.outages[0].error,
            ServiceError::ShardPanicked { shard: 0 }
        ));
        assert!(
            degraded.report.assessments.len() + degraded.report.failures.len() > 0,
            "shard 1's anchors were still evaluated"
        );
        match svc.shutdown() {
            Err(ServiceError::ShardPanicked { shard: 0 }) => {}
            other => panic!("expected ShardPanicked at shutdown, got {other:?}"),
        }
    }

    /// A healthy fleet's degraded snapshot is outage-free and merges
    /// every shard — same anchors as the strict snapshot.
    #[test]
    fn degraded_snapshot_without_outages_matches_snapshot() {
        let (data, plan) = small_fleet();
        let mut svc =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let all: Vec<Response> = data.iter().collect();
        for chunk in all.chunks(16) {
            svc.ingest_batch(chunk).unwrap();
        }
        let strict = svc.snapshot(0.9).unwrap();
        let degraded = svc.snapshot_degraded(0.9).unwrap();
        assert!(degraded.outages.is_empty());
        assert_eq!(degraded.report.assessments.len(), strict.assessments.len());
        for (a, b) in degraded.report.assessments.iter().zip(&strict.assessments) {
            assert_eq!(a, b, "bit-identical to the strict snapshot");
        }
        let kary = svc.snapshot_kary_degraded(0.9).unwrap();
        assert!(kary.outages.is_empty());
        svc.shutdown().unwrap();
    }

    /// Regression (PR 7): `stats()` racing (or following) a shutdown
    /// must return a typed result — the old implementation was
    /// panic-reachable through `.expect("post-shutdown stats are
    /// local")`.
    #[test]
    fn stats_never_panics_around_shutdown() {
        let (data, plan) = small_fleet();
        let svc =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let handle = svc.handle();
        let racers: Vec<_> = (0..4)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    // Every outcome must be a typed Ok/Err, reached
                    // without panicking (the join below proves it).
                    for _ in 0..100 {
                        match h.stats() {
                            Ok(_)
                            | Err(ServiceError::ShuttingDown)
                            | Err(ServiceError::ShardUnavailable { .. }) => {}
                            Err(other) => panic!("unexpected stats error: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        let shut = {
            let h = handle.clone();
            std::thread::spawn(move || h.shutdown())
        };
        for r in racers {
            r.join().expect("stats() must never panic");
        }
        shut.join().expect("shutdown must not panic").unwrap();
        // Post-shutdown stats serve the captured finals.
        assert!(handle.stats().is_ok());
    }

    /// Regression (PR 7): an out-of-range worker id anywhere in a
    /// batch fails the whole call with `ServiceError::Data` before any
    /// shard queue sees a frame — the valid prefix must not be
    /// partially applied and no handle-side counter may move.
    #[test]
    fn mixed_batch_with_bad_id_is_rejected_atomically() {
        let (data, plan) = small_fleet();
        let mut svc =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let mut batch: Vec<Response> = data.iter().take(5).collect();
        batch.push(Response {
            worker: WorkerId(6), // m == 6, so the last valid id is 5
            task: batch[0].task,
            label: batch[0].label,
        });
        match svc.ingest_batch(&batch) {
            Err(ServiceError::Data(DataError::UnknownId {
                kind: "worker",
                id: 6,
            })) => {}
            other => panic!("expected UnknownId for worker 6, got {other:?}"),
        }
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(stats.submitted, 0, "counters untouched by a failed batch");
        assert_eq!(stats.batch_sizes.total(), 0);
        assert_eq!(
            stats.shards.iter().map(|s| s.responses).sum::<u64>(),
            0,
            "no shard saw any part of the mixed batch"
        );
        // The same batch without the bad tail applies cleanly.
        let receipt = svc.ingest_batch(&batch[..5]).unwrap();
        assert_eq!(receipt.routed, 5);
    }

    /// Handle clones share one fleet: ingest through one is visible to
    /// snapshots through another, and dropping clones does not shut
    /// the fleet down.
    #[test]
    fn handles_share_the_fleet_across_threads() {
        let (data, plan) = small_fleet();
        let svc =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let all: Vec<Response> = data.iter().collect();
        let workers: Vec<_> = all
            .chunks(all.len() / 3 + 1)
            .map(|chunk| {
                let h = svc.handle();
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    let mut routed = 0;
                    for piece in chunk.chunks(4) {
                        routed += h.ingest_batch(piece).unwrap().routed;
                    }
                    routed
                })
            })
            .collect();
        let routed: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(routed, all.len());
        let h = svc.handle();
        drop(h); // dropping a clone must not kill the fleet
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(
            stats.shards.iter().map(|s| s.responses).sum::<u64>(),
            all.len() as u64
        );
        assert_eq!(stats.submitted, all.len() as u64);
    }
}
