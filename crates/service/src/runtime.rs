//! The thread-per-shard runtime; see the [crate docs](crate) for the
//! architecture and guarantees.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError, channel, sync_channel};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use crowd_core::{
    KaryMWorkerEstimator, KaryReportCache, KaryWorkerAssessment, KaryWorkerReport,
    MWorkerEstimator, ReportCache, WorkerAssessment, WorkerReport,
};
use crowd_data::{DataError, PairBackend, Response, StreamingIndex, WorkerId};
use crowd_obs::{EventJournal, EventKind};
use crowd_shard::{ShardPlan, merge_kary_reports, merge_reports};

use crate::config::{BackpressurePolicy, ServiceConfig};
use crate::error::ServiceError;
use crate::metrics::{ServiceMetrics, StageTimers, StageTimings};
use crate::stats::{BatchHistogram, ServiceStats, ShardStats};

/// What travels on a shard queue: the message plus its enqueue stamp.
/// The stamp is `None` when the fleet runs with metrics off — taking
/// (or not taking) it is the *only* per-message ingest-path cost of
/// the instrumentation switch, which is how reports stay bit-identical
/// and throughput stays within noise of the uninstrumented baseline.
type Envelope = (Option<Instant>, ShardMsg);

/// Shared queue-depth gauge: the handle increments on enqueue, the
/// shard thread decrements on dequeue, and the high-water mark is
/// taken on the enqueue side.
#[derive(Debug, Default)]
struct QueueDepth {
    depth: AtomicUsize,
    high: AtomicUsize,
}

impl QueueDepth {
    fn on_push(&self) {
        let now = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    fn on_pop(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    fn high_water(&self) -> usize {
        self.high.load(Ordering::Relaxed)
    }
}

/// One message on a shard's bounded queue. Replies are sent
/// best-effort (`let _ =`): a caller that dropped its receiver —
/// e.g. during teardown — must never panic the shard thread.
enum ShardMsg {
    /// A contiguous group of responses subscribed to this shard.
    Ingest(Vec<Response>),
    /// Evaluate one worker (binary, Algorithm A2).
    AssessWorker {
        worker: WorkerId,
        confidence: f64,
        reply: Sender<Result<WorkerAssessment, ServiceError>>,
    },
    /// Evaluate one worker (k-ary, the m-worker A3 extension).
    AssessWorkerKary {
        worker: WorkerId,
        confidence: f64,
        reply: Sender<Result<KaryWorkerAssessment, ServiceError>>,
    },
    /// Evaluate all of this shard's anchors (binary).
    AssessAnchors {
        confidence: f64,
        reply: Sender<Result<WorkerReport, ServiceError>>,
    },
    /// Evaluate all of this shard's anchors (k-ary).
    AssessAnchorsKary {
        confidence: f64,
        reply: Sender<Result<KaryWorkerReport, ServiceError>>,
    },
    /// Report the shard's counters.
    Stats { reply: Sender<ShardStats> },
    /// FIFO barrier: reply once everything enqueued earlier has been
    /// processed.
    Drain { reply: Sender<()> },
    /// Test-only: park the shard until the gate sender drops, so
    /// backpressure tests can fill the bounded queue deterministically.
    #[cfg(test)]
    Stall(Receiver<()>),
    /// Test-only: panic the shard thread, so the dead-shard reporting
    /// paths ([`ServiceError::ShardPanicked`]) can be pinned by tests.
    #[cfg(test)]
    Panic,
}

/// The state one shard thread owns.
struct ShardWorker {
    stream: StreamingIndex,
    binary: MWorkerEstimator,
    kary: KaryMWorkerEstimator,
    anchors: Vec<WorkerId>,
    /// `is_home[w]`: this shard evaluates `w`, so it is the one shard
    /// that counts `w`'s rejected responses (exact fleet totals).
    is_home: Vec<bool>,
    depth: Arc<QueueDepth>,
    stats: ShardStats,
    /// Whether assessment requests go through the epoch-versioned
    /// report caches below ([`ServiceConfig::incremental`]); off means
    /// every request recomputes from scratch.
    incremental: bool,
    /// Epoch-versioned rows of the last binary assessments, keyed to
    /// this shard's `stream` — drain-point snapshots re-evaluate only
    /// anchors dirtied since their cached rows, bit-identically (see
    /// `crowd_core::cached`).
    binary_cache: ReportCache,
    /// The k-ary twin.
    kary_cache: KaryReportCache,
    /// Stage timers + journal wiring; `None` when spawned with
    /// [`ServiceConfig::metrics`] off. Nothing behind this Option is
    /// ever consulted by evaluation — only timed around it.
    obs: Option<ShardObs>,
}

/// One shard thread's recording side: timers shared (`Arc`) with the
/// handle so scrapes never cross the shard queue, plus last-seen
/// substrate maintenance counters for delta-based journaling.
struct ShardObs {
    timers: Arc<StageTimers>,
    journal: Arc<EventJournal>,
    /// [`ServiceConfig::slow_op_threshold`], in nanoseconds.
    slow_ns: u64,
    prev_reanchors: usize,
    prev_rebuilds: usize,
    prev_full_refreshes: u64,
}

/// Which per-shard stage histogram a timed section lands in.
#[derive(Clone, Copy)]
enum Stage {
    BatchApply,
    DrainEval,
}

impl ShardWorker {
    fn run(mut self, rx: Receiver<Envelope>) -> ShardStats {
        while let Ok((enqueued, msg)) = rx.recv() {
            self.depth.on_pop();
            if let (Some(obs), Some(t0)) = (&self.obs, enqueued) {
                obs.timers.queue_wait.record_duration(t0.elapsed());
            }
            match msg {
                ShardMsg::Ingest(batch) => {
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    self.stats.batches += 1;
                    for r in batch {
                        match self.stream.record_response(r) {
                            Ok(()) => self.stats.responses += 1,
                            // Every subscribing shard sees the same
                            // row state, so they reject identically;
                            // count only at home to keep the fleet
                            // total exact.
                            Err(_) => {
                                if self.is_home[r.worker.index()] {
                                    self.stats.rejected += 1;
                                }
                            }
                        }
                    }
                    self.observe_stage(Stage::BatchApply, t0);
                }
                ShardMsg::AssessWorker {
                    worker,
                    confidence,
                    reply,
                } => {
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    self.stats.assess_requests += 1;
                    let out = if self.incremental {
                        self.binary_cache
                            .assess(&self.binary, &self.stream, worker, confidence)
                    } else {
                        self.binary
                            .evaluate_worker_on(&self.stream, worker, confidence)
                    }
                    .map_err(ServiceError::Estimate);
                    self.observe_stage(Stage::DrainEval, t0);
                    let _ = reply.send(out);
                }
                ShardMsg::AssessWorkerKary {
                    worker,
                    confidence,
                    reply,
                } => {
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    self.stats.assess_requests += 1;
                    let out = if self.incremental {
                        self.kary_cache
                            .assess(&self.kary, &self.stream, worker, confidence)
                    } else {
                        self.kary
                            .evaluate_worker_streaming(&self.stream, worker, confidence)
                    }
                    .map_err(ServiceError::Estimate);
                    self.observe_stage(Stage::DrainEval, t0);
                    let _ = reply.send(out);
                }
                ShardMsg::AssessAnchors { confidence, reply } => {
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    self.stats.assess_requests += 1;
                    let out = if self.incremental {
                        self.binary_cache.refresh(
                            &self.binary,
                            &self.stream,
                            &self.anchors,
                            confidence,
                        )
                    } else {
                        self.binary
                            .evaluate_workers_on(&self.stream, &self.anchors, confidence)
                    }
                    .map_err(ServiceError::Estimate);
                    self.observe_stage(Stage::DrainEval, t0);
                    let _ = reply.send(out);
                }
                ShardMsg::AssessAnchorsKary { confidence, reply } => {
                    let t0 = self.obs.as_ref().map(|_| Instant::now());
                    self.stats.assess_requests += 1;
                    let out = if self.incremental {
                        self.kary_cache
                            .refresh(&self.kary, &self.stream, &self.anchors, confidence)
                    } else {
                        self.kary.evaluate_workers_streaming(
                            &self.stream,
                            &self.anchors,
                            confidence,
                        )
                    }
                    .map_err(ServiceError::Estimate);
                    self.observe_stage(Stage::DrainEval, t0);
                    let _ = reply.send(out);
                }
                ShardMsg::Stats { reply } => {
                    let _ = reply.send(self.snapshot_stats());
                }
                ShardMsg::Drain { reply } => {
                    let _ = reply.send(());
                }
                #[cfg(test)]
                ShardMsg::Stall(gate) => {
                    // Blocks until the test drops its sender.
                    let _ = gate.recv();
                }
                #[cfg(test)]
                ShardMsg::Panic => panic!("injected shard panic (test)"),
            }
            self.journal_maintenance();
        }
        // Queue disconnected: the handle dropped its senders
        // (graceful shutdown). Everything enqueued before the drop
        // has been processed above.
        self.snapshot_stats()
    }

    /// Closes one timed stage: records the elapsed time into the
    /// stage histogram and journals a [`EventKind::SlowOp`] when it
    /// crossed the configured threshold. A no-op (and `started` is
    /// `None`) with metrics off.
    fn observe_stage(&self, stage: Stage, started: Option<Instant>) {
        let (Some(obs), Some(t0)) = (&self.obs, started) else {
            return;
        };
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let (hist, name) = match stage {
            Stage::BatchApply => (&obs.timers.batch_apply, "batch_apply"),
            Stage::DrainEval => (&obs.timers.drain_eval, "drain_eval"),
        };
        hist.record(ns);
        if ns >= obs.slow_ns {
            obs.journal.record(
                EventKind::SlowOp,
                self.stats.shard as u32,
                ns,
                obs.slow_ns,
                name,
            );
        }
    }

    /// Journals substrate maintenance that happened while handling
    /// the last message, by counter delta: re-anchors, full gram
    /// rebuilds and wholesale cache refreshes (`a` = how many). Three
    /// counter reads per message when metrics are on; nothing at all
    /// when off.
    fn journal_maintenance(&mut self) {
        let Some(obs) = &mut self.obs else { return };
        let shard = self.stats.shard as u32;
        let reanchors = self.stream.reanchor_count();
        if reanchors > obs.prev_reanchors {
            let delta = (reanchors - obs.prev_reanchors) as u64;
            obs.journal.record(EventKind::Reanchor, shard, delta, 0, "");
            obs.prev_reanchors = reanchors;
        }
        let rebuilds = self.stream.gram_rebuild_count();
        if rebuilds > obs.prev_rebuilds {
            let delta = (rebuilds - obs.prev_rebuilds) as u64;
            obs.journal
                .record(EventKind::GramRebuild, shard, delta, 0, "");
            obs.prev_rebuilds = rebuilds;
        }
        let refreshes =
            self.binary_cache.stats().full_refreshes + self.kary_cache.stats().full_refreshes;
        if refreshes > obs.prev_full_refreshes {
            let delta = refreshes - obs.prev_full_refreshes;
            obs.journal
                .record(EventKind::CacheFullRefresh, shard, delta, 0, "");
            obs.prev_full_refreshes = refreshes;
        }
    }

    fn snapshot_stats(&self) -> ShardStats {
        let mut s = self.stats.clone();
        s.reanchors = self.stream.reanchor_count();
        s.gram_patches = self.stream.gram_patch_count();
        s.gram_rebuilds = self.stream.gram_rebuild_count();
        s.queue_high_water = self.depth.high_water();
        let (b, k) = (self.binary_cache.stats(), self.kary_cache.stats());
        s.cache_hits = b.hits + k.hits;
        s.cache_misses = b.misses + k.misses;
        s.cache_full_refreshes = b.full_refreshes + k.full_refreshes;
        s
    }
}

/// Accounting for one [`AssessmentService::ingest_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Per-shard response deliveries enqueued (a response subscribed
    /// by `k` shards counts `k` times).
    pub routed: usize,
    /// Shard-bound groups shed because a queue was full
    /// ([`BackpressurePolicy::Shed`] only).
    pub shed_batches: usize,
    /// Per-shard response deliveries lost with those groups.
    pub shed_responses: usize,
}

/// The mutable routing state behind [`ServiceHandle::ingest_batch`]:
/// one lock serializes routing (batches must land on the FIFO queues
/// in submission order for drain points to be well-defined) and owns
/// the handle-side counters.
#[derive(Debug, Default)]
struct IngestState {
    /// Reusable per-shard grouping buffers.
    route_buf: Vec<Vec<Response>>,
    submitted: u64,
    dropped_batches: u64,
    dropped_responses: u64,
    batch_sizes: BatchHistogram,
}

/// Shard-thread ownership: join handles while live, the per-shard
/// final counters after shutdown (`None` for a shard whose thread
/// panicked — surfaced as [`ServiceError::ShardPanicked`], never
/// fabricated as zeros).
#[derive(Debug, Default)]
struct Lifecycle {
    handles: Vec<JoinHandle<ShardStats>>,
    final_stats: Option<Vec<Option<ShardStats>>>,
}

/// The handle-visible observability wiring: one stage-timer set per
/// shard (shared with the shard thread) and the fleet journal.
/// `None` when the fleet runs with [`ServiceConfig::metrics`] off.
#[derive(Debug)]
struct FleetObs {
    timers: Vec<Arc<StageTimers>>,
    journal: Arc<EventJournal>,
}

/// State shared by every [`ServiceHandle`] clone.
#[derive(Debug)]
struct Shared {
    plan: ShardPlan,
    n_tasks: usize,
    arity: u16,
    policy: BackpressurePolicy,
    depths: Vec<Arc<QueueDepth>>,
    /// `Some` while live; taken (dropped) at shutdown so the shard
    /// queues disconnect and the threads drain and exit.
    senders: RwLock<Option<Vec<SyncSender<Envelope>>>>,
    ingest: Mutex<IngestState>,
    lifecycle: Mutex<Lifecycle>,
    obs: Option<FleetObs>,
}

/// Ignore lock poisoning: a poisoned lock means some thread panicked
/// while holding it; the state it guards (routing buffers, counters,
/// join handles) stays structurally valid, and the panic itself is
/// surfaced through [`ServiceError::ShardPanicked`] /
/// [`ServiceError::ShardUnavailable`] — never as a second panic from
/// a public method.
fn lock_ignore_poison<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// A cloneable, thread-safe handle to a running [`AssessmentService`]
/// fleet: the dispatch seam the wire server fans its connection
/// threads into.
///
/// Every method takes `&self`; clones share the same shard threads,
/// queues and counters. Ingest is serialized by an internal lock (the
/// FIFO drain-point contract needs a single routing order); assessment
/// and control requests from different threads proceed concurrently.
/// Unlike [`AssessmentService`], dropping a `ServiceHandle` does *not*
/// shut the fleet down.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

// The message enum holds reply senders; keep its Debug noise out of
// the public type by formatting the handle fields only.
impl std::fmt::Debug for ShardMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::Ingest(b) => return write!(f, "Ingest({} responses)", b.len()),
            Self::AssessWorker { .. } => "AssessWorker",
            Self::AssessWorkerKary { .. } => "AssessWorkerKary",
            Self::AssessAnchors { .. } => "AssessAnchors",
            Self::AssessAnchorsKary { .. } => "AssessAnchorsKary",
            Self::Stats { .. } => "Stats",
            Self::Drain { .. } => "Drain",
            #[cfg(test)]
            Self::Stall(_) => "Stall",
            #[cfg(test)]
            Self::Panic => "Panic",
        };
        f.write_str(name)
    }
}

impl ServiceHandle {
    /// The plan the service routes by.
    pub fn plan(&self) -> &ShardPlan {
        &self.shared.plan
    }

    /// Number of shard threads.
    pub fn n_shards(&self) -> usize {
        self.shared.plan.n_shards()
    }

    /// Task-id space the fleet was spawned over.
    pub fn n_tasks(&self) -> usize {
        self.shared.n_tasks
    }

    /// Label arity the fleet was spawned over.
    pub fn arity(&self) -> u16 {
        self.shared.arity
    }

    /// Enqueues one batch of responses: validates ids, groups the
    /// batch by subscribing shard ([`ShardPlan::closure_shards`]) and
    /// hands each shard one contiguous group. Full queues behave per
    /// the configured [`BackpressurePolicy`]. Ingest is asynchronous;
    /// substrate-level rejects (duplicates, bad labels) are counted in
    /// [`ShardStats::rejected`], not returned here.
    ///
    /// Worker ids are validated against [`ShardPlan::n_workers`] (as
    /// widths, no truncating casts) **before** any routing state is
    /// touched: a batch containing one out-of-range id fails whole —
    /// no shard queue sees any part of it, and no counter moves.
    pub fn ingest_batch(&self, batch: &[Response]) -> Result<IngestReceipt, ServiceError> {
        // Routing needs in-range worker ids; reject up front so a bad
        // id fails the call instead of poisoning per-shard accounting
        // or partially applying the batch's valid prefix.
        let m = self.shared.plan.n_workers();
        for r in batch {
            if r.worker.index() >= m {
                return Err(ServiceError::Data(DataError::UnknownId {
                    kind: "worker",
                    id: r.worker.0,
                }));
            }
        }
        // Hold the senders read-guard for the whole routing pass so a
        // concurrent shutdown (which takes the write side) cannot
        // disconnect the queues under a half-routed batch.
        let senders_guard = self
            .shared
            .senders
            .read()
            .unwrap_or_else(|e| e.into_inner());
        let Some(senders) = senders_guard.as_ref() else {
            return Err(ServiceError::ShuttingDown);
        };
        let mut ing = lock_ignore_poison(&self.shared.ingest);
        ing.batch_sizes.record(batch.len());
        ing.submitted += batch.len() as u64;
        for r in batch {
            for &s in self.shared.plan.closure_shards(r.worker) {
                ing.route_buf[s as usize].push(*r);
            }
        }
        let mut receipt = IngestReceipt::default();
        let mut rejected: Option<(usize, usize)> = None;
        for s in 0..ing.route_buf.len() {
            let group = std::mem::take(&mut ing.route_buf[s]);
            if group.is_empty() {
                continue;
            }
            let len = group.len();
            if let Some((_, dropped)) = &mut rejected {
                // A Reject already fired: drain the remaining groups
                // into the dropped count without sending.
                *dropped += len;
                continue;
            }
            self.shared.depths[s].on_push();
            let stamp = self.shared.obs.as_ref().map(|_| Instant::now());
            match self.shared.policy {
                BackpressurePolicy::Block => {
                    match senders[s].send((stamp, ShardMsg::Ingest(group))) {
                        Ok(()) => receipt.routed += len,
                        Err(_) => {
                            self.shared.depths[s].on_pop();
                            return Err(ServiceError::ShardUnavailable { shard: s });
                        }
                    }
                }
                BackpressurePolicy::Shed | BackpressurePolicy::Reject => {
                    match senders[s].try_send((stamp, ShardMsg::Ingest(group))) {
                        Ok(()) => receipt.routed += len,
                        Err(TrySendError::Full(_)) => {
                            self.shared.depths[s].on_pop();
                            if self.shared.policy == BackpressurePolicy::Shed {
                                receipt.shed_batches += 1;
                                receipt.shed_responses += len;
                                ing.dropped_batches += 1;
                                ing.dropped_responses += len as u64;
                                if let Some(obs) = &self.shared.obs {
                                    obs.journal.record(
                                        EventKind::Shed,
                                        s as u32,
                                        len as u64,
                                        0,
                                        "queue_full",
                                    );
                                }
                            } else {
                                rejected = Some((s, len));
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.shared.depths[s].on_pop();
                            return Err(ServiceError::ShardUnavailable { shard: s });
                        }
                    }
                }
            }
        }
        if let Some((shard, dropped)) = rejected {
            ing.dropped_responses += dropped as u64;
            if let Some(obs) = &self.shared.obs {
                obs.journal.record(
                    EventKind::Reject,
                    shard as u32,
                    dropped as u64,
                    0,
                    "queue_full",
                );
            }
            return Err(ServiceError::QueueFull { shard, dropped });
        }
        Ok(receipt)
    }

    /// [`ServiceHandle::ingest_batch`] for a single response — the
    /// request-at-a-time floor the batching benchmark compares
    /// against.
    pub fn ingest(&self, response: Response) -> Result<IngestReceipt, ServiceError> {
        self.ingest_batch(std::slice::from_ref(&response))
    }

    /// Evaluates one worker (binary) on its home shard's maintained
    /// substrate. FIFO queues mean the evaluation observes every
    /// ingest enqueued before this call.
    pub fn assess_worker(
        &self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<WorkerAssessment, ServiceError> {
        let shard = self.home_shard_of(worker)?;
        let (reply, rx) = channel();
        self.send_to(
            shard,
            ShardMsg::AssessWorker {
                worker,
                confidence,
                reply,
            },
        )?;
        rx.recv()
            .map_err(|_| ServiceError::ShardUnavailable { shard })?
    }

    /// Evaluates one worker's k×k response-probability matrix on its
    /// home shard's maintained substrate.
    pub fn assess_worker_kary(
        &self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<KaryWorkerAssessment, ServiceError> {
        let shard = self.home_shard_of(worker)?;
        let (reply, rx) = channel();
        self.send_to(
            shard,
            ShardMsg::AssessWorkerKary {
                worker,
                confidence,
                reply,
            },
        )?;
        rx.recv()
            .map_err(|_| ServiceError::ShardUnavailable { shard })?
    }

    /// Evaluates an explicit set of workers (binary), each on its home
    /// shard's maintained substrate, returning one report in canonical
    /// worker order. Per-worker estimation failures land in the
    /// report's `failures` (the same partial-result contract as
    /// [`ServiceHandle::snapshot`]); runtime failures (shutdown, dead
    /// shard) fail the call.
    pub fn assess_workers(
        &self,
        workers: &[WorkerId],
        confidence: f64,
    ) -> Result<WorkerReport, ServiceError> {
        // Enqueue all requests before awaiting any reply so distinct
        // home shards evaluate concurrently.
        let mut rxs = Vec::with_capacity(workers.len());
        for &worker in workers {
            let shard = self.home_shard_of(worker)?;
            let (reply, rx) = channel();
            self.send_to(
                shard,
                ShardMsg::AssessWorker {
                    worker,
                    confidence,
                    reply,
                },
            )?;
            rxs.push((worker, shard, rx));
        }
        let mut report = WorkerReport::default();
        for (worker, shard, rx) in rxs {
            match rx
                .recv()
                .map_err(|_| ServiceError::ShardUnavailable { shard })?
            {
                Ok(a) => report.assessments.push(a),
                Err(ServiceError::Estimate(e)) => report.failures.push((worker, e)),
                Err(other) => return Err(other),
            }
        }
        report.assessments.sort_by_key(|a| a.worker);
        report.failures.sort_by_key(|f| f.0);
        Ok(report)
    }

    /// Fleet snapshot (binary): every shard evaluates its anchors
    /// against its maintained substrate, and the per-shard reports
    /// merge in canonical worker order ([`merge_reports`]) —
    /// bit-identical to a serial
    /// [`crowd_core::IncrementalEvaluator::evaluate_all`] over the
    /// same responses. Requests are enqueued on all shards before any
    /// reply is awaited, so shards evaluate concurrently.
    pub fn snapshot(&self, confidence: f64) -> Result<WorkerReport, ServiceError> {
        let m = self.shared.plan.n_workers();
        if m < 3 {
            return Err(ServiceError::Estimate(
                crowd_core::EstimateError::NotEnoughWorkers { got: m, need: 3 },
            ));
        }
        let mut rxs = Vec::with_capacity(self.n_shards());
        for s in 0..self.n_shards() {
            let (reply, rx) = channel();
            self.send_to(s, ShardMsg::AssessAnchors { confidence, reply })?;
            rxs.push(rx);
        }
        let mut parts = Vec::with_capacity(rxs.len());
        for (s, rx) in rxs.into_iter().enumerate() {
            parts.push(
                rx.recv()
                    .map_err(|_| ServiceError::ShardUnavailable { shard: s })??,
            );
        }
        Ok(merge_reports(parts))
    }

    /// Fleet snapshot (k-ary); see [`ServiceHandle::snapshot`].
    pub fn snapshot_kary(&self, confidence: f64) -> Result<KaryWorkerReport, ServiceError> {
        let m = self.shared.plan.n_workers();
        if m < 3 {
            return Err(ServiceError::Estimate(
                crowd_core::EstimateError::NotEnoughWorkers { got: m, need: 3 },
            ));
        }
        let mut rxs = Vec::with_capacity(self.n_shards());
        for s in 0..self.n_shards() {
            let (reply, rx) = channel();
            self.send_to(s, ShardMsg::AssessAnchorsKary { confidence, reply })?;
            rxs.push(rx);
        }
        let mut parts = Vec::with_capacity(rxs.len());
        for (s, rx) in rxs.into_iter().enumerate() {
            parts.push(
                rx.recv()
                    .map_err(|_| ServiceError::ShardUnavailable { shard: s })??,
            );
        }
        Ok(merge_kary_reports(parts))
    }

    /// FIFO barrier: returns once every shard has processed
    /// everything enqueued before this call. Ingest may continue
    /// afterwards — draining is a checkpoint, not shutdown.
    pub fn drain(&self) -> Result<(), ServiceError> {
        let mut rxs = Vec::with_capacity(self.n_shards());
        for s in 0..self.n_shards() {
            let (reply, rx) = channel();
            self.send_to(s, ShardMsg::Drain { reply })?;
            rxs.push(rx);
        }
        for (s, rx) in rxs.into_iter().enumerate() {
            rx.recv()
                .map_err(|_| ServiceError::ShardUnavailable { shard: s })?;
        }
        Ok(())
    }

    /// A fleet-wide counters snapshot. Live services answer through
    /// the shard queues (so the numbers reflect a drain point); after
    /// [`ServiceHandle::shutdown`] the final counters are served from
    /// the joined threads. If any shard thread panicked, this returns
    /// [`ServiceError::ShardPanicked`] instead of fabricating zeroed
    /// counters for the dead shard; a call racing an in-flight
    /// shutdown returns [`ServiceError::ShuttingDown`]. No path
    /// through here can panic.
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        {
            let lc = lock_ignore_poison(&self.shared.lifecycle);
            if let Some(finals) = &lc.final_stats {
                return self.finals_to_stats(finals);
            }
            // Not shut down at the time of the check: fall through to
            // the live path. If a shutdown lands between here and the
            // sends below, `send_to` reports `ShuttingDown` — a typed
            // error, never a panic.
        }
        let mut rxs = Vec::with_capacity(self.n_shards());
        for s in 0..self.n_shards() {
            let (reply, rx) = channel();
            self.send_to(s, ShardMsg::Stats { reply })?;
            rxs.push(rx);
        }
        let mut shards = Vec::with_capacity(rxs.len());
        for (s, rx) in rxs.into_iter().enumerate() {
            shards.push(
                rx.recv()
                    .map_err(|_| ServiceError::ShardUnavailable { shard: s })?,
            );
        }
        Ok(self.with_handle_counters(shards))
    }

    /// A full metrics scrape: the [`ServiceHandle::stats`] counter
    /// snapshot (so both always agree), per-shard stage timing
    /// histograms, and the flight-recorder tail. The stage timers and
    /// journal are read directly from shared memory — only the
    /// counter snapshot rides the shard queues — so a scrape costs
    /// the fleet a handful of atomic loads on top of a `stats()`
    /// call, and keeps working after shutdown. With
    /// [`ServiceConfig::metrics`] off, `enabled` is `false`, the
    /// stage histograms are empty and the journal is silent.
    pub fn metrics(&self) -> Result<ServiceMetrics, ServiceError> {
        let stats = self.stats()?;
        let (enabled, stages, events, events_dropped) = match &self.shared.obs {
            Some(obs) => (
                true,
                obs.timers.iter().map(|t| t.snapshot()).collect(),
                obs.journal.snapshot(),
                obs.journal.dropped(),
            ),
            None => (
                false,
                vec![StageTimings::default(); self.n_shards()],
                Vec::new(),
                0,
            ),
        };
        Ok(ServiceMetrics {
            enabled,
            stats,
            stages,
            events,
            events_dropped,
        })
    }

    /// Graceful shutdown: closes every shard queue (all enqueued work
    /// is still processed), joins the threads and captures their
    /// final counters. Idempotent and race-safe across handle clones;
    /// after shutdown, ingest and assessment return
    /// [`ServiceError::ShuttingDown`] and [`ServiceHandle::stats`]
    /// serves the captured counters. If a shard thread panicked, the
    /// panic is surfaced as [`ServiceError::ShardPanicked`] — from
    /// this call and from every later `stats()`/`shutdown()` — instead
    /// of being swallowed into fabricated zeroed stats.
    pub fn shutdown(&self) -> Result<ServiceStats, ServiceError> {
        let mut lc = lock_ignore_poison(&self.shared.lifecycle);
        if lc.final_stats.is_none() {
            // Dropping the senders disconnects the queues; each shard
            // thread finishes everything already enqueued, then exits.
            drop(
                self.shared
                    .senders
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .take(),
            );
            let finals = lc
                .handles
                .drain(..)
                .enumerate()
                .map(|(s, h)| {
                    let joined = h.join().ok();
                    if joined.is_none()
                        && let Some(obs) = &self.shared.obs
                    {
                        obs.journal
                            .record(EventKind::ShardPanic, s as u32, 0, 0, "joined dead");
                    }
                    joined
                })
                .collect();
            lc.final_stats = Some(finals);
        }
        match &lc.final_stats {
            Some(finals) => self.finals_to_stats(finals),
            // Unreachable (set just above), but a typed error keeps
            // this path panic-free by construction.
            None => Err(ServiceError::ShuttingDown),
        }
    }

    /// Builds the post-shutdown stats view: the captured per-shard
    /// counters, or [`ServiceError::ShardPanicked`] for the first
    /// shard whose thread died.
    fn finals_to_stats(&self, finals: &[Option<ShardStats>]) -> Result<ServiceStats, ServiceError> {
        let mut shards = Vec::with_capacity(finals.len());
        for (s, f) in finals.iter().enumerate() {
            match f {
                Some(stats) => shards.push(stats.clone()),
                None => return Err(ServiceError::ShardPanicked { shard: s }),
            }
        }
        Ok(self.with_handle_counters(shards))
    }

    /// Attaches the handle-side counters to a per-shard set.
    fn with_handle_counters(&self, shards: Vec<ShardStats>) -> ServiceStats {
        let ing = lock_ignore_poison(&self.shared.ingest);
        ServiceStats {
            shards,
            submitted: ing.submitted,
            dropped_batches: ing.dropped_batches,
            dropped_responses: ing.dropped_responses,
            batch_sizes: ing.batch_sizes.clone(),
        }
    }

    fn home_shard_of(&self, worker: WorkerId) -> Result<usize, ServiceError> {
        if worker.index() >= self.shared.plan.n_workers() {
            return Err(ServiceError::Data(DataError::UnknownId {
                kind: "worker",
                id: worker.0,
            }));
        }
        Ok(self.shared.plan.shard_of(worker))
    }

    /// Blocking send for assessment/control messages (backpressure
    /// policies govern ingest only).
    fn send_to(&self, shard: usize, msg: ShardMsg) -> Result<(), ServiceError> {
        let guard = self
            .shared
            .senders
            .read()
            .unwrap_or_else(|e| e.into_inner());
        let Some(senders) = guard.as_ref() else {
            return Err(ServiceError::ShuttingDown);
        };
        self.shared.depths[shard].on_push();
        let stamp = self.shared.obs.as_ref().map(|_| Instant::now());
        senders[shard].send((stamp, msg)).map_err(|_| {
            self.shared.depths[shard].on_pop();
            ServiceError::ShardUnavailable { shard }
        })
    }
}

/// The thread-per-shard assessment runtime; see the
/// [crate docs](crate). This type uniquely owns the fleet (dropping it
/// shuts the shard threads down); [`AssessmentService::handle`] yields
/// cloneable [`ServiceHandle`]s for concurrent callers such as wire
/// connection threads.
///
/// # Example
///
/// ```
/// use crowd_service::{AssessmentService, ServiceConfig};
/// use crowd_shard::ShardPlan;
/// use crowd_sim::BinaryScenario;
///
/// let instance =
///     BinaryScenario::paper_default(6, 80, 0.9).generate(&mut crowd_sim::rng(11));
/// let data = instance.responses();
/// let plan = ShardPlan::build_clustered(data, 2);
/// let mut service =
///     AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
/// for batch in data.iter().collect::<Vec<_>>().chunks(16) {
///     service.ingest_batch(batch)?;
/// }
/// let report = service.snapshot(0.9)?;
/// assert_eq!(report.assessments.len() + report.failures.len(), 6);
/// service.shutdown()?;
/// # Ok::<(), crowd_service::ServiceError>(())
/// ```
#[derive(Debug)]
pub struct AssessmentService {
    handle: ServiceHandle,
}

impl AssessmentService {
    /// Spawns one shard thread per plan shard, each owning a fresh
    /// sparse-backed [`StreamingIndex`] over the global
    /// `plan.n_workers() × n_tasks` id space (rows materialize only
    /// for responses routed to the shard, i.e. its closure).
    pub fn spawn(plan: ShardPlan, n_tasks: usize, arity: u16, config: ServiceConfig) -> Self {
        let n_shards = plan.n_shards();
        let m = plan.n_workers();
        let capacity = config.queue_capacity.max(1);
        let mut senders = Vec::with_capacity(n_shards);
        let mut handles = Vec::with_capacity(n_shards);
        let mut depths = Vec::with_capacity(n_shards);
        let fleet_obs = config.metrics.then(|| FleetObs {
            timers: (0..n_shards)
                .map(|_| Arc::new(StageTimers::default()))
                .collect(),
            journal: Arc::new(EventJournal::new(config.journal_capacity)),
        });
        let slow_ns = u64::try_from(config.slow_op_threshold.as_nanos()).unwrap_or(u64::MAX);
        for (s, spec) in plan.shards().iter().enumerate() {
            let (tx, rx) = sync_channel::<Envelope>(capacity);
            let depth = Arc::new(QueueDepth::default());
            let worker = ShardWorker {
                stream: StreamingIndex::new_with(m, n_tasks, arity, PairBackend::Sparse),
                binary: MWorkerEstimator::new(config.estimator.clone()),
                kary: KaryMWorkerEstimator::new(config.estimator.clone()),
                anchors: spec.anchors.clone(),
                is_home: (0..m)
                    .map(|w| plan.shard_of(WorkerId(w as u32)) == s)
                    .collect(),
                depth: Arc::clone(&depth),
                stats: ShardStats {
                    shard: s,
                    ..ShardStats::default()
                },
                incremental: config.incremental,
                binary_cache: ReportCache::new(),
                kary_cache: KaryReportCache::new(),
                obs: fleet_obs.as_ref().map(|o| ShardObs {
                    timers: Arc::clone(&o.timers[s]),
                    journal: Arc::clone(&o.journal),
                    slow_ns,
                    prev_reanchors: 0,
                    prev_rebuilds: 0,
                    prev_full_refreshes: 0,
                }),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("crowd-shard-{s}"))
                    .spawn(move || worker.run(rx))
                    .expect("spawning a shard thread"),
            );
            senders.push(tx);
            depths.push(depth);
        }
        Self {
            handle: ServiceHandle {
                shared: Arc::new(Shared {
                    plan,
                    n_tasks,
                    arity,
                    policy: config.policy,
                    depths,
                    senders: RwLock::new(Some(senders)),
                    ingest: Mutex::new(IngestState {
                        route_buf: vec![Vec::new(); n_shards],
                        ..IngestState::default()
                    }),
                    lifecycle: Mutex::new(Lifecycle {
                        handles,
                        final_stats: None,
                    }),
                    obs: fleet_obs,
                }),
            },
        }
    }

    /// A cloneable, `Send + Sync` handle sharing this fleet — the
    /// dispatch seam concurrent callers (e.g. wire connection
    /// threads) operate through. Handle clones never shut the fleet
    /// down on drop; this owner does.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// The plan the service routes by.
    pub fn plan(&self) -> &ShardPlan {
        self.handle.plan()
    }

    /// Number of shard threads.
    pub fn n_shards(&self) -> usize {
        self.handle.n_shards()
    }

    /// See [`ServiceHandle::ingest_batch`].
    pub fn ingest_batch(&mut self, batch: &[Response]) -> Result<IngestReceipt, ServiceError> {
        self.handle.ingest_batch(batch)
    }

    /// See [`ServiceHandle::ingest`].
    pub fn ingest(&mut self, response: Response) -> Result<IngestReceipt, ServiceError> {
        self.handle.ingest(response)
    }

    /// See [`ServiceHandle::assess_worker`].
    pub fn assess_worker(
        &self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<WorkerAssessment, ServiceError> {
        self.handle.assess_worker(worker, confidence)
    }

    /// See [`ServiceHandle::assess_worker_kary`].
    pub fn assess_worker_kary(
        &self,
        worker: WorkerId,
        confidence: f64,
    ) -> Result<KaryWorkerAssessment, ServiceError> {
        self.handle.assess_worker_kary(worker, confidence)
    }

    /// See [`ServiceHandle::assess_workers`].
    pub fn assess_workers(
        &self,
        workers: &[WorkerId],
        confidence: f64,
    ) -> Result<WorkerReport, ServiceError> {
        self.handle.assess_workers(workers, confidence)
    }

    /// See [`ServiceHandle::snapshot`].
    pub fn snapshot(&self, confidence: f64) -> Result<WorkerReport, ServiceError> {
        self.handle.snapshot(confidence)
    }

    /// See [`ServiceHandle::snapshot_kary`].
    pub fn snapshot_kary(&self, confidence: f64) -> Result<KaryWorkerReport, ServiceError> {
        self.handle.snapshot_kary(confidence)
    }

    /// See [`ServiceHandle::drain`].
    pub fn drain(&self) -> Result<(), ServiceError> {
        self.handle.drain()
    }

    /// See [`ServiceHandle::stats`].
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        self.handle.stats()
    }

    /// See [`ServiceHandle::metrics`].
    pub fn metrics(&self) -> Result<ServiceMetrics, ServiceError> {
        self.handle.metrics()
    }

    /// See [`ServiceHandle::shutdown`].
    pub fn shutdown(&mut self) -> Result<ServiceStats, ServiceError> {
        self.handle.shutdown()
    }
}

impl Drop for AssessmentService {
    /// Dropping the owner shuts the fleet down gracefully (queues
    /// close, threads drain and join) so tests and callers cannot
    /// leak detached shard threads. A shard panic surfaced here is
    /// already reported through the typed shutdown/stats paths; Drop
    /// must not double-panic.
    fn drop(&mut self) {
        let _ = self.handle.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint task neighbourhoods (workers 0–2 on tasks 0–11,
    /// workers 3–5 on tasks 12–23), so the two clustered shards have
    /// disjoint closures and every response subscribes to exactly one
    /// shard — the deterministic substrate the backpressure tests
    /// need.
    fn small_fleet() -> (crowd_data::ResponseMatrix, ShardPlan) {
        use crowd_data::{Label, ResponseMatrixBuilder, TaskId};
        let mut b = ResponseMatrixBuilder::new(6, 24, 2);
        for w in 0..3u32 {
            for t in 0..12u32 {
                b.push(WorkerId(w), TaskId(t), Label(((w + t) % 2) as u16))
                    .unwrap();
            }
        }
        for w in 3..6u32 {
            for t in 12..24u32 {
                b.push(WorkerId(w), TaskId(t), Label((w % 2) as u16))
                    .unwrap();
            }
        }
        let data = b.build().unwrap();
        let plan = ShardPlan::build_clustered(&data, 2);
        (data, plan)
    }

    fn send_raw(svc: &AssessmentService, s: usize, msg: ShardMsg) {
        svc.handle.shared.depths[s].on_push();
        svc.handle.shared.senders.read().unwrap().as_ref().unwrap()[s]
            .send((None, msg))
            .unwrap();
    }

    /// Parks shard `s` and returns the gate; dropping the gate
    /// releases the shard. While parked the shard consumes exactly
    /// the Stall message, so `queue_capacity` further messages fill
    /// the queue deterministically.
    fn stall(svc: &AssessmentService, s: usize) -> Sender<()> {
        let (gate, gate_rx) = channel();
        send_raw(svc, s, ShardMsg::Stall(gate_rx));
        // Wait until the shard has actually dequeued the stall
        // message, so the whole queue capacity is ours to fill.
        while svc.handle.shared.depths[s].depth.load(Ordering::Relaxed) != 0 {
            std::thread::yield_now();
        }
        gate
    }

    #[test]
    fn shed_policy_drops_with_accounting() {
        let (data, plan) = small_fleet();
        let mut svc = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default()
                .with_queue_capacity(1)
                .with_policy(BackpressurePolicy::Shed),
        );
        let all: Vec<Response> = data.iter().collect();
        let home0: Vec<Response> = all
            .iter()
            .filter(|r| svc.plan().closure_shards(r.worker) == [0])
            .take(4)
            .copied()
            .collect();
        assert!(home0.len() >= 2, "need shard-0-only responses");
        let gate = stall(&svc, 0);
        // First batch occupies the single queue slot...
        let first = svc.ingest_batch(&home0[..1]).unwrap();
        assert_eq!((first.routed, first.shed_batches), (1, 0));
        // ...the second is shed, with accounting on receipt and stats.
        let second = svc.ingest_batch(&home0[1..2]).unwrap();
        assert_eq!(second.routed, 0);
        assert_eq!((second.shed_batches, second.shed_responses), (1, 1));
        drop(gate);
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(stats.dropped_batches, 1);
        assert_eq!(stats.dropped_responses, 1);
        assert_eq!(stats.submitted, 2);
        assert!(stats.max_queue_high_water() >= 1);
        // The shard recorded only the delivered response.
        assert_eq!(stats.shards[0].responses, 1);
    }

    #[test]
    fn reject_policy_fails_with_queue_full() {
        let (data, plan) = small_fleet();
        let mut svc = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default()
                .with_queue_capacity(1)
                .with_policy(BackpressurePolicy::Reject),
        );
        let all: Vec<Response> = data.iter().collect();
        let home0: Vec<Response> = all
            .iter()
            .filter(|r| svc.plan().closure_shards(r.worker) == [0])
            .take(2)
            .copied()
            .collect();
        let gate = stall(&svc, 0);
        svc.ingest_batch(&home0[..1]).unwrap();
        match svc.ingest_batch(&home0[1..2]) {
            Err(ServiceError::QueueFull {
                shard: 0,
                dropped: 1,
            }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        drop(gate);
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(stats.dropped_responses, 1);
        assert_eq!(stats.shards[0].responses, 1);
    }

    #[test]
    fn block_policy_waits_out_a_full_queue() {
        let (data, plan) = small_fleet();
        let mut svc = AssessmentService::spawn(
            plan,
            data.n_tasks(),
            data.arity(),
            ServiceConfig::default().with_queue_capacity(1),
        );
        let all: Vec<Response> = data.iter().collect();
        let gate = stall(&svc, 0);
        // Release the gate shortly after; the blocked send below must
        // then complete instead of erroring or dropping.
        let release = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(gate);
        });
        let mut routed = 0;
        for chunk in all.chunks(8) {
            routed += svc.ingest_batch(chunk).unwrap().routed;
        }
        release.join().unwrap();
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(stats.dropped_batches, 0);
        assert_eq!(
            stats.shards.iter().map(|s| s.responses).sum::<u64>(),
            routed as u64
        );
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let (data, plan) = small_fleet();
        let mut svc =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let all: Vec<Response> = data.iter().collect();
        let mut routed = 0;
        for chunk in all.chunks(16) {
            routed += svc.ingest_batch(chunk).unwrap().routed;
        }
        // Shutdown with ingests possibly still queued: all of them
        // must be processed before the threads exit.
        let final_stats = svc.shutdown().unwrap();
        assert_eq!(
            final_stats.shards.iter().map(|s| s.responses).sum::<u64>(),
            routed as u64
        );
        assert_eq!(final_stats.total_rejected(), 0);
        // Idempotent, and post-shutdown calls fail cleanly.
        let again = svc.shutdown().unwrap();
        assert_eq!(again.shards, final_stats.shards);
        assert!(matches!(
            svc.ingest(all[0]),
            Err(ServiceError::ShuttingDown)
        ));
        assert!(matches!(
            svc.assess_worker(WorkerId(0), 0.9),
            Err(ServiceError::ShuttingDown)
        ));
        assert!(matches!(svc.snapshot(0.9), Err(ServiceError::ShuttingDown)));
        assert!(svc.stats().is_ok(), "stats served from captured finals");
    }

    /// Regression (PR 7): a dead shard thread must surface as
    /// [`ServiceError::ShardPanicked`] from `shutdown()` and `stats()`
    /// — never as silently fabricated zeroed counters.
    #[test]
    fn shard_panic_is_reported_not_swallowed() {
        let (data, plan) = small_fleet();
        let mut svc =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let all: Vec<Response> = data.iter().collect();
        for chunk in all.chunks(16) {
            svc.ingest_batch(chunk).unwrap();
        }
        send_raw(&svc, 1, ShardMsg::Panic);
        match svc.shutdown() {
            Err(ServiceError::ShardPanicked { shard: 1 }) => {}
            other => panic!("expected ShardPanicked for shard 1, got {other:?}"),
        }
        // The panic stays visible on every later stats()/shutdown().
        assert!(matches!(
            svc.stats(),
            Err(ServiceError::ShardPanicked { shard: 1 })
        ));
        assert!(matches!(
            svc.shutdown(),
            Err(ServiceError::ShardPanicked { shard: 1 })
        ));
    }

    /// Regression (PR 7): `stats()` racing (or following) a shutdown
    /// must return a typed result — the old implementation was
    /// panic-reachable through `.expect("post-shutdown stats are
    /// local")`.
    #[test]
    fn stats_never_panics_around_shutdown() {
        let (data, plan) = small_fleet();
        let svc =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let handle = svc.handle();
        let racers: Vec<_> = (0..4)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    // Every outcome must be a typed Ok/Err, reached
                    // without panicking (the join below proves it).
                    for _ in 0..100 {
                        match h.stats() {
                            Ok(_)
                            | Err(ServiceError::ShuttingDown)
                            | Err(ServiceError::ShardUnavailable { .. }) => {}
                            Err(other) => panic!("unexpected stats error: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        let shut = {
            let h = handle.clone();
            std::thread::spawn(move || h.shutdown())
        };
        for r in racers {
            r.join().expect("stats() must never panic");
        }
        shut.join().expect("shutdown must not panic").unwrap();
        // Post-shutdown stats serve the captured finals.
        assert!(handle.stats().is_ok());
    }

    /// Regression (PR 7): an out-of-range worker id anywhere in a
    /// batch fails the whole call with `ServiceError::Data` before any
    /// shard queue sees a frame — the valid prefix must not be
    /// partially applied and no handle-side counter may move.
    #[test]
    fn mixed_batch_with_bad_id_is_rejected_atomically() {
        let (data, plan) = small_fleet();
        let mut svc =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let mut batch: Vec<Response> = data.iter().take(5).collect();
        batch.push(Response {
            worker: WorkerId(6), // m == 6, so the last valid id is 5
            task: batch[0].task,
            label: batch[0].label,
        });
        match svc.ingest_batch(&batch) {
            Err(ServiceError::Data(DataError::UnknownId {
                kind: "worker",
                id: 6,
            })) => {}
            other => panic!("expected UnknownId for worker 6, got {other:?}"),
        }
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(stats.submitted, 0, "counters untouched by a failed batch");
        assert_eq!(stats.batch_sizes.total(), 0);
        assert_eq!(
            stats.shards.iter().map(|s| s.responses).sum::<u64>(),
            0,
            "no shard saw any part of the mixed batch"
        );
        // The same batch without the bad tail applies cleanly.
        let receipt = svc.ingest_batch(&batch[..5]).unwrap();
        assert_eq!(receipt.routed, 5);
    }

    /// Handle clones share one fleet: ingest through one is visible to
    /// snapshots through another, and dropping clones does not shut
    /// the fleet down.
    #[test]
    fn handles_share_the_fleet_across_threads() {
        let (data, plan) = small_fleet();
        let svc =
            AssessmentService::spawn(plan, data.n_tasks(), data.arity(), ServiceConfig::default());
        let all: Vec<Response> = data.iter().collect();
        let workers: Vec<_> = all
            .chunks(all.len() / 3 + 1)
            .map(|chunk| {
                let h = svc.handle();
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    let mut routed = 0;
                    for piece in chunk.chunks(4) {
                        routed += h.ingest_batch(piece).unwrap().routed;
                    }
                    routed
                })
            })
            .collect();
        let routed: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(routed, all.len());
        let h = svc.handle();
        drop(h); // dropping a clone must not kill the fleet
        svc.drain().unwrap();
        let stats = svc.stats().unwrap();
        assert_eq!(
            stats.shards.iter().map(|s| s.responses).sum::<u64>(),
            all.len() as u64
        );
        assert_eq!(stats.submitted, all.len() as u64);
    }
}
