//! Fleet metrics: per-shard stage timing histograms, the
//! flight-recorder journal, and a Prometheus-style text exposition —
//! the query side of the instrumentation the shard threads record
//! into (see [`crate::ServiceConfig::metrics`]).

use crowd_obs::{Event, EventKind, HistogramSnapshot, LatencyHistogram, MetricsRegistry};

use crate::stats::ServiceStats;

/// The three instrumented stages of a shard thread's message loop.
///
/// * **queue-wait** — enqueue (handle side) to dequeue (shard side),
///   per message: how long work sat in the bounded queue.
/// * **batch-apply** — applying one ingest group into the shard's
///   streaming substrate, per batch.
/// * **drain-eval** — evaluating one assessment request
///   (worker/anchor, binary/k-ary) at its drain point, per request.
///
/// All values are nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Queue-wait distribution (ns), every message type.
    pub queue_wait: HistogramSnapshot,
    /// Batch-apply distribution (ns), per ingest group.
    pub batch_apply: HistogramSnapshot,
    /// Drain-point evaluation distribution (ns), per assessment.
    pub drain_eval: HistogramSnapshot,
}

impl StageTimings {
    /// Adds every sample of `other` into `self` (exact; see
    /// [`HistogramSnapshot::merge`]).
    pub fn merge(&mut self, other: &StageTimings) {
        self.queue_wait.merge(&other.queue_wait);
        self.batch_apply.merge(&other.batch_apply);
        self.drain_eval.merge(&other.drain_eval);
    }
}

/// The live recording side of [`StageTimings`]: one set per shard
/// thread, shared (`Arc`) with the handle so scrapes never cross the
/// shard queues.
#[derive(Debug, Default)]
pub(crate) struct StageTimers {
    pub(crate) queue_wait: LatencyHistogram,
    pub(crate) batch_apply: LatencyHistogram,
    pub(crate) drain_eval: LatencyHistogram,
}

impl StageTimers {
    pub(crate) fn snapshot(&self) -> StageTimings {
        StageTimings {
            queue_wait: self.queue_wait.snapshot(),
            batch_apply: self.batch_apply.snapshot(),
            drain_eval: self.drain_eval.snapshot(),
        }
    }
}

/// Everything a metrics scrape returns
/// ([`crate::ServiceHandle::metrics`]): the counter snapshot the
/// fleet already reported through [`crate::ServiceHandle::stats`],
/// plus per-shard stage timings and the flight-recorder tail.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Whether the fleet was spawned with instrumentation on
    /// ([`crate::ServiceConfig::metrics`]). When `false` the stage
    /// histograms are empty and the journal is silent; the counter
    /// stats below are maintained regardless.
    pub enabled: bool,
    /// The counter snapshot — the same numbers
    /// [`crate::ServiceHandle::stats`] reports.
    pub stats: ServiceStats,
    /// Per-shard stage timings, in shard order.
    pub stages: Vec<StageTimings>,
    /// The flight-recorder tail, oldest first.
    pub events: Vec<Event>,
    /// Journal events lost to wrap-around contention.
    pub events_dropped: u64,
}

impl ServiceMetrics {
    /// All shards' stage timings merged into one distribution set.
    pub fn merged_stages(&self) -> StageTimings {
        let mut merged = StageTimings::default();
        for s in &self.stages {
            merged.merge(s);
        }
        merged
    }

    /// Flight-recorder events of one kind, oldest first.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Prometheus text exposition of the whole scrape: every counter
    /// in [`ServiceStats`] (fleet totals and per-shard series), the
    /// per-shard stage histograms, the batch-size histogram, and
    /// journal occupancy. The numbers are exactly the ones in
    /// `self.stats` / `self.stages` — the exposition is a view, not a
    /// second measurement.
    pub fn render_text(&self) -> String {
        let reg = MetricsRegistry::new();
        reg.counter(
            "crowd_submitted_responses_total",
            "Responses submitted through the handle (before routing fan-out).",
        )
        .add(self.stats.submitted);
        reg.counter(
            "crowd_dropped_batches_total",
            "Shard-bound groups shed under backpressure.",
        )
        .add(self.stats.dropped_batches);
        reg.counter(
            "crowd_dropped_responses_total",
            "Per-shard response deliveries lost to shedding or rejection.",
        )
        .add(self.stats.dropped_responses);
        for s in &self.stats.shards {
            let sh = s.shard;
            let pairs: [(&str, &str, u64); 10] = [
                (
                    "crowd_shard_batches_total",
                    "Ingest batches processed.",
                    s.batches,
                ),
                (
                    "crowd_shard_responses_total",
                    "Responses recorded.",
                    s.responses,
                ),
                (
                    "crowd_shard_rejected_total",
                    "Invalid responses rejected.",
                    s.rejected,
                ),
                (
                    "crowd_shard_assess_requests_total",
                    "Assessment requests answered.",
                    s.assess_requests,
                ),
                (
                    "crowd_shard_reanchors_total",
                    "Lazy view re-anchors.",
                    s.reanchors as u64,
                ),
                (
                    "crowd_shard_gram_patches_total",
                    "In-place gram patches.",
                    s.gram_patches as u64,
                ),
                (
                    "crowd_shard_gram_rebuilds_total",
                    "Full gram materializations.",
                    s.gram_rebuilds as u64,
                ),
                (
                    "crowd_shard_cache_hits_total",
                    "Report-cache rows served.",
                    s.cache_hits,
                ),
                (
                    "crowd_shard_cache_misses_total",
                    "Report-cache rows re-evaluated.",
                    s.cache_misses,
                ),
                (
                    "crowd_shard_cache_full_refreshes_total",
                    "Wholesale cache invalidations.",
                    s.cache_full_refreshes,
                ),
            ];
            for (name, help, v) in pairs {
                reg.counter(&format!("{name}{{shard=\"{sh}\"}}"), help)
                    .add(v);
            }
            reg.gauge(
                &format!("crowd_shard_queue_high_water{{shard=\"{sh}\"}}"),
                "High-water mark of the shard's bounded queue, in messages.",
            )
            .set(s.queue_high_water as i64);
        }
        // The batch-size histogram shares the log2 bucket rule, so it
        // widens losslessly into a 64-bucket snapshot for rendering.
        let mut batch_buckets = [0u64; crowd_obs::BUCKETS];
        let counts = self.stats.batch_sizes.counts();
        batch_buckets[..counts.len()].copy_from_slice(counts);
        reg.frozen_histogram(
            "crowd_ingest_batch_size",
            "Ingest batch sizes, as submitted by callers.",
            HistogramSnapshot::from_parts(batch_buckets, self.stats.batch_sizes.total(), 0, 0),
        );
        for (sh, st) in self.stages.iter().enumerate() {
            let stages: [(&str, &str, &HistogramSnapshot); 3] = [
                (
                    "crowd_stage_queue_wait_ns",
                    "Enqueue-to-dequeue wait per shard message, ns.",
                    &st.queue_wait,
                ),
                (
                    "crowd_stage_batch_apply_ns",
                    "Ingest-group apply time into the streaming substrate, ns.",
                    &st.batch_apply,
                ),
                (
                    "crowd_stage_drain_eval_ns",
                    "Drain-point assessment evaluation time, ns.",
                    &st.drain_eval,
                ),
            ];
            for (name, help, snap) in stages {
                reg.frozen_histogram(&format!("{name}{{shard=\"{sh}\"}}"), help, snap.clone());
            }
        }
        reg.gauge(
            "crowd_journal_events",
            "Flight-recorder events currently retained.",
        )
        .set(self.events.len() as i64);
        reg.counter(
            "crowd_journal_dropped_total",
            "Flight-recorder events lost to wrap-around contention.",
        )
        .add(self.events_dropped);
        reg.render_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ShardStats;

    #[test]
    fn render_text_carries_the_stats_numbers() {
        let timers = StageTimers::default();
        timers.queue_wait.record(100);
        timers.queue_wait.record(300);
        timers.drain_eval.record(1 << 20);
        let m = ServiceMetrics {
            enabled: true,
            stats: ServiceStats {
                shards: vec![ShardStats {
                    shard: 0,
                    batches: 4,
                    responses: 17,
                    cache_hits: 3,
                    queue_high_water: 2,
                    ..ShardStats::default()
                }],
                submitted: 17,
                dropped_batches: 0,
                dropped_responses: 0,
                batch_sizes: crate::stats::BatchHistogram::from_counts([
                    1, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0,
                ]),
            },
            stages: vec![timers.snapshot()],
            events: vec![],
            events_dropped: 0,
        };
        let text = m.render_text();
        assert!(text.contains("crowd_submitted_responses_total 17"));
        assert!(text.contains("crowd_shard_responses_total{shard=\"0\"} 17"));
        assert!(text.contains("crowd_shard_batches_total{shard=\"0\"} 4"));
        assert!(text.contains("crowd_shard_cache_hits_total{shard=\"0\"} 3"));
        assert!(text.contains("crowd_shard_queue_high_water{shard=\"0\"} 2"));
        assert!(text.contains("crowd_ingest_batch_size_count 3"));
        assert!(text.contains("crowd_stage_queue_wait_ns_count{shard=\"0\"} 2"));
        assert!(text.contains("crowd_stage_queue_wait_ns_sum{shard=\"0\"} 400"));
        assert!(text.contains("crowd_stage_drain_eval_ns_count{shard=\"0\"} 1"));
        assert!(text.contains("# TYPE crowd_stage_queue_wait_ns histogram"));
    }

    #[test]
    fn merged_stages_sum_across_shards() {
        let a = StageTimers::default();
        a.batch_apply.record(10);
        let b = StageTimers::default();
        b.batch_apply.record(20);
        b.batch_apply.record(30);
        let m = ServiceMetrics {
            enabled: true,
            stats: ServiceStats::default(),
            stages: vec![a.snapshot(), b.snapshot()],
            events: vec![],
            events_dropped: 0,
        };
        let merged = m.merged_stages();
        assert_eq!(merged.batch_apply.count(), 3);
        assert_eq!(merged.batch_apply.sum(), 60);
        assert_eq!(merged.batch_apply.max(), 30);
    }
}
