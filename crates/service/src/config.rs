//! Service construction parameters.

use crowd_core::EstimatorConfig;

/// What [`crate::AssessmentService::ingest_batch`] does when a shard's
/// bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the caller until the shard drains a slot — lossless,
    /// latency absorbed by the producer. The default.
    #[default]
    Block,
    /// Drop the shard-bound group and keep going — lossy but
    /// non-blocking; every shed batch/response is accounted in the
    /// returned [`crate::IngestReceipt`] and in
    /// [`crate::ServiceStats`].
    Shed,
    /// Fail the call with [`crate::ServiceError::QueueFull`], leaving
    /// retry policy to the caller. Groups already enqueued stay
    /// enqueued; the error reports how many responses were not.
    Reject,
}

/// Tuning knobs for [`crate::AssessmentService::spawn`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bounded capacity of each shard's message queue, in messages
    /// (an ingest batch is one message). Must be ≥ 1.
    pub queue_capacity: usize,
    /// Full-queue behaviour for ingest; assessment and control
    /// messages always block (they are few and carry replies).
    pub policy: BackpressurePolicy,
    /// Estimator configuration used by every shard.
    pub estimator: EstimatorConfig,
    /// Whether shards answer assessment requests through the
    /// epoch-versioned report caches (`crowd_core::cached`):
    /// drain-point snapshots re-evaluate only anchors dirtied since
    /// their cached rows — bit-identical reports, `O(|dirty|)`
    /// evaluations instead of `O(anchors)`. On by default; turn off
    /// to force full recomputation per request (the baseline the
    /// `scaling_pr8` bench measures against).
    pub incremental: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            estimator: EstimatorConfig::default(),
            incremental: true,
        }
    }
}

impl ServiceConfig {
    /// Sets the per-shard queue capacity (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the full-queue policy.
    pub fn with_policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the estimator configuration.
    pub fn with_estimator(mut self, estimator: EstimatorConfig) -> Self {
        self.estimator = estimator;
        self
    }

    /// Enables or disables epoch-versioned incremental assessment.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }
}
