//! Service construction parameters.

use std::sync::Arc;
use std::time::Duration;

use crowd_core::EstimatorConfig;

use crate::fault::FaultPlan;

/// What [`crate::AssessmentService::ingest_batch`] does when a shard's
/// bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the caller until the shard drains a slot — lossless,
    /// latency absorbed by the producer. The default.
    #[default]
    Block,
    /// Drop the shard-bound group and keep going — lossy but
    /// non-blocking; every shed batch/response is accounted in the
    /// returned [`crate::IngestReceipt`] and in
    /// [`crate::ServiceStats`].
    Shed,
    /// Fail the call with [`crate::ServiceError::QueueFull`], leaving
    /// retry policy to the caller. Groups already enqueued stay
    /// enqueued; the error reports how many responses were not.
    Reject,
}

/// Tuning knobs for [`crate::AssessmentService::spawn`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bounded capacity of each shard's message queue, in messages
    /// (an ingest batch is one message). Must be ≥ 1.
    pub queue_capacity: usize,
    /// Full-queue behaviour for ingest; assessment and control
    /// messages always block (they are few and carry replies).
    pub policy: BackpressurePolicy,
    /// Estimator configuration used by every shard.
    pub estimator: EstimatorConfig,
    /// Whether shards answer assessment requests through the
    /// epoch-versioned report caches (`crowd_core::cached`):
    /// drain-point snapshots re-evaluate only anchors dirtied since
    /// their cached rows — bit-identical reports, `O(|dirty|)`
    /// evaluations instead of `O(anchors)`. On by default; turn off
    /// to force full recomputation per request (the baseline the
    /// `scaling_pr8` bench measures against).
    pub incremental: bool,
    /// Whether the fleet records stage timings (queue-wait,
    /// batch-apply, drain-eval histograms) and flight-recorder events
    /// (see [`crate::ServiceMetrics`]). Instrumentation never touches
    /// evaluation — reports are bit-identical either way — and costs
    /// a few relaxed atomics per message; on by default. Off leaves
    /// the stage histograms empty and the journal silent.
    pub metrics: bool,
    /// An instrumented operation (batch apply, drain evaluation)
    /// taking at least this long is journaled as a
    /// [`crowd_obs::EventKind::SlowOp`] event. Default 100 ms.
    pub slow_op_threshold: Duration,
    /// Flight-recorder capacity, in events (rounded up to a power of
    /// two, minimum 8). Default 256.
    pub journal_capacity: usize,
    /// Shard checkpoint cadence, in ingest batches: every N batches a
    /// shard serializes its substrate
    /// ([`crowd_data::StreamingIndex::checkpoint`]) and truncates its
    /// write-ahead log. `0` disables checkpointing **and** crash
    /// recovery entirely — a shard panic then poisons the fleet, the
    /// pre-supervision behaviour. Default 64: a crashed shard replays
    /// at most 64 batches from its WAL.
    pub checkpoint_interval: usize,
    /// How many times a shard may be respawned from its checkpoint
    /// before the supervisor gives up and lets the panic poison the
    /// fleet (a deterministic crash would otherwise loop forever).
    /// Default 8.
    pub max_recoveries: u64,
    /// Deterministic fault injection for tests and benches
    /// ([`FaultPlan`]); `None` (the default) injects nothing and costs
    /// nothing on the ingest path.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            estimator: EstimatorConfig::default(),
            incremental: true,
            metrics: true,
            slow_op_threshold: Duration::from_millis(100),
            journal_capacity: 256,
            checkpoint_interval: 64,
            max_recoveries: 8,
            fault: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the per-shard queue capacity (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the full-queue policy.
    pub fn with_policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the estimator configuration.
    pub fn with_estimator(mut self, estimator: EstimatorConfig) -> Self {
        self.estimator = estimator;
        self
    }

    /// Enables or disables epoch-versioned incremental assessment.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Enables or disables stage timing and the event journal.
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the slow-operation journaling threshold.
    pub fn with_slow_op_threshold(mut self, threshold: Duration) -> Self {
        self.slow_op_threshold = threshold;
        self
    }

    /// Sets the flight-recorder capacity, in events.
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.journal_capacity = capacity;
        self
    }

    /// Sets the shard checkpoint cadence in ingest batches (`0`
    /// disables checkpointing and crash recovery).
    pub fn with_checkpoint_interval(mut self, interval: usize) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Sets the per-shard recovery budget.
    pub fn with_max_recoveries(mut self, max: u64) -> Self {
        self.max_recoveries = max;
        self
    }

    /// Installs a deterministic fault-injection plan.
    pub fn with_fault(mut self, fault: Arc<FaultPlan>) -> Self {
        self.fault = Some(fault);
        self
    }
}
