//! Differential streaming-vs-batch equivalence harness.
//!
//! The streaming evaluators ride the maintained [`StreamingIndex`]
//! substrate; these tests pin the central guarantee of PR 2: for
//! random response streams ingested in **random orders**, evaluation
//! on the streamed substrate is **bit-identical** to the batch
//! estimators on the accumulated data — at every checkpointed prefix,
//! for binary (Algorithm A2) and k-ary (m-worker A3) pipelines alike,
//! successes and failures both.

use crowd_assess::core::{
    EstimateError, IncrementalEvaluator, KaryIncrementalEvaluator, KaryMWorkerEstimator,
};
use crowd_assess::data::{OverlapSource, Response, ResponseMatrix, StreamingIndex};
use crowd_assess::prelude::*;
use crowd_assess::sim::{BinaryScenario, KaryScenario, rng};

/// Deterministic Fisher-Yates shuffle with its own LCG so every
/// failure reproduces from the printed seed.
fn shuffle(items: &mut [Response], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((seed >> 33) as usize) % (i + 1);
        items.swap(i, j);
    }
}

fn assert_reports_bit_identical(batch: &WorkerReport, streaming: &WorkerReport, context: &str) {
    assert_eq!(
        batch.assessments.len(),
        streaming.assessments.len(),
        "{context}: assessment count"
    );
    for (b, s) in batch.assessments.iter().zip(&streaming.assessments) {
        assert_eq!(b.worker, s.worker, "{context}");
        assert_eq!(
            b.interval.center.to_bits(),
            s.interval.center.to_bits(),
            "{context}: center for {:?}",
            b.worker
        );
        assert_eq!(
            b.interval.half_width.to_bits(),
            s.interval.half_width.to_bits(),
            "{context}: half-width for {:?}",
            b.worker
        );
        assert_eq!(b.triples_used, s.triples_used, "{context}");
        assert_eq!(b.weights_fell_back, s.weights_fell_back, "{context}");
    }
    assert_eq!(
        batch.failures.len(),
        streaming.failures.len(),
        "{context}: failure count"
    );
    for (b, s) in batch.failures.iter().zip(&streaming.failures) {
        assert_eq!(b.0, s.0, "{context}: failed worker");
        assert_eq!(b.1, s.1, "{context}: failure reason for {:?}", b.0);
    }
}

/// Binary pipeline: streamed evaluation equals batch evaluation at
/// every checkpointed prefix, across several stream orders.
#[test]
fn binary_streaming_is_bit_identical_to_batch_at_every_prefix() {
    let batch_est = MWorkerEstimator::new(EstimatorConfig::default());
    for seed in [11u64, 12, 13] {
        let inst = BinaryScenario::paper_default(6, 80, 0.8).generate(&mut rng(seed));
        let data = inst.responses();
        let mut responses: Vec<Response> = data.iter().collect();
        shuffle(&mut responses, seed.wrapping_mul(0x9e3779b97f4a7c15));

        let mut monitor = IncrementalEvaluator::new(6, 80, 2, EstimatorConfig::default());
        let mut accumulated = ResponseMatrix::empty(6, 80, 2);
        for (i, r) in responses.iter().enumerate() {
            monitor.ingest(*r).unwrap();
            accumulated.insert(*r).unwrap();
            let at_checkpoint = (i + 1) % 60 == 0 || i + 1 == responses.len();
            if !at_checkpoint {
                continue;
            }
            let batch = batch_est.evaluate_all(&accumulated, 0.9).unwrap();
            let streaming = monitor.evaluate_all(0.9).unwrap();
            assert_reports_bit_identical(
                &batch,
                &streaming,
                &format!("seed {seed}, prefix {}", i + 1),
            );
        }
    }
}

/// Seeding from a matrix and then streaming the rest lands in exactly
/// the same state as streaming everything.
#[test]
fn seeded_plus_streamed_equals_fully_streamed() {
    let inst = BinaryScenario::paper_default(5, 60, 0.9).generate(&mut rng(29));
    let data = inst.responses();
    let mut responses: Vec<Response> = data.iter().collect();
    shuffle(&mut responses, 0xfeed);
    let cut = responses.len() / 2;

    let mut head = ResponseMatrix::empty(5, 60, 2);
    for r in &responses[..cut] {
        head.insert(*r).unwrap();
    }
    let mut seeded = IncrementalEvaluator::from_matrix(&head, EstimatorConfig::default());
    let mut streamed = IncrementalEvaluator::new(5, 60, 2, EstimatorConfig::default());
    for r in &responses[..cut] {
        streamed.ingest(*r).unwrap();
    }
    for r in &responses[cut..] {
        seeded.ingest(*r).unwrap();
        streamed.ingest(*r).unwrap();
    }
    assert_eq!(seeded.index(), streamed.index());
    let a = seeded.evaluate_all(0.9).unwrap();
    let b = streamed.evaluate_all(0.9).unwrap();
    assert_reports_bit_identical(&a, &b, "seeded vs streamed");
}

/// k-ary pipeline: the streaming evaluator's per-entry intervals and
/// failure taxonomy equal the batch m-worker A3 extension at
/// checkpointed prefixes.
#[test]
fn kary_streaming_is_bit_identical_to_batch_at_prefixes() {
    let batch_est = KaryMWorkerEstimator::new(EstimatorConfig::default());
    let inst = KaryScenario::paper_default(2, 150, 0.9)
        .with_workers(5)
        .generate(&mut rng(31));
    let data = inst.responses();
    let mut responses: Vec<Response> = data.iter().collect();
    shuffle(&mut responses, 0xabcd);

    let mut monitor = KaryIncrementalEvaluator::new(5, 150, 2, EstimatorConfig::default());
    let mut accumulated = ResponseMatrix::empty(5, 150, 2);
    let checkpoints = [responses.len() / 2, responses.len()];
    for (i, r) in responses.iter().enumerate() {
        monitor.ingest(*r).unwrap();
        accumulated.insert(*r).unwrap();
        if !checkpoints.contains(&(i + 1)) {
            continue;
        }
        let batch = batch_est.evaluate_all(&accumulated, 0.9).unwrap();
        let streaming = monitor.evaluate_all(0.9).unwrap();
        let context = format!("k-ary prefix {}", i + 1);
        assert_eq!(
            batch.assessments.len(),
            streaming.assessments.len(),
            "{context}"
        );
        for (b, s) in batch.assessments.iter().zip(&streaming.assessments) {
            assert_eq!(b.worker, s.worker, "{context}");
            assert_eq!(b.triples_used, s.triples_used, "{context}");
            for (x, y) in b.intervals.iter().zip(&s.intervals) {
                assert_eq!(x.center.to_bits(), y.center.to_bits(), "{context}");
                assert_eq!(x.half_width.to_bits(), y.half_width.to_bits(), "{context}");
            }
        }
        assert_eq!(batch.failures.len(), streaming.failures.len(), "{context}");
        for (b, s) in batch.failures.iter().zip(&streaming.failures) {
            assert_eq!(b.0, s.0, "{context}");
            assert_eq!(b.1, s.1, "{context}");
        }
    }
}

/// Fleet configuration (capped triples → peer-scoped views): streamed
/// evaluation still equals batch at every checkpointed prefix, and the
/// maintained view memory tracks the pairing degree, not the worker
/// count.
#[test]
fn capped_streaming_is_bit_identical_and_peer_scoped() {
    let config = EstimatorConfig::fleet(2);
    let batch_est = MWorkerEstimator::new(config.clone());
    let m = 12usize;
    let inst = BinaryScenario::paper_default(m, 100, 0.8).generate(&mut rng(17));
    let data = inst.responses();
    let mut responses: Vec<Response> = data.iter().collect();
    shuffle(&mut responses, 0xcab1e);

    let mut monitor = IncrementalEvaluator::new(m, 100, 2, config.clone());
    let mut accumulated = ResponseMatrix::empty(m, 100, 2);
    let checkpoints = [responses.len() / 2, responses.len()];
    for (i, r) in responses.iter().enumerate() {
        monitor.ingest(*r).unwrap();
        accumulated.insert(*r).unwrap();
        if !checkpoints.contains(&(i + 1)) {
            continue;
        }
        let batch = batch_est.evaluate_all(&accumulated, 0.9).unwrap();
        let streaming = monitor.evaluate_all(0.9).unwrap();
        assert_reports_bit_identical(&batch, &streaming, &format!("capped prefix {}", i + 1));
        for a in &streaming.assessments {
            assert!(a.triples_used <= 2);
        }
    }

    // With the cap at 2 triples, every maintained view tracks ≤ 4
    // peers: resident mask memory must sit well below a population
    // scope's m rows per view.
    let scoped = monitor.view_mask_bytes();
    let full_view = crowd_assess::data::OverlapIndex::from_matrix(&accumulated)
        .anchored(WorkerId(0))
        .mask_bytes();
    assert!(
        scoped > 0,
        "anchored views must be resident after evaluation"
    );
    assert!(
        scoped < full_view * m / 2,
        "peer-scoped streaming memory {scoped}B should undercut \
         population-wide views ({}B for m views)",
        full_view * m
    );
}

/// The streaming substrate rejects malformed ingests with the data
/// error taxonomy and refuses evaluation with the estimator taxonomy —
/// never a panic.
#[test]
fn error_taxonomy_is_stable_under_streaming() {
    use crowd_assess::data::{DataError, Label, TaskId};
    let mut stream = StreamingIndex::new(3, 4, 2);
    let ok = Response {
        worker: WorkerId(0),
        task: TaskId(0),
        label: Label(1),
    };
    stream.record_response(ok).unwrap();
    assert!(matches!(
        stream.record_response(ok),
        Err(DataError::DuplicateResponse { .. })
    ));
    assert!(matches!(
        stream.record_response(Response {
            worker: WorkerId(7),
            task: TaskId(0),
            label: Label(0)
        }),
        Err(DataError::UnknownId { kind: "worker", .. })
    ));
    assert!(matches!(
        stream.record_response(Response {
            worker: WorkerId(0),
            task: TaskId(9),
            label: Label(0)
        }),
        Err(DataError::UnknownId { kind: "task", .. })
    ));
    assert!(matches!(
        stream.record_response(Response {
            worker: WorkerId(0),
            task: TaskId(1),
            label: Label(5)
        }),
        Err(DataError::LabelOutOfRange { label: 5, arity: 2 })
    ));

    let ev = IncrementalEvaluator::new(2, 4, 2, EstimatorConfig::default());
    assert!(matches!(
        ev.evaluate_all(0.9),
        Err(EstimateError::NotEnoughWorkers { got: 2, need: 3 })
    ));
}
