//! Cross-crate integration: simulate → serialize → estimate → score,
//! exercising the public API exactly as a downstream user would.

use crowd_assess::core::baselines::{DawidSkene, GoldBaseline};
use crowd_assess::data::csv;
use crowd_assess::prelude::*;

#[test]
fn pipeline_is_deterministic_per_seed() {
    let scenario = BinaryScenario::paper_default(7, 120, 0.8);
    let run = |seed: u64| {
        let inst = scenario.generate(&mut crowd_assess::sim::rng(seed));
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        est.evaluate_all(inst.responses(), 0.9).unwrap()
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.assessments.len(), b.assessments.len());
    for (x, y) in a.assessments.iter().zip(&b.assessments) {
        assert_eq!(x.worker, y.worker);
        assert_eq!(x.interval, y.interval);
    }
    // A different seed produces different intervals.
    let c = run(6);
    assert!(
        a.assessments
            .iter()
            .zip(&c.assessments)
            .any(|(x, y)| x.interval.center != y.interval.center)
    );
}

#[test]
fn estimation_survives_a_csv_roundtrip() {
    let inst = BinaryScenario::paper_default(5, 80, 0.9).generate(&mut crowd_assess::sim::rng(11));
    let mut buf = Vec::new();
    csv::write_responses(inst.responses(), &mut buf).unwrap();
    let reloaded = csv::read_responses(buf.as_slice()).unwrap();
    assert_eq!(&reloaded, inst.responses());

    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let before = est.evaluate_all(inst.responses(), 0.8).unwrap();
    let after = est.evaluate_all(&reloaded, 0.8).unwrap();
    for (x, y) in before.assessments.iter().zip(&after.assessments) {
        assert_eq!(x.interval, y.interval);
    }
}

#[test]
fn gold_free_estimates_agree_with_gold_based_ones() {
    // With plenty of data, the agreement-based intervals should center
    // near the gold-standard (Wilson) intervals computed from the same
    // responses.
    let inst =
        BinaryScenario::paper_default(7, 2_000, 1.0).generate(&mut crowd_assess::sim::rng(13));
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let report = est.evaluate_all(inst.responses(), 0.9).unwrap();
    let gold = GoldBaseline::default();
    for a in &report.assessments {
        let g = gold
            .evaluate_worker(inst.responses(), inst.gold(), a.worker, 0.9)
            .unwrap();
        assert!(
            (a.interval.center - g.center).abs() < 0.03,
            "worker {:?}: agreement-based {:.3} vs gold-based {:.3}",
            a.worker,
            a.interval.center,
            g.center
        );
    }
}

#[test]
fn dawid_skene_and_interval_estimates_agree_on_rankings() {
    // EM point estimates and the interval centers should order the
    // workers identically when the data is plentiful.
    let inst =
        BinaryScenario::paper_default(9, 1_000, 1.0).generate(&mut crowd_assess::sim::rng(17));
    let report = MWorkerEstimator::new(EstimatorConfig::default())
        .evaluate_all(inst.responses(), 0.9)
        .unwrap();
    let ds = DawidSkene::default().run(inst.responses()).unwrap();
    let ds_rates = ds.error_rates();
    let mut by_interval: Vec<_> = report
        .assessments
        .iter()
        .map(|a| (a.worker, a.interval.center))
        .collect();
    let mut by_ds: Vec<_> = inst
        .responses()
        .workers()
        .map(|w| (w, ds_rates[w.index()]))
        .collect();
    by_interval.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    by_ds.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    // Group-level agreement: the same workers occupy the bottom third
    // (best) under both estimators.
    let k = 3;
    let best_interval: std::collections::HashSet<_> =
        by_interval.iter().take(k).map(|(w, _)| *w).collect();
    let best_ds: std::collections::HashSet<_> = by_ds.iter().take(k).map(|(w, _)| *w).collect();
    let overlap = best_interval.intersection(&best_ds).count();
    assert!(
        overlap >= k - 1,
        "best-worker sets diverge: {best_interval:?} vs {best_ds:?}"
    );
}

#[test]
fn kary_estimator_handles_binary_tasks_consistently() {
    // Arity 2 is a special case of the k-ary estimator; its diagonal
    // estimates must agree with the binary estimator's error rates
    // (P[0,1]·S₀ + P[1,0]·S₁ ≈ p).
    let inst =
        BinaryScenario::paper_default(3, 3_000, 1.0).generate(&mut crowd_assess::sim::rng(19));
    let kary = KaryEstimator::new(EstimatorConfig::default());
    let workers = [WorkerId(0), WorkerId(1), WorkerId(2)];
    let a = kary.evaluate(inst.responses(), workers, 0.9).unwrap();
    for (slot, &w) in workers.iter().enumerate() {
        let p = inst.true_error_rate(w);
        let p_est = a.selectivity[0] * a.response_prob[slot].get(0, 1)
            + a.selectivity[1] * a.response_prob[slot].get(1, 0);
        assert!(
            (p_est - p).abs() < 0.05,
            "worker {w}: k-ary error {p_est:.3} vs true {p:.3}"
        );
    }
}

#[test]
fn failures_are_reported_not_panicked() {
    // Three workers with zero mutual overlap must fail gracefully.
    let mut b = ResponseMatrixBuilder::new(3, 9, 2);
    for w in 0..3u32 {
        for t in 0..3u32 {
            b.push(WorkerId(w), TaskId(w * 3 + t), Label(0)).unwrap();
        }
    }
    let data = b.build().unwrap();
    let report = MWorkerEstimator::new(EstimatorConfig::default())
        .evaluate_all(&data, 0.9)
        .unwrap();
    assert!(report.assessments.is_empty());
    assert_eq!(report.failures.len(), 3);
}
