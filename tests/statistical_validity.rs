//! Statistical acceptance tests: the headline claims of the paper,
//! verified end-to-end at reduced (but still meaningful) repetition
//! counts. These are the "does the reproduction actually reproduce"
//! tests; the full-scale numbers live in EXPERIMENTS.md.

use crowd_assess::core::baselines::OldTechnique;
use crowd_assess::core::{CoverageStats, KaryEstimator};
use crowd_assess::prelude::*;
use crowd_data::WorkerId;

/// Paper §III-A1: the new technique's intervals are substantially
/// tighter than the old technique's at equal confidence.
#[test]
fn new_technique_beats_old_technique() {
    let scenario = BinaryScenario::paper_default(3, 100, 1.0);
    let new = MWorkerEstimator::new(EstimatorConfig::default());
    let old = OldTechnique::default();
    let mut rng = crowd_assess::sim::rng(211);
    let (mut new_sz, mut old_sz, mut used) = (0.0, 0.0, 0);
    for _ in 0..60 {
        let inst = scenario.generate(&mut rng);
        let Ok(report) = new.evaluate_all(inst.responses(), 0.5) else {
            continue;
        };
        if report.assessments.len() < 3 {
            continue;
        }
        let Ok(old_cis) = old.evaluate_all(inst.responses(), 0.5) else {
            continue;
        };
        new_sz += report.mean_interval_size();
        old_sz += old_cis.iter().map(|(_, ci)| ci.size()).sum::<f64>() / 3.0;
        used += 1;
    }
    assert!(used >= 40, "too many degenerate repetitions ({used})");
    let reduction = 1.0 - new_sz / old_sz;
    assert!(
        reduction > 0.25,
        "expected ≥25% interval-size reduction (paper: ~40%), got {:.1}%",
        reduction * 100.0
    );
}

/// Paper Fig. 2(a): coverage tracks the confidence level on binary
/// non-regular data.
#[test]
fn binary_coverage_tracks_confidence() {
    let scenario = BinaryScenario::paper_default(7, 300, 0.8);
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let mut rng = crowd_assess::sim::rng(223);
    for &c in &[0.6, 0.9] {
        let mut stats = CoverageStats::default();
        for _ in 0..40 {
            let inst = scenario.generate(&mut rng);
            let report = est.evaluate_all(inst.responses(), c).unwrap();
            stats.merge(report.coverage(|w| Some(inst.true_error_rate(w))));
        }
        let acc = stats.accuracy().unwrap();
        assert!(
            (acc - c).abs() < 0.07,
            "coverage {acc:.3} at c={c} over {} intervals",
            stats.total
        );
    }
}

/// Paper Fig. 2(b): interval size scales roughly like 1/density.
#[test]
fn interval_size_is_inverse_in_density() {
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let mut rng = crowd_assess::sim::rng(227);
    let mut sizes = Vec::new();
    for &d in &[0.5, 1.0] {
        let scenario = BinaryScenario::paper_default(7, 300, d);
        let mut total = 0.0;
        let mut n = 0;
        for _ in 0..25 {
            let inst = scenario.generate(&mut rng);
            if let Ok(report) = est.evaluate_all(inst.responses(), 0.8)
                && !report.assessments.is_empty()
            {
                total += report.mean_interval_size();
                n += 1;
            }
        }
        sizes.push(total / n as f64);
    }
    let ratio = sizes[0] / sizes[1];
    // Doubling density should roughly halve the size (paper: size ∝ 1/d).
    assert!(
        (1.5..3.0).contains(&ratio),
        "size(d=0.5)/size(d=1.0) = {ratio:.2}, expected ≈ 2"
    );
}

/// Paper Fig. 5(a): k-ary coverage is at or above nominal.
#[test]
fn kary_coverage_is_calibrated_or_conservative() {
    let est = KaryEstimator::new(EstimatorConfig::default());
    let workers = [WorkerId(0), WorkerId(1), WorkerId(2)];
    let mut rng = crowd_assess::sim::rng(229);
    for &arity in &[2u16, 3] {
        let scenario = KaryScenario::paper_default(arity, 500, 1.0);
        let mut stats = CoverageStats::default();
        for _ in 0..25 {
            let inst = scenario.generate(&mut rng);
            let Ok(a) = est.evaluate(inst.responses(), workers, 0.9) else {
                continue;
            };
            let truth = [0u32, 1, 2].map(|w| inst.true_confusion(WorkerId(w)));
            stats.merge(a.coverage(&truth));
        }
        let acc = stats.accuracy().expect("some repetitions succeed");
        assert!(
            acc > 0.85,
            "arity {arity}: coverage {acc:.3} at c=0.9 over {} intervals",
            stats.total
        );
    }
}

/// Independent-oracle cross-check: on the same 3-worker data, the
/// Theorem 1 delta-method interval and a nonparametric task-resampling
/// bootstrap of the same statistic must broadly agree in center and
/// width. This validates the whole analytic chain (agreement rates →
/// Lemma 1 covariances → Lemma 2 gradients → Theorem 1) against a
/// method that shares none of it.
#[test]
fn delta_method_interval_matches_bootstrap_oracle() {
    use crowd_assess::core::DegeneracyPolicy;
    use crowd_assess::core::agreement::Triangle;
    use crowd_assess::stats::Bootstrap;
    use crowd_data::triple_joint_labels;

    let scenario = BinaryScenario::paper_default(3, 200, 1.0);
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let boot = Bootstrap {
        resamples: 600,
        seed: 991,
    };
    let mut rng = crowd_assess::sim::rng(239);
    let mut width_ratio = 0.0;
    let mut center_gap = 0.0;
    let mut used = 0;
    for _ in 0..12 {
        let inst = scenario.generate(&mut rng);
        let data = inst.responses();
        let Ok(delta) = est.evaluate_worker(data, WorkerId(0), 0.9) else {
            continue;
        };
        let items = triple_joint_labels(data, WorkerId(0), WorkerId(1), WorkerId(2));
        let Ok(bootstrap) = boot.percentile_interval(
            &items,
            |sample| {
                let n = sample.len() as f64;
                let q = |f: &dyn Fn(&(_, _, _)) -> bool| {
                    sample.iter().filter(|t| f(t)).count() as f64 / n
                };
                let triangle = Triangle {
                    q_ij: q(&|(a, b, _)| a == b),
                    q_ik: q(&|(a, _, c)| a == c),
                    q_jk: q(&|(_, b, c)| b == c),
                };
                let t = triangle.regularized(DegeneracyPolicy::Error).ok()?;
                Some(t.error_rate())
            },
            0.9,
        ) else {
            continue;
        };
        width_ratio += delta.interval.size() / bootstrap.size();
        center_gap += (delta.interval.center - bootstrap.center).abs();
        used += 1;
    }
    assert!(used >= 8, "too many degenerate repetitions ({used})");
    let width_ratio = width_ratio / used as f64;
    let center_gap = center_gap / used as f64;
    assert!(
        (0.7..1.4).contains(&width_ratio),
        "delta/bootstrap width ratio {width_ratio:.3}, expected ≈ 1"
    );
    assert!(
        center_gap < 0.03,
        "centers disagree by {center_gap:.4} on average"
    );
}

/// Paper Fig. 4: pruning spammers never hurts, and the pruned run's
/// high-confidence accuracy lands near nominal on the messy stand-ins.
#[test]
fn spammer_pruning_restores_real_data_accuracy() {
    use crowd_assess::core::preprocess::{PAPER_SPAMMER_THRESHOLD, prune_spammers};
    let dataset = crowd_assess::datasets::ent::generate(231);
    let est = MWorkerEstimator::new(EstimatorConfig {
        min_pair_overlap: 10,
        ..EstimatorConfig::default()
    });
    let pruned = prune_spammers(&dataset.responses, PAPER_SPAMMER_THRESHOLD);
    assert!(
        !pruned.removed.is_empty(),
        "the ENT stand-in plants spammers"
    );
    let report = est.evaluate_all(&pruned.data, 0.9).unwrap();
    let stats = report.coverage(|w| {
        dataset
            .gold
            .worker_error_rate(&dataset.responses, pruned.kept[w.index()])
    });
    let acc = stats.accuracy().unwrap();
    assert!(
        acc > 0.85,
        "post-pruning accuracy {acc:.3} at c=0.9 over {} workers",
        stats.total
    );
}
