//! Failure-injection tests: degenerate, adversarial and pathological
//! inputs must produce clean, typed errors (or honest wide intervals)
//! — never panics, NaN intervals, or silently wrong numbers.

use crowd_assess::core::{CoverageStats, EstimateError, KaryEstimator, KaryMWorkerEstimator};
use crowd_assess::prelude::*;
use crowd_data::{Label, ResponseMatrixBuilder, TaskId};

fn regular_matrix(m: usize, n: usize, label: impl Fn(u32, u32) -> Label) -> ResponseMatrix {
    let mut b = ResponseMatrixBuilder::new(m, n, 2);
    for w in 0..m as u32 {
        for t in 0..n as u32 {
            b.push(WorkerId(w), TaskId(t), label(w, t)).unwrap();
        }
    }
    b.build().unwrap()
}

/// A malicious worker (error rate > 1/2) produces agreement rates at or
/// below 1/2 against good workers; the default policy must fail that
/// worker cleanly rather than emit a nonsense estimate.
#[test]
fn malicious_worker_fails_cleanly_or_is_clamped() {
    let mut rng = crowd_assess::sim::rng(601);
    let mut scenario = BinaryScenario::paper_default(5, 200, 1.0);
    scenario.error_pool = vec![0.1];
    let inst = scenario.generate(&mut rng);
    // Rebuild with worker 4 replaced by an adversary that always flips
    // the truth (error rate 1.0).
    let mut b = ResponseMatrixBuilder::new(5, 200, 2);
    for r in inst.responses().iter() {
        let label = if r.worker.0 == 4 {
            inst.gold().label(r.task).unwrap().flipped()
        } else {
            r.label
        };
        b.push(r.worker, r.task, label).unwrap();
    }
    let data = b.build().unwrap();

    let strict = MWorkerEstimator::new(EstimatorConfig::default());
    let report = strict.evaluate_all(&data, 0.9).unwrap();
    // The adversary cannot be evaluated under the Error policy: every
    // triangle containing it is degenerate.
    assert!(
        report.failures.iter().any(|(w, _)| *w == WorkerId(4)),
        "{report:?}"
    );
    // The good workers still get finite, small estimates.
    for a in &report.assessments {
        assert!(a.interval.center.is_finite());
        assert!(a.interval.center < 0.3, "good worker misjudged: {:?}", a);
    }

    // The clamping policy evaluates everyone; the adversary's interval
    // is honest garbage — wide or pinned near the singularity, never
    // NaN.
    let clamping = MWorkerEstimator::new(EstimatorConfig::clamping());
    let report = clamping.evaluate_all(&data, 0.9).unwrap();
    for a in &report.assessments {
        assert!(a.interval.center.is_finite(), "{a:?}");
        assert!(a.interval.half_width.is_finite(), "{a:?}");
    }
}

/// Unanimous data (everyone agrees on everything) sits at the opposite
/// edge: agreement rates of exactly 1. Estimates must come out at zero
/// error with a finite interval (variance smoothing prevents a
/// zero-width point interval).
#[test]
fn unanimous_data_gives_zero_error_finite_interval() {
    let data = regular_matrix(5, 60, |_, t| Label((t % 2 == 0) as u16));
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let report = est.evaluate_all(&data, 0.9).unwrap();
    assert_eq!(report.assessments.len(), 5);
    for a in &report.assessments {
        assert!(
            a.interval.center.abs() < 1e-9,
            "unanimous workers have zero error: {a:?}"
        );
        assert!(a.interval.half_width.is_finite());
        assert!(
            a.interval.half_width > 0.0,
            "smoothing keeps the interval honest: {a:?}"
        );
    }
}

/// One task only: every pair overlaps on a single task. The estimator
/// must either produce a (hopelessly wide) interval or fail typed —
/// and never panic.
#[test]
fn single_task_data_does_not_panic() {
    let data = regular_matrix(3, 1, |w, _| Label((w == 2) as u16));
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    match est.evaluate_all(&data, 0.9) {
        Ok(report) => {
            for a in &report.assessments {
                assert!(a.interval.half_width.is_finite());
            }
        }
        Err(e) => {
            let _ = e.to_string();
        }
    }
}

/// Zero-response and single-worker matrices are rejected with typed
/// errors.
#[test]
fn empty_and_tiny_matrices_are_typed_errors() {
    let empty = ResponseMatrixBuilder::new(0, 0, 2).build().unwrap();
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    assert!(matches!(
        est.evaluate_all(&empty, 0.9),
        Err(EstimateError::NotEnoughWorkers { got: 0, need: 3 })
    ));

    let single = regular_matrix(1, 10, |_, _| Label(0));
    assert!(matches!(
        est.evaluate_all(&single, 0.9),
        Err(EstimateError::NotEnoughWorkers { got: 1, need: 3 })
    ));

    let kary = KaryMWorkerEstimator::new(EstimatorConfig::default());
    assert!(matches!(
        kary.evaluate_all(&single, 0.9),
        Err(EstimateError::NotEnoughWorkers { .. })
    ));
}

/// A k-ary dataset in which one label never occurs: the moment matrix
/// is singular — the exact failure the paper hits on WSD with arity 3.
/// Must be a clean degenerate error.
#[test]
fn kary_with_unused_label_fails_cleanly() {
    // Arity 3 declared, but only labels 0 and 1 ever used.
    let mut b = ResponseMatrixBuilder::new(3, 120, 3);
    for w in 0..3u32 {
        for t in 0..120u32 {
            b.push(WorkerId(w), TaskId(t), Label((t % 2) as u16))
                .unwrap();
        }
    }
    let data = b.build().unwrap();
    let est = KaryEstimator::new(EstimatorConfig::default());
    let err = est
        .evaluate(&data, [WorkerId(0), WorkerId(1), WorkerId(2)], 0.9)
        .expect_err("rank-deficient moments must not yield intervals");
    assert!(
        matches!(
            err,
            EstimateError::Degenerate { .. } | EstimateError::Numerical(_)
        ),
        "unexpected error: {err}"
    );
}

/// Two perfectly anti-correlated workers: their agreement rate is 0,
/// far below the singularity. Triples containing both are dropped;
/// with only three workers that means a typed failure.
#[test]
fn anticorrelated_pair_is_degenerate() {
    let data = regular_matrix(3, 80, |w, t| {
        let truth = (t % 2) as u16;
        if w == 2 {
            Label(1 - truth)
        } else {
            Label(truth)
        }
    });
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let report = est.evaluate_all(&data, 0.9).unwrap();
    // Nobody is evaluable: every triple contains the anti-correlated
    // pair (0,2) or (1,2)... in fact all triples are {0,1,2}.
    assert_eq!(report.assessments.len(), 0);
    assert_eq!(report.failures.len(), 3);
    for (_, e) in &report.failures {
        assert!(matches!(e, EstimateError::NoUsableTriples { .. }));
    }
}

/// Invalid confidence levels are rejected at the stats layer, not
/// debug-asserted or NaN-propagated.
#[test]
fn invalid_confidence_levels_error() {
    let inst = BinaryScenario::paper_default(5, 60, 1.0).generate(&mut crowd_assess::sim::rng(607));
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    for &c in &[0.0, 1.0, -0.5, 1.5, f64::NAN] {
        let out = est.evaluate_all(inst.responses(), c);
        match out {
            Ok(report) => {
                assert!(
                    report.assessments.is_empty(),
                    "confidence {c} should not produce intervals"
                );
                assert!(!report.failures.is_empty());
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

/// Duplicate responses are rejected when the builder freezes.
#[test]
fn duplicate_response_rejected_at_build() {
    let mut b = ResponseMatrixBuilder::new(2, 2, 2);
    b.push(WorkerId(0), TaskId(0), Label(0)).unwrap();
    b.push(WorkerId(0), TaskId(0), Label(1)).unwrap();
    let err = b.build().unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
}

/// Out-of-range ids and labels are rejected at construction time.
#[test]
fn out_of_range_inputs_rejected_at_build() {
    let mut b = ResponseMatrixBuilder::new(2, 2, 2);
    assert!(b.push(WorkerId(9), TaskId(0), Label(0)).is_err());
    assert!(b.push(WorkerId(0), TaskId(9), Label(0)).is_err());
    assert!(b.push(WorkerId(0), TaskId(0), Label(7)).is_err());
}

/// Heavy spam: a pool where most workers are spammers. The default
/// policy reports failures; nothing panics, and whatever intervals
/// emerge for the honest minority remain finite.
#[test]
fn spam_heavy_pool_degrades_gracefully() {
    let mut scenario = BinaryScenario::paper_default(9, 150, 0.9);
    scenario.spammer_fraction = 0.6;
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let mut rng = crowd_assess::sim::rng(613);
    let mut stats = CoverageStats::default();
    for _ in 0..10 {
        let inst = scenario.generate(&mut rng);
        let Ok(report) = est.evaluate_all(inst.responses(), 0.9) else {
            continue;
        };
        for a in &report.assessments {
            assert!(a.interval.center.is_finite());
            assert!(a.interval.half_width.is_finite());
        }
        stats.merge(report.coverage(|w| Some(inst.true_error_rate(w))));
    }
    // No calibration promise under 60% spam — only sanity: some
    // workers were evaluated across the runs.
    assert!(stats.total > 0, "all evaluations failed under spam");
}

/// The k-ary m-worker extension on adversarially sparse data: workers
/// arranged so that some pairs never overlap. Failures must be typed,
/// successes finite.
#[test]
fn kary_m_worker_sparse_overlap_is_graceful() {
    // 5 workers, 200 tasks; worker w attempts tasks [w*30, w*30+80).
    let mut b = ResponseMatrixBuilder::new(5, 200, 2);
    let mut rng = crowd_assess::sim::rng(617);
    use rand::RngExt;
    for w in 0..5u32 {
        let lo = w * 30;
        for t in lo..(lo + 80).min(200) {
            let label = Label((rng.random::<f64>() < 0.5) as u16);
            b.push(WorkerId(w), TaskId(t), label).unwrap();
        }
    }
    let data = b.build().unwrap();
    let est = KaryMWorkerEstimator::new(EstimatorConfig {
        min_pair_overlap: 10,
        ..EstimatorConfig::default()
    });
    let report = est.evaluate_all(&data, 0.9).unwrap();
    for a in &report.assessments {
        assert!(a.mean_interval_size().is_finite());
    }
    for (_, e) in &report.failures {
        let _ = e.to_string();
    }
}
