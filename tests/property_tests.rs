//! Cross-crate property tests on the estimator invariants.

use crowd_assess::core::agreement::{Triangle, agreement_from_errors};
use crowd_assess::core::{DegeneracyPolicy, EstimatorConfig, MWorkerEstimator};
use crowd_assess::prelude::*;
use proptest::prelude::*;

/// Error rates inside the model's admissible open interval.
fn error_rate() -> impl Strategy<Value = f64> {
    0.0f64..0.45
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. (1) inverts the forward agreement map exactly, for any
    /// admissible error-rate triple.
    #[test]
    fn triangle_inversion_is_exact(p1 in error_rate(), p2 in error_rate(), p3 in error_rate()) {
        let t = Triangle {
            q_ij: agreement_from_errors(p1, p2),
            q_ik: agreement_from_errors(p1, p3),
            q_jk: agreement_from_errors(p2, p3),
        };
        let t = t.regularized(DegeneracyPolicy::Error).unwrap();
        prop_assert!((t.error_rate() - p1).abs() < 1e-9);
    }

    /// The Lemma 2 gradient matches finite differences everywhere in
    /// the admissible region.
    #[test]
    fn gradient_matches_finite_difference(
        q_ij in 0.55f64..0.98,
        q_ik in 0.55f64..0.98,
        q_jk in 0.55f64..0.98,
    ) {
        let t = Triangle { q_ij, q_ik, q_jk };
        let g = t.gradient();
        let h = 1e-7;
        let num_dq_ij = (Triangle { q_ij: q_ij + h, ..t }.error_rate()
            - Triangle { q_ij: q_ij - h, ..t }.error_rate()) / (2.0 * h);
        prop_assert!((g[0] - num_dq_ij).abs() < 1e-4 * (1.0 + g[0].abs()));
    }

    /// Intervals widen monotonically with the confidence level.
    #[test]
    fn interval_size_is_monotone_in_confidence(seed in 0u64..500) {
        let inst = BinaryScenario::paper_default(5, 80, 0.9)
            .generate(&mut crowd_assess::sim::rng(seed));
        let est = MWorkerEstimator::new(EstimatorConfig::default());
        let lo = est.evaluate_all(inst.responses(), 0.5).unwrap();
        let hi = est.evaluate_all(inst.responses(), 0.95).unwrap();
        for (a, b) in lo.assessments.iter().zip(&hi.assessments) {
            prop_assert_eq!(a.worker, b.worker);
            prop_assert!(b.interval.size() >= a.interval.size());
            // Same point estimate, different width.
            prop_assert!((a.interval.center - b.interval.center).abs() < 1e-12);
        }
    }

    /// The response matrix builder and its views stay mutually
    /// consistent under arbitrary sparse fill patterns.
    #[test]
    fn response_matrix_views_are_consistent(
        pattern in proptest::collection::vec(any::<bool>(), 60),
        labels in proptest::collection::vec(0u16..3, 60),
    ) {
        let (workers, tasks) = (5u32, 12u32);
        let mut builder = ResponseMatrixBuilder::new(workers as usize, tasks as usize, 3);
        let mut expected = 0usize;
        for (idx, (&attempt, &label)) in pattern.iter().zip(&labels).enumerate() {
            if attempt {
                let w = (idx as u32) % workers;
                let t = (idx as u32) / workers;
                builder.push(WorkerId(w), TaskId(t), Label(label)).unwrap();
                expected += 1;
            }
        }
        let m = builder.build().unwrap();
        prop_assert_eq!(m.n_responses(), expected);
        let by_worker: usize =
            m.workers().map(|w| m.worker_responses(w).len()).sum();
        let by_task: usize = m.tasks().map(|t| m.task_responses(t).len()).sum();
        prop_assert_eq!(by_worker, expected);
        prop_assert_eq!(by_task, expected);
        for r in m.iter() {
            prop_assert_eq!(m.response(r.worker, r.task), Some(r.label));
        }
    }

    /// Agreement statistics are symmetric in the worker pair and
    /// bounded by the overlap.
    #[test]
    fn pair_stats_invariants(seed in 0u64..300) {
        let inst = BinaryScenario::paper_default(4, 40, 0.6)
            .generate(&mut crowd_assess::sim::rng(seed));
        let m = inst.responses();
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                let ab = crowd_data::pair_stats(m, WorkerId(a), WorkerId(b));
                let ba = crowd_data::pair_stats(m, WorkerId(b), WorkerId(a));
                prop_assert_eq!(ab, ba);
                prop_assert!(ab.agreements <= ab.common_tasks);
                prop_assert!(
                    ab.common_tasks
                        <= m.worker_task_count(WorkerId(a)).min(m.worker_task_count(WorkerId(b)))
                );
            }
        }
    }

    /// Spammer pruning removes exactly the workers whose leave-one-out
    /// majority disagreement exceeds the threshold, and preserves the
    /// kept workers' responses verbatim.
    ///
    /// (Pruning is deliberately *not* idempotent: removing a spammer
    /// changes the majority reference, which can expose another
    /// borderline worker on a second pass.)
    #[test]
    fn pruning_removes_exactly_the_flagged_workers(seed in 0u64..200) {
        use crowd_assess::core::preprocess::prune_spammers;
        let mut scenario = BinaryScenario::paper_default(10, 60, 0.9);
        scenario.spammer_fraction = 0.3;
        let inst = scenario.generate(&mut crowd_assess::sim::rng(seed));
        let rates = crowd_data::disagreement_rates(inst.responses());
        let outcome = prune_spammers(inst.responses(), 0.4);
        for &w in &outcome.removed {
            prop_assert!(rates[w.index()].unwrap() > 0.4, "removed worker was not flagged");
        }
        for (new_idx, &old) in outcome.kept.iter().enumerate() {
            prop_assert!(rates[old.index()].is_none_or(|r| r <= 0.4));
            // Responses preserved under the id remap.
            prop_assert_eq!(
                outcome.data.worker_responses(WorkerId(new_idx as u32)),
                inst.responses().worker_responses(old)
            );
        }
        prop_assert_eq!(outcome.kept.len() + outcome.removed.len(), 10);
    }
}
