//! Quantifying the paper's §III-A caveat: agreement-based evaluation
//! assumes workers answer independently — "this assumption is true as
//! long as workers don't collude with each other". These tests verify
//! both sides: the estimator is calibrated without collusion, while a
//! copying clique (a) makes its members look far better than they are
//! and (b) poisons the agreement statistics of *honest* workers who
//! get paired against clique members — the violation is not contained
//! to the cheaters.

use crowd_assess::core::CoverageStats;
use crowd_assess::prelude::*;
use crowd_assess::sim::Collusion;
use crowd_data::pair_stats;

fn clique_members(inst: &crowd_assess::sim::BinaryInstance) -> Vec<WorkerId> {
    let m = inst.responses();
    let mut members = std::collections::HashSet::new();
    for a in 0..m.n_workers() as u32 {
        for b in (a + 1)..m.n_workers() as u32 {
            let s = pair_stats(m, WorkerId(a), WorkerId(b));
            if s.common_tasks > 50 && s.agreements == s.common_tasks {
                members.insert(WorkerId(a));
                members.insert(WorkerId(b));
            }
        }
    }
    members.into_iter().collect()
}

#[test]
fn colluders_are_systematically_underestimated() {
    let mut scenario = BinaryScenario::paper_default(9, 300, 1.0);
    scenario.collusion = Some(Collusion {
        fraction: 0.34,
        clique_error: 0.3,
    });
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let mut rng = crowd_assess::sim::rng(501);
    let mut clique_bias = 0.0;
    let mut clique_n = 0;
    let mut honest_cov = CoverageStats::default();
    for _ in 0..30 {
        let inst = scenario.generate(&mut rng);
        let members = clique_members(&inst);
        let Ok(report) = est.evaluate_all(inst.responses(), 0.9) else {
            continue;
        };
        for a in &report.assessments {
            let truth = inst.true_error_rate(a.worker);
            if members.contains(&a.worker) {
                clique_bias += a.interval.center - truth;
                clique_n += 1;
            } else {
                honest_cov.record(a.interval.contains(truth));
            }
        }
    }
    // The clique's perfect mutual agreement drags its estimated error
    // toward zero: mean bias strongly negative (they truly err at 0.3).
    let bias = clique_bias / clique_n as f64;
    assert!(
        bias < -0.15,
        "colluders should look much better than they are: mean bias {bias:.3} over {clique_n}"
    );
    // The damage is not contained: honest workers paired against
    // colluding peers inherit poisoned agreement statistics, so their
    // coverage degrades *well below* the collusion-free control (≈ 0.9,
    // see the control test). This is the full force of the paper's
    // independence caveat.
    let acc = honest_cov.accuracy().expect("honest workers evaluated");
    assert!(
        acc < 0.8,
        "expected honest-worker coverage to degrade under collusion, got {acc:.3} over {}",
        honest_cov.total
    );
    assert!(
        acc > 0.2,
        "coverage should degrade, not vanish: {acc:.3} over {}",
        honest_cov.total
    );
}

#[test]
fn no_collusion_keeps_everyone_calibrated() {
    // Control arm: identical pool without the clique.
    let scenario = BinaryScenario::paper_default(9, 300, 1.0);
    let est = MWorkerEstimator::new(EstimatorConfig::default());
    let mut rng = crowd_assess::sim::rng(503);
    let mut cov = CoverageStats::default();
    for _ in 0..30 {
        let inst = scenario.generate(&mut rng);
        let Ok(report) = est.evaluate_all(inst.responses(), 0.9) else {
            continue;
        };
        cov.merge(report.coverage(|w| Some(inst.true_error_rate(w))));
    }
    let acc = cov.accuracy().unwrap();
    assert!((acc - 0.9).abs() < 0.05, "control coverage {acc:.3}");
}

#[test]
fn spammer_pruning_does_not_catch_colluders() {
    // Colluders agree with each other, so their majority disagreement
    // is *low* — the paper's anti-spammer preprocessing is the wrong
    // tool against collusion. Documents the limitation.
    use crowd_assess::core::preprocess::{PAPER_SPAMMER_THRESHOLD, prune_spammers};
    let mut scenario = BinaryScenario::paper_default(9, 300, 1.0);
    scenario.collusion = Some(Collusion {
        fraction: 0.34,
        clique_error: 0.3,
    });
    let inst = scenario.generate(&mut crowd_assess::sim::rng(507));
    let members = clique_members(&inst);
    assert!(!members.is_empty(), "clique must exist");
    let outcome = prune_spammers(inst.responses(), PAPER_SPAMMER_THRESHOLD);
    for m in &members {
        assert!(
            !outcome.removed.contains(m),
            "pruning unexpectedly removed colluder {m:?} (it keys on majority disagreement)"
        );
    }
}
