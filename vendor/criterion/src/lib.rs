//! Offline stand-in for the `criterion` crate with the same surface
//! the workspace benches use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], `criterion_group!`/`criterion_main!`.
//!
//! Measurement is intentionally simple — a short warm-up followed by
//! `sample_size` timed batches, reporting the per-iteration median —
//! because these benches are for relative, same-machine comparisons.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the timing loop of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Per-iteration sample durations, filled by [`Bencher::iter`].
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording `samples` batches.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: aim for ≥ ~1ms batches so
        // Instant overhead stays negligible.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1000) as u32;
        self.timings.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            self.timings.push(start.elapsed() / per_batch);
        }
        self.timings.sort_unstable();
    }

    fn median(&self) -> Duration {
        self.timings
            .get(self.timings.len() / 2)
            .copied()
            .unwrap_or_default()
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    fn run(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut bencher);
        println!("{}/{}: median {:?}", self.name, label, bencher.median());
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
