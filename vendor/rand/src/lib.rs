//! Offline stand-in for the `rand` crate, covering exactly the API
//! surface this workspace uses: [`rngs::StdRng`], [`SeedableRng`], and
//! the [`RngExt`] extension trait (`random::<T>()`, `random_range`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic, which is all the simulation
//! and test code requires. It makes no attempt at cryptographic
//! security and the streams differ from upstream `rand`'s `StdRng`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl Standard for u64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` by rejection, avoiding modulo bias.
fn reject_sample(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// The user-facing sampling interface (upstream rand's `Rng`).
pub trait RngExt: RngCore + Sized {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + Sized> RngExt for R {}

/// Provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as the xoshiro authors
            // recommend (never yields the all-zero state).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Glob-import convenience, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{RngCore, RngExt, SampleRange, SeedableRng, Standard};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(0usize..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn range_mean_is_plausible() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.random_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
