//! Offline stand-in for the `proptest` crate, implementing the subset
//! this workspace's property tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`option::weighted`], [`prelude::any`], the
//! [`proptest!`] macro, and the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! seed and case number instead of a minimized input), and generation
//! is driven by the workspace's deterministic [`rand`] stub, so every
//! run explores the same inputs.

use rand::prelude::*;

pub mod test_runner {
    //! Runner configuration and failure plumbing.

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// The generator handed to strategies (deterministic).
pub type TestRng = rand::rngs::StdRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Accepted element-count specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy yielding vectors of `element` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// A strategy yielding `Some(inner)` with probability `prob`, else
    /// `None`.
    pub fn weighted<S: Strategy>(prob: f64, inner: S) -> Weighted<S> {
        Weighted { prob, inner }
    }

    /// See [`weighted`].
    #[derive(Debug, Clone)]
    pub struct Weighted<S> {
        prob: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random::<f64>() < self.prob {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! The glob import used by property tests.

    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The canonical strategy for `T` (only `bool` is provided).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Builds the deterministic per-test generator. Mixing the test name in
/// keeps different properties on different streams.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Defines property tests over generated inputs.
///
/// Supports the upstream form
/// `proptest! { #![proptest_config(...)] #[test] fn name(x in strat) { .. } }`.
/// Bodies may use `prop_assert!`/`prop_assert_eq!` and `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Skips the current case when `cond` is false (upstream rejects and
/// regenerates; without shrinking, skipping is equivalent).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_compose(x in 1usize..10, y in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_flat_map(v in (2usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..100, n)
        })) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn weighted_options(v in crate::collection::vec(crate::option::weighted(0.5, 0u32..3), 50)) {
            prop_assert_eq!(v.len(), 50);
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(0u32..1000, 10);
        let a: Vec<u32> = crate::Strategy::generate(&s, &mut crate::rng_for("x"));
        let b: Vec<u32> = crate::Strategy::generate(&s, &mut crate::rng_for("x"));
        assert_eq!(a, b);
    }
}
