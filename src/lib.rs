//! # crowd-assess
//!
//! A from-scratch Rust reproduction of **"Comprehensive and Reliable
//! Crowd Assessment Algorithms"** (Joglekar, Garcia-Molina,
//! Parameswaran; ICDE 2015): confidence intervals for crowd-worker
//! error rates *without* gold-standard tasks, under non-regular
//! (sparse) assignments, k-ary tasks and per-worker response biases.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`linalg`] — dense matrix substrate (LU, Cholesky, Jacobi/QR
//!   eigendecomposition),
//! * [`stats`] — normal distribution, delta method (the paper's
//!   Theorem 1), minimum-variance weights (Lemma 5),
//! * [`data`] — sparse response matrices, overlap statistics, counts
//!   tensors, gold standards,
//! * [`sim`] — synthetic crowd scenario generation,
//! * [`datasets`] — simulated stand-ins for the paper's six real
//!   datasets,
//! * [`core`] — the three estimators (A1, A2, A3) plus baselines,
//! * [`shard`] — sharded assessment: shard plans, scoped sparse shard
//!   indices, bit-identical report merging,
//! * [`service`] — the thread-per-shard assessment runtime: batched
//!   ingest, bounded queues with backpressure, bit-identical fleet
//!   snapshots,
//! * [`obs`] — dependency-free observability: wait-free log₂ latency
//!   histograms, a metrics registry with Prometheus-style text
//!   exposition, and a lock-free flight-recorder event journal,
//! * [`wire`] — the length-prefixed binary TCP protocol, blocking
//!   server and client that put the runtime behind a socket with
//!   bit-identical reports and the full error taxonomy on the wire.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use crowd_assess::prelude::*;
//!
//! // Simulate 7 workers answering 100 binary tasks at density 0.8.
//! let mut rng = crowd_assess::sim::rng(42);
//! let scenario = BinaryScenario::paper_default(7, 100, 0.8);
//! let instance = scenario.generate(&mut rng);
//!
//! // Confidence intervals for every worker's error rate, no gold needed.
//! let estimator = MWorkerEstimator::new(EstimatorConfig::default());
//! let report = estimator.evaluate_all(instance.responses(), 0.9).unwrap();
//! for (worker, interval) in report.iter() {
//!     let p = instance.true_error_rate(worker);
//!     println!("{worker}: {interval} (true error rate {p:.2})");
//! }
//! ```

pub use crowd_core as core;
pub use crowd_data as data;
pub use crowd_datasets as datasets;
pub use crowd_linalg as linalg;
pub use crowd_obs as obs;
pub use crowd_service as service;
pub use crowd_shard as shard;
pub use crowd_sim as sim;
pub use crowd_stats as stats;
pub use crowd_wire as wire;

/// Convenience re-exports covering the common workflow: simulate (or
/// load) responses, estimate intervals, evaluate coverage, act on the
/// results.
pub mod prelude {
    pub use crowd_core::{
        AnswerAggregator, EstimateError, EstimatorConfig, IncrementalEvaluator, KaryEstimator,
        KaryIncrementalEvaluator, MWorkerEstimator, RetentionPolicy, ThreeWorkerEstimator,
        WeightingRule, WorkerReport,
    };
    pub use crowd_data::{
        GoldStandard, Label, ResponseMatrix, ResponseMatrixBuilder, TaskId, WorkerId,
    };
    pub use crowd_obs::{EventJournal, EventKind, LatencyHistogram, MetricsRegistry};
    pub use crowd_service::{
        AssessmentService, BackpressurePolicy, ServiceConfig, ServiceError, ServiceHandle,
        ServiceMetrics,
    };
    pub use crowd_shard::{ShardPlan, ShardRunner};
    pub use crowd_sim::{ArrivalCursor, ArrivalSchedule, BinaryScenario, KaryScenario};
    pub use crowd_stats::ConfidenceInterval;
    pub use crowd_wire::{WireClient, WireConfig, WireServer};
}
