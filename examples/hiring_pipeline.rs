//! The paper's motivating application (§I): deciding which workers to
//! retain and which to fire, *reliably*.
//!
//! A worker who answered 3 tasks and missed 1 and a worker who
//! answered 30 and missed 10 both have point estimate 1/3 — but only
//! the second is confidently bad. Firing on point estimates burns good
//! workers; firing on the confidence-interval **lower bound** only
//! fires workers who are provably bad at the chosen confidence.
//!
//! ```text
//! cargo run --release --example hiring_pipeline
//! ```

use crowd_assess::prelude::*;
use crowd_assess::sim::AttemptDesign;

/// Fire anyone whose error rate is credibly above this threshold.
const FIRE_THRESHOLD: f64 = 0.25;
/// Confidence used for firing decisions.
const CONFIDENCE: f64 = 0.9;

fn main() {
    let mut rng = crowd_assess::sim::rng(7);
    // A workforce of 15 with very different activity levels: veterans
    // answered most tasks, new hires only a few — exactly the setting
    // where point estimates mislead.
    let mut scenario = BinaryScenario::paper_default(15, 200, 0.8);
    scenario.error_pool = vec![0.05, 0.1, 0.15, 0.35, 0.4];
    scenario.design = AttemptDesign::PerWorkerDensity(
        (0..15)
            .map(|i| if i % 3 == 0 { 0.95 } else { 0.15 })
            .collect(),
    );
    let instance = scenario.generate(&mut rng);

    let estimator = MWorkerEstimator::new(EstimatorConfig::default());
    let report = estimator
        .evaluate_all(instance.responses(), CONFIDENCE)
        .expect("enough workers");

    println!(
        "{:<6} {:>6} {:>8} {:>22} {:>10} {:>10} {:>8}",
        "worker", "tasks", "est.", "90% interval", "fire(pt)?", "fire(CI)?", "truth"
    );
    let mut point_firings_wrong = 0;
    let mut ci_firings_wrong = 0;
    for a in &report.assessments {
        let truth = instance.true_error_rate(a.worker);
        let tasks = instance.responses().worker_task_count(a.worker);
        // Naive policy: fire when the point estimate crosses the bar.
        let fire_point = a.interval.center > FIRE_THRESHOLD;
        // Reliable policy: fire only when even the optimistic end of
        // the interval crosses the bar.
        let fire_ci = a.interval.lo() > FIRE_THRESHOLD;
        if fire_point && truth <= FIRE_THRESHOLD {
            point_firings_wrong += 1;
        }
        if fire_ci && truth <= FIRE_THRESHOLD {
            ci_firings_wrong += 1;
        }
        println!(
            "{:<6} {:>6} {:>8.3} {:>22} {:>10} {:>10} {:>8.2}",
            a.worker.to_string(),
            tasks,
            a.interval.center,
            format!("[{:.3}, {:.3}]", a.interval.lo(), a.interval.hi()),
            if fire_point { "FIRE" } else { "keep" },
            if fire_ci { "FIRE" } else { "keep" },
            truth
        );
    }
    for (w, err) in &report.failures {
        println!("{w}: unevaluable ({err})");
    }
    println!(
        "\nwrongful firings — point-estimate policy: {point_firings_wrong}, \
         interval policy: {ci_firings_wrong}"
    );
    println!("(the interval policy abstains on thin evidence instead of firing good workers)");
}
