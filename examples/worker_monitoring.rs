//! Streaming worker monitoring: the paper's conclusion notes the
//! methods "can be easily modified to be incremental, to keep
//! efficiently updating worker error rates as more tasks get done" —
//! this example does exactly that, combining the incremental evaluator
//! with an interval-based retention policy.
//!
//! Responses arrive task by task; after every batch the monitor
//! re-evaluates the crowd off its maintained streaming index (the
//! pair table, adjacency rows and anchored bitset views all absorb
//! each response as it lands, so evaluation pays for triple formation
//! and covariance assembly only) and fires workers the moment the
//! evidence is conclusive.
//!
//! ```text
//! cargo run --release --example worker_monitoring
//! ```

use crowd_assess::core::IncrementalEvaluator;
use crowd_assess::core::policy::{Decision, RetentionPolicy};
use crowd_assess::prelude::*;

fn main() {
    let mut rng = crowd_assess::sim::rng(77);
    // A crowd with two genuinely bad workers hiding in it.
    let mut scenario = BinaryScenario::paper_default(8, 400, 1.0);
    scenario.error_pool = vec![0.08, 0.12, 0.42];
    let instance = scenario.generate(&mut rng);
    let data = instance.responses();

    let mut monitor = IncrementalEvaluator::new(
        data.n_workers(),
        data.n_tasks(),
        2,
        EstimatorConfig::default(),
    );
    let policy = RetentionPolicy {
        fire_threshold: 0.3,
        ..RetentionPolicy::default()
    };
    let mut fired: Vec<(WorkerId, usize)> = Vec::new();

    println!(
        "streaming {} responses over {} tasks...\n",
        data.n_responses(),
        data.n_tasks()
    );
    for task in data.tasks() {
        for &(w, label) in data.task_responses(task) {
            monitor
                .ingest(crowd_assess::data::Response {
                    worker: WorkerId(w),
                    task,
                    label,
                })
                .expect("simulated stream has no duplicates");
        }
        // Re-assess every 25 tasks.
        if (task.0 + 1) % 25 != 0 {
            continue;
        }
        let Ok(report) = monitor.evaluate_all(0.95) else {
            continue;
        };
        for a in &report.assessments {
            if fired.iter().any(|(w, _)| *w == a.worker) {
                continue;
            }
            if policy.decide(a) == Decision::Fire {
                println!(
                    "task {:>3}: firing {} — 95% interval [{:.2}, {:.2}] above {:.2} \
                     (true error rate {:.2})",
                    task.0 + 1,
                    a.worker,
                    a.interval.lo(),
                    a.interval.hi(),
                    policy.fire_threshold,
                    instance.true_error_rate(a.worker)
                );
                fired.push((a.worker, task.index() + 1));
            }
        }
    }

    println!(
        "\nfinal assessment after {} responses:",
        monitor.n_responses()
    );
    let report = monitor.evaluate_all(0.95).expect("full data evaluates");
    for a in &report.assessments {
        let status = if fired.iter().any(|(w, _)| *w == a.worker) {
            "FIRED"
        } else {
            "active"
        };
        println!(
            "  {} [{status:>6}] interval [{:.3}, {:.3}], true {:.2}",
            a.worker,
            a.interval.lo(),
            a.interval.hi(),
            instance.true_error_rate(a.worker)
        );
    }
    let truly_bad: Vec<WorkerId> = data
        .workers()
        .filter(|&w| instance.true_error_rate(w) > policy.fire_threshold)
        .collect();
    println!(
        "\ntruly bad workers: {:?}; fired: {:?}",
        truly_bad.iter().map(|w| w.to_string()).collect::<Vec<_>>(),
        fired
            .iter()
            .map(|(w, at)| format!("{w}@task{at}"))
            .collect::<Vec<_>>()
    );
}
