//! K-ary assessment on a MOOC-style peer-grading crowd (§IV).
//!
//! Graders map a true grade in {low, mid, high} to a response through
//! a personal confusion matrix — some are strict, some generous, some
//! sloppy. The k-ary estimator (Algorithm A3) recovers each grader's
//! full response-probability matrix *and* the grade distribution, with
//! confidence intervals on every entry, from agreement statistics
//! alone.
//!
//! ```text
//! cargo run --release --example kary_grading
//! ```

use crowd_assess::core::KaryEstimator;
use crowd_assess::prelude::*;

const GRADES: [&str; 3] = ["low", "mid", "high"];

fn main() {
    let mut rng = crowd_assess::sim::rng(2015);
    // Three graders over 600 submissions, arity 3, with the paper's
    // §IV-B response-probability matrices and a skewed grade prior.
    let mut scenario = KaryScenario::paper_default(3, 600, 0.9);
    scenario.selectivity = vec![0.25, 0.45, 0.3];
    let instance = scenario.generate(&mut rng);

    let estimator = KaryEstimator::new(EstimatorConfig::default());
    let workers = [WorkerId(0), WorkerId(1), WorkerId(2)];
    let assessment = estimator
        .evaluate(instance.responses(), workers, 0.9)
        .expect("healthy simulated data");

    println!("estimated grade distribution (true = [0.25, 0.45, 0.30]):");
    for (g, s) in GRADES.iter().zip(&assessment.selectivity) {
        println!("  P(grade = {g:<4}) ≈ {s:.3}");
    }

    for (slot, &w) in workers.iter().enumerate() {
        let truth = instance.true_confusion(w);
        println!("\ngrader {w}: P(response | truth) with 90% intervals");
        println!(
            "  {:<6} {:>28} {:>28} {:>28}",
            "truth", GRADES[0], GRADES[1], GRADES[2]
        );
        for r in 0..3 {
            let mut row = format!("  {:<6}", GRADES[r]);
            for c in 0..3 {
                let ci = assessment.interval(slot, r, c);
                row.push_str(&format!(
                    " {:>9.2} [{:>5.2},{:>5.2}] ({:.2})",
                    ci.center,
                    ci.clipped(0.0, 1.0).lo(),
                    ci.clipped(0.0, 1.0).hi(),
                    truth.get(r, c)
                ));
            }
            println!("{row}");
        }
        let err = assessment.error_rate[slot].clipped(0.0, 1.0);
        println!(
            "  overall error rate: {:.3} in [{:.3}, {:.3}]   (true {:.3})",
            err.center,
            err.lo(),
            err.hi(),
            instance.true_error_rate(w)
        );
        let stats = assessment.coverage(&[
            instance.true_confusion(WorkerId(0)),
            instance.true_confusion(WorkerId(1)),
            instance.true_confusion(WorkerId(2)),
        ]);
        if slot == 2 {
            println!(
                "\ncoverage across all 27 response probabilities: {}/{}",
                stats.covered, stats.total
            );
        }
    }
}
