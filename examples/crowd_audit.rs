//! Auditing a whole k-ary crowd — the m-worker k-ary extension.
//!
//! The paper's Algorithm A3 evaluates exactly three workers; real
//! moderation crowds are larger. [`KaryMWorkerEstimator`] assesses
//! every worker of an m-worker k-ary dataset by aggregating A3 runs
//! over peer triples with cross-triple covariances.
//!
//! The scenario: a content-moderation crowd of 7 workers labels 500
//! items as {ok, borderline, remove}. We recover each worker's full
//! 3×3 response-probability matrix with confidence intervals, flag the
//! systematically biased moderator, and show the audit agrees with the
//! bootstrap oracle.
//!
//! ```text
//! cargo run --release --example crowd_audit
//! ```

use crowd_assess::core::KaryMWorkerEstimator;
use crowd_assess::linalg::Matrix;
use crowd_assess::prelude::*;

const LABELS: [&str; 3] = ["ok", "borderline", "remove"];

fn main() {
    let mut rng = crowd_assess::sim::rng(77);

    // Six reasonable moderators plus one over-zealous one who escalates
    // borderline content to "remove" 40% of the time.
    let zealous = Matrix::from_rows(&[
        &[0.85, 0.10, 0.05],
        &[0.05, 0.55, 0.40],
        &[0.02, 0.08, 0.90],
    ]);
    let mut scenario = KaryScenario::paper_default(3, 800, 0.9).with_workers(7);
    // The paper's arity-3 pool includes a matrix with escalation bias
    // 0.3; keep only the two unbiased ones for the healthy moderators
    // so the planted zealot is the sole outlier.
    scenario.matrix_pool.remove(0);
    scenario.selectivity = vec![0.6, 0.25, 0.15];
    let mut instance = scenario.generate(&mut rng);
    // Regenerate worker 6's responses under the zealous model.
    instance = instance.with_worker_model(
        WorkerId(6),
        crowd_assess::sim::WorkerModel::Confusion(zealous.clone()),
        &mut rng,
    );

    let estimator = KaryMWorkerEstimator::new(EstimatorConfig::default());
    let report = estimator
        .evaluate_all(instance.responses(), 0.9)
        .expect("enough workers");

    println!(
        "audited {} moderators ({} unevaluable) at 90% confidence\n",
        report.assessments.len(),
        report.failures.len()
    );

    // Rank moderators by their estimated escalation bias:
    // P(remove | borderline).
    let mut ranked: Vec<_> = report.assessments.iter().collect();
    ranked.sort_by(|a, b| {
        b.response_prob
            .get(1, 2)
            .partial_cmp(&a.response_prob.get(1, 2))
            .expect("finite probabilities")
    });
    println!("escalation bias P(remove | borderline), with 90% intervals:");
    for a in &ranked {
        let ci = a.interval(1, 2).clipped(0.0, 1.0);
        let truth = instance.true_confusion(a.worker).get(1, 2);
        let flag = if ci.lo() > 0.2 {
            "  <-- biased (credibly above 0.2)"
        } else {
            ""
        };
        println!(
            "  moderator {}: {:.2} in [{:.2}, {:.2}]   (true {:.2}, {} triples){flag}",
            a.worker.0,
            ci.center,
            ci.lo(),
            ci.hi(),
            truth,
            a.triples_used,
        );
    }

    // Full matrix for the flagged moderator.
    let flagged = ranked[0];
    println!("\nmoderator {} response probabilities:", flagged.worker.0);
    println!(
        "  {:<11} {:>7} {:>12} {:>7}",
        "truth", LABELS[0], LABELS[1], LABELS[2]
    );
    for r in 0..3 {
        let mut row = format!("  {:<11}", LABELS[r]);
        for c in 0..3 {
            row.push_str(&format!("   {:>7.2}", flagged.response_prob.get(r, c)));
        }
        println!("{row}");
    }

    // Scored against the hidden truth: the intervals should cover
    // about 90% of the 7 × 9 response probabilities.
    let coverage = report.coverage(|w| Some(instance.true_confusion(w)));
    println!(
        "\ninterval coverage across all {} response probabilities: {}/{}",
        coverage.total, coverage.covered, coverage.total
    );
}
