//! Quickstart: confidence intervals for worker error rates without any
//! gold-standard tasks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use crowd_assess::prelude::*;

fn main() {
    // Simulate a crowd: 7 workers, 100 binary tasks, each worker
    // answering each task with probability 0.8 (non-regular data —
    // nobody attempted everything). Worker error rates are drawn from
    // {0.1, 0.2, 0.3}, but the estimator never sees them.
    let mut rng = crowd_assess::sim::rng(42);
    let scenario = BinaryScenario::paper_default(7, 100, 0.8);
    let instance = scenario.generate(&mut rng);
    let data = instance.responses();
    println!(
        "simulated {} workers × {} tasks, {} responses (density {:.2})\n",
        data.n_workers(),
        data.n_tasks(),
        data.n_responses(),
        data.density()
    );

    // Estimate 90% confidence intervals for every worker's error rate
    // purely from inter-worker agreement (Algorithm A2 of the paper).
    let estimator = MWorkerEstimator::new(EstimatorConfig::default());
    let report = estimator.evaluate_all(data, 0.9).expect("enough workers");

    println!(
        "{:<8} {:>24}   {:>6}   covered?",
        "worker", "90% interval", "truth"
    );
    for a in &report.assessments {
        let truth = instance.true_error_rate(a.worker);
        println!(
            "{:<8} {:>24}   {:>6.2}   {}",
            a.worker.to_string(),
            a.interval.to_string(),
            truth,
            if a.interval.contains(truth) {
                "yes"
            } else {
                "NO"
            }
        );
    }
    for (w, err) in &report.failures {
        println!("{w}: could not evaluate ({err})");
    }

    let coverage = report.coverage(|w| Some(instance.true_error_rate(w)));
    println!(
        "\ncoverage: {}/{} intervals contain the true error rate",
        coverage.covered, coverage.total
    );
}
