//! Evaluating a realistic, messy dataset: the ENT/RTE stand-in with
//! spammers, sparsity and task-difficulty heterogeneity (§III-E).
//!
//! Runs the m-worker estimator before and after the paper's
//! spammer-pruning preprocessing and reports interval accuracy against
//! the gold-standard error fractions, plus a CSV roundtrip of the
//! response data.
//!
//! ```text
//! cargo run --release --example dataset_eval
//! ```

use crowd_assess::core::preprocess::{PAPER_SPAMMER_THRESHOLD, prune_spammers};
use crowd_assess::data::csv;
use crowd_assess::datasets;
use crowd_assess::prelude::*;

fn accuracy(
    data: &crowd_assess::data::ResponseMatrix,
    truth_of: impl Fn(WorkerId) -> Option<f64>,
    confidence: f64,
) -> (usize, usize) {
    // Sparse real data: require ≥ 10 common tasks per pair (see the
    // m-worker module docs); workers without enough overlap are
    // skipped rather than mis-estimated.
    let estimator = MWorkerEstimator::new(EstimatorConfig {
        min_pair_overlap: 10,
        ..EstimatorConfig::default()
    });
    let report = estimator
        .evaluate_all(data, confidence)
        .expect("enough workers");
    let stats = report.coverage(truth_of);
    (stats.covered, stats.total)
}

fn main() {
    let dataset = datasets::ent::generate(99);
    println!(
        "ENT stand-in: {} workers, {} tasks, {} responses (density {:.3})",
        dataset.responses.n_workers(),
        dataset.responses.n_tasks(),
        dataset.responses.n_responses(),
        dataset.responses.density()
    );

    // CSV roundtrip: what you would do with a real response log.
    let mut buf = Vec::new();
    csv::write_responses(&dataset.responses, &mut buf).expect("in-memory write");
    let reloaded = csv::read_responses(buf.as_slice()).expect("own output parses");
    assert_eq!(reloaded.n_responses(), dataset.responses.n_responses());
    println!(
        "CSV roundtrip: {} bytes, {} responses\n",
        buf.len(),
        reloaded.n_responses()
    );

    println!("interval accuracy (should track the confidence level):");
    println!(
        "{:<12} {:>16} {:>16}",
        "confidence", "raw", "spammers pruned"
    );
    let pruned = prune_spammers(&dataset.responses, PAPER_SPAMMER_THRESHOLD);
    println!(
        "(pruning removed {} of {} workers)",
        pruned.removed.len(),
        dataset.responses.n_workers()
    );
    for confidence in [0.5, 0.7, 0.8, 0.9, 0.95] {
        let (c_raw, t_raw) = accuracy(
            &dataset.responses,
            |w| dataset.empirical_error_rate(w),
            confidence,
        );
        // After pruning worker ids are re-numbered: map truth through
        // the kept-worker table.
        let (c_pruned, t_pruned) = accuracy(
            &pruned.data,
            |w| dataset.empirical_error_rate(pruned.kept[w.index()]),
            confidence,
        );
        println!(
            "{:<12.2} {:>10}/{:<5} {:>10}/{:<5}",
            confidence, c_raw, t_raw, c_pruned, t_pruned
        );
    }
}
